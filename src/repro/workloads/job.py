"""JOB-like query workload.

The Join Order Benchmark consists of 113 hand-written select-project-join
queries over the IMDB schema, organised into families that share a join
structure and differ in their filter constants.  This module generates an
analogous workload over the synthetic IMDB dataset:

* 21 families, each with a fixed set of join "branches" hanging off ``title``
  (the same snowflake shapes JOB uses: keywords, cast, companies, info,
  info_idx, links, complete-cast ...);
* per-family variants (``a``, ``b``, ``c`` ...) that change only the filter
  constants, drawn from the generated vocabulary;
* the per-query table-count distribution matches the paper's Table III
  exactly (4:3, 5:20, 6:2, 7:16, 8:21, 9:14, 10:7, 11:10, 12:11, 14:6, 17:3
  — 113 queries in total).

Queries are emitted as SQL text so the full parser/binder path is exercised,
then bound against a database with :func:`bind_workload`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.errors import WorkloadError
from repro.sql.binder import BoundQuery
from repro.workloads.imdb import ImdbVocabulary

# ---------------------------------------------------------------------------
# Join branches: alias -> (table, (parent alias, parent column, own column))
# ---------------------------------------------------------------------------

BRANCHES: Dict[str, Tuple[str, Tuple[str, str, str]]] = {
    "kt": ("kind_type", ("t", "kind_id", "id")),
    "mk": ("movie_keyword", ("t", "id", "movie_id")),
    "k": ("keyword", ("mk", "keyword_id", "id")),
    "ci": ("cast_info", ("t", "id", "movie_id")),
    "n": ("name", ("ci", "person_id", "id")),
    "chn": ("char_name", ("ci", "person_role_id", "id")),
    "rt": ("role_type", ("ci", "role_id", "id")),
    "an": ("aka_name", ("n", "id", "person_id")),
    "pi": ("person_info", ("n", "id", "person_id")),
    "mc": ("movie_companies", ("t", "id", "movie_id")),
    "cn": ("company_name", ("mc", "company_id", "id")),
    "ct": ("company_type", ("mc", "company_type_id", "id")),
    "mi": ("movie_info", ("t", "id", "movie_id")),
    "it1": ("info_type", ("mi", "info_type_id", "id")),
    "mi_idx": ("movie_info_idx", ("t", "id", "movie_id")),
    "it2": ("info_type", ("mi_idx", "info_type_id", "id")),
    "at": ("aka_title", ("t", "id", "movie_id")),
    "cc": ("complete_cast", ("t", "id", "movie_id")),
    "cct1": ("comp_cast_type", ("cc", "subject_id", "id")),
    "cct2": ("comp_cast_type", ("cc", "status_id", "id")),
    "ml": ("movie_link", ("t", "id", "movie_id")),
    "lt": ("link_type", ("ml", "link_type_id", "id")),
}

# ---------------------------------------------------------------------------
# Family definitions: (family id, branches, number of variants)
# len(branches) + 1 == table count.  The variant counts reproduce Table III.
# ---------------------------------------------------------------------------

FAMILIES: List[Tuple[int, Tuple[str, ...], int]] = [
    (1, ("mk", "k", "ci"), 3),                                                     # 4 tables
    (2, ("mk", "k", "ci", "n"), 5),                                                # 5
    (3, ("mi", "it1", "mi_idx", "it2"), 5),                                        # 5
    (4, ("mc", "cn", "ct", "mi"), 5),                                              # 5
    (5, ("ci", "n", "rt", "chn"), 5),                                              # 5
    (6, ("mk", "k", "ci", "n", "rt"), 2),                                          # 6
    (7, ("ci", "n", "mi", "it1", "mi_idx", "it2"), 6),                             # 7
    (8, ("mk", "k", "mc", "cn", "ci", "n"), 5),                                    # 7
    (9, ("mi", "it1", "kt", "mc", "cn", "ct"), 5),                                 # 7
    (10, ("mk", "k", "ci", "n", "mc", "cn", "mi"), 7),                             # 8
    (11, ("ci", "n", "chn", "rt", "mi", "it1", "kt"), 7),                          # 8
    (12, ("mc", "cn", "ct", "mi", "it1", "mi_idx", "it2"), 7),                     # 8
    (13, ("mk", "k", "ci", "n", "mc", "cn", "mi", "it1"), 7),                      # 9
    (14, ("ci", "n", "an", "pi", "mi", "it1", "mi_idx", "it2"), 7),                # 9
    (15, ("mk", "k", "ci", "n", "chn", "rt", "mc", "cn", "mi"), 7),                # 10
    (16, ("mk", "k", "ci", "n", "mc", "cn", "ct", "mi", "it1", "kt"), 5),          # 11
    (17, ("cc", "cct1", "cct2", "mk", "k", "ci", "n", "mi", "it1", "kt"), 5),      # 11
    (18, ("mk", "k", "ci", "n", "mc", "cn", "ct", "mi", "it1", "mi_idx", "it2"), 6),   # 12
    (19, ("ml", "lt", "mk", "k", "ci", "n", "mc", "cn", "mi", "it1", "kt"), 5),        # 12
    (20, ("kt", "mk", "k", "ci", "n", "rt", "mc", "cn", "ct", "mi", "it1", "mi_idx", "it2"), 6),  # 14
    (21, (
        "kt", "mk", "k", "ci", "n", "chn", "rt", "an", "pi",
        "mc", "cn", "ct", "mi", "it1", "mi_idx", "it2",
    ), 3),                                                                          # 17
]

#: The paper's Table III distribution, used as a self-check.
EXPECTED_TABLE_COUNTS: Dict[int, int] = {
    4: 3, 5: 20, 6: 2, 7: 16, 8: 21, 9: 14, 10: 7, 11: 10, 12: 11, 14: 6, 17: 3,
}


@dataclass
class JobQuery:
    """One generated workload query."""

    name: str
    family: int
    variant: str
    sql: str
    num_tables: int
    aliases: Tuple[str, ...]


@dataclass
class JobWorkloadConfig:
    """Configuration of the workload generator."""

    seed: int = 7
    #: Add redundant fact-to-fact join predicates on ``movie_id`` (JOB's SQL
    #: text includes them; they densify the join graph and slow enumeration
    #: without changing results, so they are off by default).
    redundant_fact_joins: bool = False


# ---------------------------------------------------------------------------
# Filter predicate pools
# ---------------------------------------------------------------------------


def _filter_pool(
    alias: str, rng: random.Random, vocab: ImdbVocabulary
) -> List[List[str]]:
    """Candidate filter sets (lists of SQL conditions) for one alias."""
    if alias == "k":
        popular = vocab.popular_keywords
        rare = vocab.rare_keywords
        pools = []
        if popular:
            for count in (8, 5, 3, 2):
                count = min(count, len(popular))
                chosen = rng.sample(popular, count)
                quoted = ", ".join(f"'{value}'" for value in chosen)
                pools.append([f"k.keyword IN ({quoted})"])
            pools.append([f"k.keyword = '{rng.choice(popular)}'"])
        if rare:
            pools.append([f"k.keyword = '{rng.choice(rare)}'"])
        return pools
    if alias == "n":
        fragments = vocab.name_fragments
        return [
            [f"n.name LIKE '%{rng.choice(fragments)}%'"],
            ["n.gender = 'f'"],
            ["n.gender = 'm'", f"n.name LIKE '%{rng.choice(fragments)}%'"],
            [f"n.name LIKE '{rng.choice(['X', 'A', 'B'])}%'"],
        ]
    if alias == "t":
        low = rng.choice([1990, 2000, 2005, 2010])
        return [
            [f"t.production_year > {low}"],
            [f"t.production_year BETWEEN {low - 10} AND {low + 5}"],
            [],
        ]
    if alias == "ci":
        return [
            ["ci.note IN ('(producer)', '(executive producer)')"],
            ["ci.note = '(voice)'"],
            [],
        ]
    if alias == "cn":
        return [
            ["cn.country_code = '[us]'"],
            [f"cn.country_code = '{rng.choice(vocab.country_codes)}'"],
        ]
    if alias == "ct":
        return [["ct.kind = 'production companies'"], ["ct.kind = 'distributors'"]]
    if alias == "mc":
        return [
            ["mc.note LIKE '%(co-production)%'"],
            ["mc.note NOT LIKE '%(USA)%'"],
            [],
        ]
    if alias == "it1":
        return [[f"it1.info = '{rng.choice(['budget', 'genres', 'gross', 'languages'])}'"]]
    if alias == "it2":
        return [[f"it2.info = '{rng.choice(['votes', 'rating'])}'"]]
    if alias == "mi":
        genres = vocab.genres
        chosen = rng.sample(genres, min(3, len(genres)))
        quoted = ", ".join(f"'{value}'" for value in chosen)
        return [
            [f"mi.info IN ({quoted})"],
            [f"mi.info = '{rng.choice(genres)}'"],
            ["mi.info LIKE 'USA:%'"],
            [],
        ]
    if alias == "mi_idx":
        return [["mi_idx.info > '500'"], []]
    if alias == "kt":
        return [["kt.kind = 'movie'"], ["kt.kind IN ('movie', 'tv movie')"]]
    if alias == "rt":
        return [["rt.role = 'actor'"], ["rt.role IN ('actor', 'actress')"], ["rt.role = 'producer'"]]
    if alias == "chn":
        return [[], ["chn.name LIKE '%Character 00%'"]]
    if alias == "cct1":
        return [["cct1.kind = 'cast'"]]
    if alias == "cct2":
        return [["cct2.kind LIKE '%complete%'"]]
    if alias == "lt":
        return [["lt.link LIKE '%follow%'"], ["lt.link = 'features'"]]
    if alias == "an":
        return [[], ["an.name LIKE '%Alias 0%'"]]
    if alias == "pi":
        return [[], ["pi.info LIKE '%cm'"]]
    return [[]]


_SELECT_CANDIDATES: Dict[str, Tuple[str, str]] = {
    "t": ("title", "movie_title"),
    "n": ("name", "actor_name"),
    "k": ("keyword", "movie_keyword"),
    "cn": ("name", "company_name"),
    "chn": ("name", "character_name"),
    "mi": ("info", "movie_info"),
    "mi_idx": ("info", "movie_votes"),
    "at": ("title", "alternate_title"),
    "lt": ("link", "link_kind"),
}


# ---------------------------------------------------------------------------
# Query generation
# ---------------------------------------------------------------------------


def _variant_letter(index: int) -> str:
    letters = "abcdefghijklmnopqrstuvwxyz"
    return letters[index % len(letters)]


def _build_query_sql(
    family: int,
    variant_index: int,
    branches: Sequence[str],
    vocab: ImdbVocabulary,
    config: JobWorkloadConfig,
) -> Tuple[str, Tuple[str, ...]]:
    """Render the SQL text for one family variant."""
    rng = random.Random(f"{config.seed}/{family}/{variant_index}")
    aliases = ("t",) + tuple(branches)

    # FROM clause.
    from_entries = ["title AS t"]
    for alias in branches:
        table, _ = BRANCHES[alias]
        from_entries.append(f"{table} AS {alias}")

    # Join conditions along the branch structure.
    join_conditions: List[str] = []
    for alias in branches:
        _, (parent, parent_column, own_column) = BRANCHES[alias]
        join_conditions.append(f"{parent}.{parent_column} = {alias}.{own_column}")
    if config.redundant_fact_joins:
        fact_aliases = [a for a in branches if BRANCHES[a][1][0] == "t" and BRANCHES[a][1][1] == "id"]
        for i in range(len(fact_aliases)):
            for j in range(i + 1, len(fact_aliases)):
                join_conditions.append(
                    f"{fact_aliases[i]}.movie_id = {fact_aliases[j]}.movie_id"
                )

    # Filters: always filter the most selective dimension aliases present;
    # variants differ in which pool entry is picked.
    filter_conditions: List[str] = []
    filtered = 0
    priority = [
        "k", "n", "it1", "it2", "ci", "cn", "ct", "kt", "rt", "mi", "t",
        "mc", "mi_idx", "cct1", "cct2", "lt", "chn", "an", "pi",
    ]
    # Larger queries carry more filters (as in JOB), which also keeps the
    # worst mis-planned intermediates bounded for the pure-Python executor.
    max_filters = max(3 + (variant_index % 3), 2 + len(branches) // 2)
    for alias in priority:
        if alias not in aliases:
            continue
        pool = _filter_pool(alias, rng, vocab)
        if not pool:
            continue
        choice = pool[(variant_index + filtered) % len(pool)]
        if not choice:
            continue
        filter_conditions.extend(choice)
        filtered += 1
        if filtered >= max_filters:
            break
    if not filter_conditions:
        filter_conditions.append("t.production_year > 2000")

    # Select list: MIN() aggregates over text columns of present aliases.
    select_items: List[str] = []
    for alias, (column, label) in _SELECT_CANDIDATES.items():
        if alias in aliases:
            select_items.append(f"MIN({alias}.{column}) AS {label}")
        if len(select_items) >= 3:
            break
    if not select_items:
        select_items.append("MIN(t.title) AS movie_title")

    sql = (
        "SELECT "
        + ",\n       ".join(select_items)
        + "\nFROM "
        + ",\n     ".join(from_entries)
        + "\nWHERE "
        + "\n  AND ".join(filter_conditions + join_conditions)
        + ";"
    )
    return sql, aliases


def generate_job_workload(
    vocabulary: ImdbVocabulary,
    config: Optional[JobWorkloadConfig] = None,
) -> List[JobQuery]:
    """Generate the full 113-query workload."""
    config = config or JobWorkloadConfig()
    queries: List[JobQuery] = []
    for family, branches, variants in FAMILIES:
        for variant_index in range(variants):
            letter = _variant_letter(variant_index)
            sql, aliases = _build_query_sql(
                family, variant_index, branches, vocabulary, config
            )
            queries.append(
                JobQuery(
                    name=f"q{family:02d}{letter}",
                    family=family,
                    variant=letter,
                    sql=sql,
                    num_tables=len(aliases),
                    aliases=aliases,
                )
            )
    _validate_distribution(queries)
    return queries


def _validate_distribution(queries: Sequence[JobQuery]) -> None:
    """Check the generated workload matches the paper's Table III distribution."""
    counts: Dict[int, int] = {}
    for query in queries:
        counts[query.num_tables] = counts.get(query.num_tables, 0) + 1
    if counts != EXPECTED_TABLE_COUNTS:
        raise WorkloadError(
            f"workload table-count distribution {counts} does not match "
            f"the paper's Table III {EXPECTED_TABLE_COUNTS}"
        )


def table_count_distribution(queries: Sequence[JobQuery]) -> Dict[int, int]:
    """Number of queries per FROM-clause table count (the paper's Table III)."""
    counts: Dict[int, int] = {}
    for query in queries:
        counts[query.num_tables] = counts.get(query.num_tables, 0) + 1
    return dict(sorted(counts.items()))


def bind_workload(
    database: Database, queries: Sequence[JobQuery]
) -> List[BoundQuery]:
    """Parse and bind every workload query against ``database``."""
    return [database.parse(query.sql, name=query.name) for query in queries]
