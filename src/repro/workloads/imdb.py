"""Synthetic IMDB-like dataset (the substrate for the Join Order Benchmark).

The paper evaluates on the real IMDB dump, whose essential properties are
skewed join keys and correlations that cross join edges.  This generator
produces a deterministic, scaled-down dataset with the same 21-table schema
JOB uses and the same qualitative properties:

* a small number of *popular* movies, actors, keywords and companies account
  for most fact-table rows (Zipf-distributed join keys);
* popularity is *correlated across tables* — a movie that has many keywords
  also has many cast entries, many companies and many info rows — which is
  exactly the join-crossing correlation that defeats the independence
  assumption;
* filter columns are correlated with popularity (popular keywords such as
  ``superhero`` attach to popular movies, names containing the "star"
  fragments belong to prolific actors, recent production years are more
  popular), so selective-looking predicates select disproportionately
  heavy join keys — the Nasdaq-style skew trap of Section IV-C.

Everything is driven by a single seed, so datasets are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.catalog.schema import ColumnType, TableSchema, make_schema
from repro.engine.database import Database
from repro.engine.settings import EngineSettings
from repro.workloads.distributions import ZipfSampler, WeightedSampler, skewed_year

# ---------------------------------------------------------------------------
# Vocabulary constants
# ---------------------------------------------------------------------------

POPULAR_KEYWORDS = [
    "superhero",
    "sequel",
    "based-on-comic",
    "marvel-comics",
    "character-name-in-title",
    "violence",
    "second-part",
    "tv-special",
    "fight",
    "murder",
    "revenge",
    "blockbuster",
    "love",
    "based-on-novel",
    "independent-film",
    "explosion",
    "hero",
    "friendship",
    "death",
    "magic",
]

GENRES = [
    "Action",
    "Adventure",
    "Drama",
    "Comedy",
    "Thriller",
    "Horror",
    "Romance",
    "Sci-Fi",
    "Documentary",
    "Animation",
    "Crime",
    "Fantasy",
]

LANGUAGES = ["English", "French", "German", "Spanish", "Japanese", "Italian", "Korean"]
COUNTRIES = ["USA", "UK", "Germany", "France", "Japan", "Canada", "Italy", "Spain"]
COUNTRY_CODES = ["[us]", "[gb]", "[de]", "[fr]", "[jp]", "[ca]", "[it]", "[es]"]

INFO_TYPES = [
    "budget",
    "votes",
    "rating",
    "genres",
    "languages",
    "countries",
    "release dates",
    "runtimes",
    "gross",
    "birth date",
    "birth notes",
    "height",
    "trivia",
    "quotes",
    "tagline",
    "plot",
    "votes distribution",
    "top 250 rank",
    "bottom 10 rank",
    "mpaa",
]

KIND_TYPES = ["movie", "tv series", "tv movie", "video movie", "tv mini series", "video game", "episode"]
ROLE_TYPES = [
    "actor",
    "actress",
    "producer",
    "writer",
    "cinematographer",
    "composer",
    "costume designer",
    "director",
    "editor",
    "miscellaneous crew",
    "production designer",
    "guest",
]
LINK_TYPES = [
    "follows",
    "followed by",
    "remake of",
    "remade as",
    "references",
    "referenced in",
    "spoofs",
    "spoofed in",
    "features",
    "featured in",
    "spin off from",
    "spin off",
    "version of",
    "similar to",
    "edited into",
    "edited from",
    "alternate language version of",
    "unknown link",
]
COMP_CAST_TYPES = ["cast", "crew", "complete", "complete+verified"]
COMPANY_TYPES = ["production companies", "distributors", "special effects companies", "miscellaneous companies"]

CAST_NOTES = [
    "",
    "",
    "",
    "",
    "(voice)",
    "(uncredited)",
    "(producer)",
    "(executive producer)",
    "(co-producer)",
    "(archive footage)",
]

STAR_FIRST_NAMES = ["Robert", "Tim", "Tom", "Scarlett", "Chris", "Samuel", "Natalie", "Mark"]
STAR_LAST_NAMES = ["Downey", "Cruise", "Johansson", "Jackson", "Evans", "Portman", "Ruffalo", "Hanks"]
FIRST_NAMES = [
    "John", "Mary", "James", "Anna", "Michael", "Laura", "David", "Sophie", "Daniel",
    "Emma", "Peter", "Julia", "Andrew", "Karen", "Steven", "Alice", "Brian", "Nora",
    "Xavier", "Xenia",
]
LAST_NAMES = [
    "Smith", "Brown", "Miller", "Wilson", "Moore", "Taylor", "Anderson", "Thomas",
    "Martin", "Lee", "Walker", "Hall", "Young", "King", "Wright", "Scott", "Green",
    "Baker", "Adams", "Nelson",
]

MC_NOTES = [
    "",
    "",
    "(co-production)",
    "(as Metro-Goldwyn Pictures)",
    "(presents)",
    "(in association with)",
    "(2009) (USA) (theatrical)",
    "(2013) (worldwide) (all media)",
]


# ---------------------------------------------------------------------------
# Configuration and dataset containers
# ---------------------------------------------------------------------------


@dataclass
class ImdbConfig:
    """Scale and seed of the synthetic dataset.

    ``scale`` linearly controls the row counts of all entity and fact tables;
    dimension tables have fixed size.  ``scale=1.0`` yields roughly 55k rows
    overall, which keeps full-workload experiments tractable in pure Python
    while leaving enough skew for plans to differ by orders of magnitude.
    """

    scale: float = 1.0
    seed: int = 42
    zipf_movies: float = 0.75
    zipf_people: float = 0.75
    zipf_keywords: float = 0.9
    zipf_companies: float = 0.85
    correlation: float = 0.65
    #: Hard per-movie fanout caps for the fact tables.  Real IMDB fanouts are
    #: bounded (a movie has tens, not thousands, of cast entries); the caps
    #: keep worst-case star-join intermediates tractable for the pure-Python
    #: executor while preserving a ~5-10x head-to-average skew.
    max_cast_per_movie: int = 35
    max_keywords_per_movie: int = 20
    max_companies_per_movie: int = 12
    max_info_per_movie: int = 25
    max_info_idx_per_movie: int = 10

    def rows(self, base: int) -> int:
        """Row count for a table whose base size (at scale 1) is ``base``."""
        return max(4, int(base * self.scale))


@dataclass
class ImdbVocabulary:
    """Interesting values exposed to the query generator."""

    popular_keywords: List[str] = field(default_factory=list)
    rare_keywords: List[str] = field(default_factory=list)
    genres: List[str] = field(default_factory=lambda: list(GENRES))
    languages: List[str] = field(default_factory=lambda: list(LANGUAGES))
    country_codes: List[str] = field(default_factory=lambda: list(COUNTRY_CODES))
    info_types: List[str] = field(default_factory=lambda: list(INFO_TYPES))
    kinds: List[str] = field(default_factory=lambda: list(KIND_TYPES))
    roles: List[str] = field(default_factory=lambda: list(ROLE_TYPES))
    link_types: List[str] = field(default_factory=lambda: list(LINK_TYPES))
    comp_cast_types: List[str] = field(default_factory=lambda: list(COMP_CAST_TYPES))
    company_types: List[str] = field(default_factory=lambda: list(COMPANY_TYPES))
    cast_notes: List[str] = field(default_factory=lambda: ["(producer)", "(executive producer)", "(voice)", "(uncredited)"])
    name_fragments: List[str] = field(default_factory=lambda: ["Robert", "Tim", "Downey", "X", "An"])
    min_year: int = 1930
    max_year: int = 2018


@dataclass
class ImdbDataset:
    """Generated rows (per table, in schema column order) plus the vocabulary."""

    config: ImdbConfig
    tables: Dict[str, List[tuple]] = field(default_factory=dict)
    vocabulary: ImdbVocabulary = field(default_factory=ImdbVocabulary)

    def row_count(self, table: str) -> int:
        """Number of generated rows for ``table``."""
        return len(self.tables.get(table, []))

    def total_rows(self) -> int:
        """Total generated rows across all tables."""
        return sum(len(rows) for rows in self.tables.values())


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------


def imdb_schemas() -> List[TableSchema]:
    """The 21-table JOB schema."""
    I, T = ColumnType.INT, ColumnType.TEXT
    return [
        make_schema("kind_type", [("id", I), ("kind", T)], primary_key="id"),
        make_schema("role_type", [("id", I), ("role", T)], primary_key="id"),
        make_schema("info_type", [("id", I), ("info", T)], primary_key="id"),
        make_schema("link_type", [("id", I), ("link", T)], primary_key="id"),
        make_schema("comp_cast_type", [("id", I), ("kind", T)], primary_key="id"),
        make_schema("company_type", [("id", I), ("kind", T)], primary_key="id"),
        make_schema(
            "title",
            [("id", I), ("title", T), ("kind_id", I), ("production_year", I)],
            primary_key="id",
            foreign_keys=[("kind_id", "kind_type", "id")],
        ),
        make_schema("name", [("id", I), ("name", T), ("gender", T)], primary_key="id"),
        make_schema("char_name", [("id", I), ("name", T)], primary_key="id"),
        make_schema(
            "keyword", [("id", I), ("keyword", T)], primary_key="id"
        ),
        make_schema(
            "company_name",
            [("id", I), ("name", T), ("country_code", T)],
            primary_key="id",
        ),
        make_schema(
            "aka_name",
            [("id", I), ("person_id", I), ("name", T)],
            primary_key="id",
            foreign_keys=[("person_id", "name", "id")],
        ),
        make_schema(
            "aka_title",
            [("id", I), ("movie_id", I), ("title", T)],
            primary_key="id",
            foreign_keys=[("movie_id", "title", "id")],
        ),
        make_schema(
            "cast_info",
            [
                ("id", I),
                ("person_id", I),
                ("movie_id", I),
                ("person_role_id", I),
                ("role_id", I),
                ("note", T),
            ],
            primary_key="id",
            foreign_keys=[
                ("person_id", "name", "id"),
                ("movie_id", "title", "id"),
                ("person_role_id", "char_name", "id"),
                ("role_id", "role_type", "id"),
            ],
        ),
        make_schema(
            "movie_keyword",
            [("id", I), ("movie_id", I), ("keyword_id", I)],
            primary_key="id",
            foreign_keys=[("movie_id", "title", "id"), ("keyword_id", "keyword", "id")],
        ),
        make_schema(
            "movie_companies",
            [
                ("id", I),
                ("movie_id", I),
                ("company_id", I),
                ("company_type_id", I),
                ("note", T),
            ],
            primary_key="id",
            foreign_keys=[
                ("movie_id", "title", "id"),
                ("company_id", "company_name", "id"),
                ("company_type_id", "company_type", "id"),
            ],
        ),
        make_schema(
            "movie_info",
            [("id", I), ("movie_id", I), ("info_type_id", I), ("info", T)],
            primary_key="id",
            foreign_keys=[
                ("movie_id", "title", "id"),
                ("info_type_id", "info_type", "id"),
            ],
        ),
        make_schema(
            "movie_info_idx",
            [("id", I), ("movie_id", I), ("info_type_id", I), ("info", T)],
            primary_key="id",
            foreign_keys=[
                ("movie_id", "title", "id"),
                ("info_type_id", "info_type", "id"),
            ],
        ),
        make_schema(
            "person_info",
            [("id", I), ("person_id", I), ("info_type_id", I), ("info", T)],
            primary_key="id",
            foreign_keys=[
                ("person_id", "name", "id"),
                ("info_type_id", "info_type", "id"),
            ],
        ),
        make_schema(
            "movie_link",
            [("id", I), ("movie_id", I), ("linked_movie_id", I), ("link_type_id", I)],
            primary_key="id",
            foreign_keys=[
                ("movie_id", "title", "id"),
                ("linked_movie_id", "title", "id"),
                ("link_type_id", "link_type", "id"),
            ],
        ),
        make_schema(
            "complete_cast",
            [("id", I), ("movie_id", I), ("subject_id", I), ("status_id", I)],
            primary_key="id",
            foreign_keys=[
                ("movie_id", "title", "id"),
                ("subject_id", "comp_cast_type", "id"),
                ("status_id", "comp_cast_type", "id"),
            ],
        ),
    ]


# Base sizes at scale 1.0 (dimension tables are fixed-size).
_BASE_SIZES = {
    "title": 2500,
    "name": 3000,
    "char_name": 1500,
    "keyword": 800,
    "company_name": 400,
    "aka_name": 800,
    "aka_title": 500,
    "cast_info": 12000,
    "movie_keyword": 7000,
    "movie_companies": 5000,
    "movie_info": 8000,
    "movie_info_idx": 3500,
    "person_info": 4000,
    "movie_link": 700,
    "complete_cast": 900,
}


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def generate_imdb_dataset(config: ImdbConfig = None) -> ImdbDataset:
    """Generate the full synthetic dataset for ``config`` (deterministic)."""
    config = config or ImdbConfig()
    rng = random.Random(config.seed)
    dataset = ImdbDataset(config=config)
    tables = dataset.tables

    # -- fixed dimension tables -------------------------------------------------
    tables["kind_type"] = [(i + 1, kind) for i, kind in enumerate(KIND_TYPES)]
    tables["role_type"] = [(i + 1, role) for i, role in enumerate(ROLE_TYPES)]
    tables["info_type"] = [(i + 1, info) for i, info in enumerate(INFO_TYPES)]
    tables["link_type"] = [(i + 1, link) for i, link in enumerate(LINK_TYPES)]
    tables["comp_cast_type"] = [(i + 1, kind) for i, kind in enumerate(COMP_CAST_TYPES)]
    tables["company_type"] = [(i + 1, kind) for i, kind in enumerate(COMPANY_TYPES)]
    info_type_ids = {info: i + 1 for i, info in enumerate(INFO_TYPES)}

    num_movies = config.rows(_BASE_SIZES["title"])
    num_people = config.rows(_BASE_SIZES["name"])
    num_chars = config.rows(_BASE_SIZES["char_name"])
    num_keywords = config.rows(_BASE_SIZES["keyword"])
    num_companies = config.rows(_BASE_SIZES["company_name"])

    movie_sampler = ZipfSampler(num_movies, config.zipf_movies)
    person_sampler = ZipfSampler(num_people, config.zipf_people)
    keyword_sampler = ZipfSampler(num_keywords, config.zipf_keywords)
    company_sampler = ZipfSampler(num_companies, config.zipf_companies)

    fanout_counts: Dict[str, Dict[int, int]] = {
        "cast_info": {},
        "movie_keyword": {},
        "movie_companies": {},
        "movie_info": {},
        "movie_info_idx": {},
    }

    def sample_movie_rank(fact_table: str, cap: int) -> int:
        """Zipf-sample a movie, rejecting movies that already hit the fanout cap."""
        counts = fanout_counts[fact_table]
        for _ in range(8):
            rank = movie_sampler.sample(rng)
            if counts.get(rank, 0) < cap:
                counts[rank] = counts.get(rank, 0) + 1
                return rank
        rank = rng.randrange(num_movies)
        counts[rank] = counts.get(rank, 0) + 1
        return rank

    # -- title -------------------------------------------------------------------
    kind_weights = WeightedSampler(range(1, len(KIND_TYPES) + 1), [50, 18, 10, 8, 6, 4, 4])
    titles: List[tuple] = []
    for rank in range(num_movies):
        movie_id = rank + 1
        popularity = (1.0 - rank / num_movies) ** 4
        year = skewed_year(rng, popularity)
        titles.append((movie_id, f"Movie {movie_id:05d}", kind_weights.sample(rng), year))
    tables["title"] = titles

    # -- name ----------------------------------------------------------------------
    names: List[tuple] = []
    gender_weights = WeightedSampler(["m", "f", ""], [0.55, 0.4, 0.05])
    for rank in range(num_people):
        person_id = rank + 1
        # Prolific (low-rank) people draw from the "star" name pools, which is
        # what makes LIKE '%Downey%' style predicates select heavy join keys.
        if rank < max(8, num_people // 50):
            first = STAR_FIRST_NAMES[rank % len(STAR_FIRST_NAMES)]
            last = STAR_LAST_NAMES[(rank // len(STAR_FIRST_NAMES)) % len(STAR_LAST_NAMES)]
        else:
            first = FIRST_NAMES[rng.randrange(len(FIRST_NAMES))]
            last = LAST_NAMES[rng.randrange(len(LAST_NAMES))]
        names.append((person_id, f"{last}, {first} {person_id % 97}", gender_weights.sample(rng)))
    tables["name"] = names

    # -- char_name / keyword / company_name ------------------------------------------
    tables["char_name"] = [
        (i + 1, f"Character {i + 1:04d}") for i in range(num_chars)
    ]
    keywords: List[tuple] = []
    for rank in range(num_keywords):
        if rank < len(POPULAR_KEYWORDS):
            text = POPULAR_KEYWORDS[rank]
        else:
            text = f"keyword-{rank:04d}"
        keywords.append((rank + 1, text))
    tables["keyword"] = keywords
    dataset.vocabulary.popular_keywords = list(POPULAR_KEYWORDS[: min(len(POPULAR_KEYWORDS), num_keywords)])
    dataset.vocabulary.rare_keywords = [f"keyword-{rank:04d}" for rank in range(num_keywords - 5, num_keywords)]

    country_weights = WeightedSampler(COUNTRY_CODES, [40, 14, 10, 9, 8, 8, 6, 5])
    tables["company_name"] = [
        (i + 1, f"Company {i + 1:04d} Productions", country_weights.sample(rng))
        for i in range(num_companies)
    ]

    # -- aka_name / aka_title ----------------------------------------------------------
    tables["aka_name"] = [
        (
            i + 1,
            person_sampler.sample(rng) + 1,
            f"Alias {i + 1:04d}",
        )
        for i in range(config.rows(_BASE_SIZES["aka_name"]))
    ]
    tables["aka_title"] = [
        (
            i + 1,
            movie_sampler.sample(rng) + 1,
            f"Alternate Title {i + 1:04d}",
        )
        for i in range(config.rows(_BASE_SIZES["aka_title"]))
    ]

    # -- cast_info -----------------------------------------------------------------------
    cast_rows: List[tuple] = []
    role_weights = WeightedSampler(
        range(1, len(ROLE_TYPES) + 1), [30, 24, 8, 7, 4, 4, 3, 6, 4, 5, 3, 2]
    )
    note_weights = WeightedSampler(CAST_NOTES, [30, 20, 15, 10, 8, 6, 5, 3, 2, 1])
    for i in range(config.rows(_BASE_SIZES["cast_info"])):
        movie_rank = sample_movie_rank("cast_info", config.max_cast_per_movie)
        # Correlation: popular movies cast popular people.
        if rng.random() < config.correlation:
            person_rank = min(
                num_people - 1,
                int(abs(rng.gauss(movie_rank * num_people / num_movies, num_people * 0.05))),
            )
        else:
            person_rank = person_sampler.sample(rng)
        # Producer notes cluster on popular movies (another correlation).
        note = note_weights.sample(rng)
        if movie_rank < num_movies // 10 and rng.random() < 0.45:
            note = "(producer)" if rng.random() < 0.6 else "(executive producer)"
        cast_rows.append(
            (
                i + 1,
                person_rank + 1,
                movie_rank + 1,
                rng.randrange(num_chars) + 1,
                role_weights.sample(rng),
                note,
            )
        )
    tables["cast_info"] = cast_rows

    # -- movie_keyword -----------------------------------------------------------------------
    mk_rows: List[tuple] = []
    for i in range(config.rows(_BASE_SIZES["movie_keyword"])):
        movie_rank = sample_movie_rank("movie_keyword", config.max_keywords_per_movie)
        # Correlation: popular keywords attach to popular movies.
        if rng.random() < config.correlation:
            keyword_rank = min(
                num_keywords - 1,
                int(abs(rng.gauss(movie_rank * num_keywords / num_movies, num_keywords * 0.04))),
            )
        else:
            keyword_rank = keyword_sampler.sample(rng)
        mk_rows.append((i + 1, movie_rank + 1, keyword_rank + 1))
    tables["movie_keyword"] = mk_rows

    # -- movie_companies ------------------------------------------------------------------------
    mc_rows: List[tuple] = []
    company_type_weights = WeightedSampler(range(1, len(COMPANY_TYPES) + 1), [55, 30, 8, 7])
    mc_note_weights = WeightedSampler(MC_NOTES, [35, 20, 12, 8, 8, 7, 6, 4])
    for i in range(config.rows(_BASE_SIZES["movie_companies"])):
        movie_rank = sample_movie_rank("movie_companies", config.max_companies_per_movie)
        if rng.random() < config.correlation:
            company_rank = min(
                num_companies - 1,
                int(abs(rng.gauss(movie_rank * num_companies / num_movies, num_companies * 0.06))),
            )
        else:
            company_rank = company_sampler.sample(rng)
        mc_rows.append(
            (
                i + 1,
                movie_rank + 1,
                company_rank + 1,
                company_type_weights.sample(rng),
                mc_note_weights.sample(rng),
            )
        )
    tables["movie_companies"] = mc_rows

    # -- movie_info -------------------------------------------------------------------------------
    mi_rows: List[tuple] = []
    mi_types = ["genres", "languages", "countries", "release dates", "budget", "runtimes", "gross", "tagline"]
    mi_type_weights = WeightedSampler(mi_types, [22, 16, 14, 16, 10, 10, 6, 6])
    for i in range(config.rows(_BASE_SIZES["movie_info"])):
        movie_rank = sample_movie_rank("movie_info", config.max_info_per_movie)
        info_kind = mi_type_weights.sample(rng)
        movie_year = titles[movie_rank][3]
        popularity = (1.0 - movie_rank / num_movies) ** 4
        if info_kind == "genres":
            # Popular (action/adventure) genres go to popular movies.
            if rng.random() < config.correlation and movie_rank < num_movies // 3:
                info_value = GENRES[rng.randrange(3)]
            else:
                info_value = GENRES[rng.randrange(len(GENRES))]
        elif info_kind == "languages":
            info_value = "English" if rng.random() < 0.7 else LANGUAGES[rng.randrange(len(LANGUAGES))]
        elif info_kind == "countries":
            info_value = "USA" if rng.random() < 0.5 else COUNTRIES[rng.randrange(len(COUNTRIES))]
        elif info_kind == "release dates":
            info_value = f"USA:{movie_year}"
        elif info_kind == "budget":
            budget = int(1_000_000 + popularity * 200_000_000 * rng.uniform(0.5, 1.5))
            info_value = f"${budget}"
        elif info_kind == "runtimes":
            info_value = str(rng.randint(70, 200))
        elif info_kind == "gross":
            gross = int(500_000 + popularity * 900_000_000 * rng.uniform(0.3, 1.5))
            info_value = f"${gross}"
        else:
            info_value = f"Tagline {i}"
        mi_rows.append((i + 1, movie_rank + 1, info_type_ids[info_kind], info_value))
    tables["movie_info"] = mi_rows

    # -- movie_info_idx ------------------------------------------------------------------------------
    mi_idx_rows: List[tuple] = []
    idx_types = ["votes", "rating", "votes distribution", "top 250 rank"]
    idx_type_weights = WeightedSampler(idx_types, [40, 40, 15, 5])
    for i in range(config.rows(_BASE_SIZES["movie_info_idx"])):
        movie_rank = sample_movie_rank("movie_info_idx", config.max_info_idx_per_movie)
        info_kind = idx_type_weights.sample(rng)
        popularity = (1.0 - movie_rank / num_movies) ** 4
        if info_kind == "votes":
            info_value = str(int(10 + popularity * 2_000_000 * rng.uniform(0.2, 1.2)))
        elif info_kind == "rating":
            info_value = f"{min(9.9, 4.0 + 5.0 * popularity + rng.uniform(-0.8, 0.8)):.1f}"
        elif info_kind == "votes distribution":
            info_value = "0000001222"
        else:
            info_value = str(rng.randint(1, 250))
        mi_idx_rows.append((i + 1, movie_rank + 1, info_type_ids[info_kind], info_value))
    tables["movie_info_idx"] = mi_idx_rows

    # -- person_info -----------------------------------------------------------------------------------
    pi_rows: List[tuple] = []
    pi_types = ["birth date", "birth notes", "height", "trivia", "quotes"]
    pi_type_weights = WeightedSampler(pi_types, [30, 15, 20, 25, 10])
    for i in range(config.rows(_BASE_SIZES["person_info"])):
        person_rank = person_sampler.sample(rng)
        info_kind = pi_type_weights.sample(rng)
        if info_kind == "birth date":
            info_value = f"{rng.randint(1930, 2000)}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
        elif info_kind == "height":
            info_value = f"{rng.randint(150, 200)} cm"
        elif info_kind == "birth notes":
            info_value = f"{COUNTRIES[rng.randrange(len(COUNTRIES))]}"
        else:
            info_value = f"Note {i}"
        pi_rows.append((i + 1, person_rank + 1, info_type_ids[info_kind], info_value))
    tables["person_info"] = pi_rows

    # -- movie_link ----------------------------------------------------------------------------------------
    ml_rows: List[tuple] = []
    for i in range(config.rows(_BASE_SIZES["movie_link"])):
        movie_rank = movie_sampler.sample(rng)
        linked_rank = movie_sampler.sample(rng)
        ml_rows.append(
            (
                i + 1,
                movie_rank + 1,
                linked_rank + 1,
                rng.randrange(len(LINK_TYPES)) + 1,
            )
        )
    tables["movie_link"] = ml_rows

    # -- complete_cast --------------------------------------------------------------------------------------
    cc_rows: List[tuple] = []
    for i in range(config.rows(_BASE_SIZES["complete_cast"])):
        movie_rank = movie_sampler.sample(rng)
        cc_rows.append(
            (
                i + 1,
                movie_rank + 1,
                rng.randrange(2) + 1,
                rng.randrange(2) + 3,
            )
        )
    tables["complete_cast"] = cc_rows

    return dataset


def build_imdb_database(
    config: ImdbConfig = None,
    dataset: ImdbDataset = None,
    settings: EngineSettings = None,
) -> Tuple[Database, ImdbDataset]:
    """Create a :class:`Database` loaded with the synthetic IMDB dataset.

    Either an existing ``dataset`` or a ``config`` (used to generate one) can
    be supplied.  Foreign-key indexes are built and every table is ANALYZEd,
    mirroring the paper's setup.

    Returns:
        ``(database, dataset)``.
    """
    if dataset is None:
        dataset = generate_imdb_dataset(config or ImdbConfig())
    database = Database(settings=settings)
    for schema in imdb_schemas():
        database.create_table(schema)
        database.load_rows(schema.name, dataset.tables.get(schema.name, []))
    database.finalize_load()
    return database, dataset
