"""Random value distributions used by the workload generators.

The synthetic IMDB dataset needs two properties the paper's analysis relies
on: *skew* (a few movies / actors / keywords account for a large share of the
fact-table rows) and *correlation* (popular entities are popular in every
fact table, and attribute values are correlated across join edges).  The
helpers in this module provide seeded, deterministic sampling primitives with
those properties.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Sequence


class ZipfSampler:
    """Samples integers ``0..n-1`` with a Zipf-like (power-law) distribution.

    Element ``i`` has weight ``1 / (i + 1) ** exponent``; element 0 is the
    most popular.  Sampling uses a precomputed cumulative table, so draws are
    ``O(log n)``.
    """

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n < 1:
            raise ValueError("ZipfSampler requires at least one element")
        self.n = n
        self.exponent = exponent
        weights = [1.0 / ((i + 1) ** exponent) for i in range(n)]
        total = sum(weights)
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self, rng: random.Random) -> int:
        """Draw one index."""
        return bisect.bisect_left(self._cumulative, rng.random())

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """Draw ``count`` independent indices."""
        return [self.sample(rng) for _ in range(count)]

    def probability(self, index: int) -> float:
        """Probability mass of ``index``."""
        if index < 0 or index >= self.n:
            return 0.0
        previous = self._cumulative[index - 1] if index > 0 else 0.0
        return self._cumulative[index] - previous


class WeightedSampler:
    """Samples from an explicit weight vector (used for categorical columns)."""

    def __init__(self, values: Sequence, weights: Sequence[float]) -> None:
        if len(values) != len(weights) or not values:
            raise ValueError("values and weights must be non-empty and aligned")
        self.values = list(values)
        total = float(sum(weights))
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self, rng: random.Random):
        """Draw one value."""
        return self.values[bisect.bisect_left(self._cumulative, rng.random())]


def skewed_year(rng: random.Random, popularity: float, low: int = 1930, high: int = 2018) -> int:
    """Production year correlated with popularity: popular titles are recent.

    ``popularity`` in ``[0, 1]``; values near 1 concentrate in the last ~15
    years, values near 0 are close to uniform over the whole range.
    """
    span = high - low
    recent_low = high - max(3, int(span * 0.2))
    if rng.random() < 0.25 + 0.65 * popularity:
        return rng.randint(recent_low, high)
    return rng.randint(low, high)


def correlated_choice(
    rng: random.Random,
    primary: Sequence,
    secondary: Sequence,
    correlation: float,
    anchor: int,
) -> object:
    """Choose from ``primary`` near ``anchor`` with probability ``correlation``.

    With probability ``correlation`` the value is drawn from a narrow window
    of ``primary`` centred on ``anchor`` (introducing a functional-ish
    dependency on the anchor); otherwise it is drawn uniformly from
    ``secondary``.
    """
    if primary and rng.random() < correlation:
        window = max(1, len(primary) // 10)
        start = max(0, min(len(primary) - window, anchor - window // 2))
        return primary[start + rng.randrange(window)]
    return secondary[rng.randrange(len(secondary))]


def pick_distinct(
    rng: random.Random, values: Sequence, count: int, required: Optional[Sequence] = None
) -> List:
    """Pick ``count`` distinct values, optionally forcing some to be included."""
    chosen: List = list(required or [])
    pool = [v for v in values if v not in chosen]
    rng.shuffle(pool)
    for value in pool:
        if len(chosen) >= count:
            break
        chosen.append(value)
    return chosen[:count]
