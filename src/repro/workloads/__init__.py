"""Workloads: synthetic IMDB dataset, JOB-like queries, and the stocks example."""

from repro.workloads.distributions import WeightedSampler, ZipfSampler
from repro.workloads.imdb import (
    ImdbConfig,
    ImdbDataset,
    ImdbVocabulary,
    build_imdb_database,
    generate_imdb_dataset,
    imdb_schemas,
)
from repro.workloads.job import (
    EXPECTED_TABLE_COUNTS,
    JobQuery,
    JobWorkloadConfig,
    bind_workload,
    generate_job_workload,
    table_count_distribution,
)
from repro.workloads.stocks import (
    StocksConfig,
    build_stocks_database,
    example_query,
    generate_stocks_rows,
    stocks_schemas,
)

__all__ = [
    "EXPECTED_TABLE_COUNTS",
    "ImdbConfig",
    "ImdbDataset",
    "ImdbVocabulary",
    "JobQuery",
    "JobWorkloadConfig",
    "StocksConfig",
    "WeightedSampler",
    "ZipfSampler",
    "bind_workload",
    "build_imdb_database",
    "build_stocks_database",
    "example_query",
    "generate_imdb_dataset",
    "generate_job_workload",
    "generate_stocks_rows",
    "imdb_schemas",
    "stocks_schemas",
    "table_count_distribution",
]
