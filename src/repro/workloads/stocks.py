"""The Nasdaq companies/trades skew example (paper Tables IV and V).

Section IV-C of the paper illustrates how skew across a join defeats the
uniformity assumption: a ``trades`` table whose ``company_id`` is heavily
skewed towards a handful of symbols, joined with a ``company`` table filtered
on one of those popular symbols.  Neither PostgreSQL nor the commercial
system the authors tried estimates the join size correctly.

This module generates that dataset and the example query so the behaviour
can be demonstrated on our engine (`examples/stocks_skew_demo.py` and the
``table45`` benchmark use it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.catalog.schema import ColumnType, make_schema
from repro.engine.database import Database
from repro.engine.settings import EngineSettings
from repro.workloads.distributions import ZipfSampler


@dataclass
class StocksConfig:
    """Size and skew of the synthetic trading dataset."""

    num_companies: int = 4000
    num_trades: int = 40000
    zipf_exponent: float = 1.1
    seed: int = 13

    #: Symbols given to the most heavily traded companies (paper's examples).
    popular_symbols: Tuple[str, ...] = ("APPL", "GOOG", "MSFT", "AMZN", "NVDA")


def stocks_schemas():
    """Schemas of the ``company`` and ``trades`` tables (paper Tables IV/V)."""
    I, T = ColumnType.INT, ColumnType.TEXT
    return [
        make_schema(
            "company",
            [("id", I), ("symbol", T), ("company", T)],
            primary_key="id",
        ),
        make_schema(
            "trades",
            [("id", I), ("company_id", I), ("shares", I)],
            primary_key="id",
            foreign_keys=[("company_id", "company", "id")],
        ),
    ]


def generate_stocks_rows(config: StocksConfig = None):
    """Generate ``(company_rows, trades_rows)`` with the paper's skew.

    Roughly half of all trading volume concentrates on a small fraction of
    the symbols ("40 stocks out of 4000 account for 50% of the volume").
    """
    config = config or StocksConfig()
    rng = random.Random(config.seed)
    companies: List[tuple] = []
    for i in range(config.num_companies):
        if i < len(config.popular_symbols):
            symbol = config.popular_symbols[i]
        else:
            symbol = f"S{i:04d}"
        companies.append((i + 1, symbol, f"{symbol} Inc."))
    sampler = ZipfSampler(config.num_companies, config.zipf_exponent)
    trades: List[tuple] = []
    for i in range(config.num_trades):
        company_rank = sampler.sample(rng)
        trades.append((i + 1, company_rank + 1, rng.randint(1, 10000)))
    return companies, trades


def build_stocks_database(
    config: StocksConfig = None, settings: EngineSettings = None
) -> Database:
    """Create a loaded, indexed and ANALYZEd trading database."""
    config = config or StocksConfig()
    database = Database(settings=settings)
    for schema in stocks_schemas():
        database.create_table(schema)
    companies, trades = generate_stocks_rows(config)
    database.load_rows("company", companies)
    database.load_rows("trades", trades)
    database.finalize_load()
    return database


def example_query(symbol: str = "APPL") -> str:
    """The paper's example query: all trades of one popular symbol."""
    return (
        "SELECT count(trades.id) AS num_trades\n"
        "FROM company, trades\n"
        f"WHERE company.symbol = '{symbol}'\n"
        "  AND company.id = trades.company_id;"
    )
