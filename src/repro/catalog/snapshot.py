"""Point-in-time catalog views (the catalog half of MVCC).

:meth:`~repro.catalog.catalog.Catalog.snapshot` pins, under the catalog
lock, the epoch plus a frozen :class:`~repro.catalog.catalog.CatalogEntry`
per table — schema and statistics by reference, a private copy of the index
dict, and a read-only storage snapshot
(:func:`~repro.storage.snapshot.take_snapshot`).  A
:class:`CatalogSnapshot` is a full :class:`Catalog` over those frozen
entries, so the binder, optimizer, all three engines and the adaptive
re-optimizer run against it unchanged.

The snapshot is **session-local and writable**: the re-optimizer registers
its transient intermediates and temporary tables right here, invisible to
every other session and to the shared base catalog.  Local DDL bumps only
the snapshot's private epoch; those locally bumped epochs never reach the
shared plan cache because the cache is probed (and populated) once per
statement, at plan time, before any mid-execution registration can happen.

Transient pseudo-tables of the *base* catalog are excluded from snapshots:
they belong to whatever statement is mid-flight on another session and are
dropped before that statement returns.
"""

from __future__ import annotations

from typing import Dict

from repro.catalog.catalog import Catalog, CatalogEntry

__all__ = ["CatalogSnapshot"]


class CatalogSnapshot(Catalog):
    """A :class:`Catalog` pinned at one epoch over frozen entries.

    Inherits every accessor and mutator; mutations touch only the
    snapshot's private entry dict and epoch, under its own (uncontended)
    lock.
    """

    def __init__(self, epoch: int, entries: Dict[str, CatalogEntry]) -> None:
        super().__init__()
        self._entries.update(entries)
        self._epoch = epoch
