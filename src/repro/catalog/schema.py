"""Schema objects: column types, column definitions, table schemas, foreign keys.

The schema layer is deliberately small and value-like.  A
:class:`TableSchema` is an immutable description of a table; the mutable
storage lives in :mod:`repro.storage.table`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import CatalogError


class ColumnType(enum.Enum):
    """Supported column types.

    The engine is intentionally limited to the types the Join Order
    Benchmark needs: integers (surrogate keys, years, counts) and strings
    (names, keywords, notes).  ``FLOAT`` exists for derived statistics and
    the stocks example.
    """

    INT = "int"
    FLOAT = "float"
    TEXT = "text"

    def python_type(self) -> type:
        """Return the Python type used to store values of this column type."""
        if self is ColumnType.INT:
            return int
        if self is ColumnType.FLOAT:
            return float
        return str

    def coerce(self, value):
        """Coerce ``value`` to this column type, passing ``None`` through."""
        if value is None:
            return None
        expected = self.python_type()
        if isinstance(value, expected):
            return value
        try:
            return expected(value)
        except (TypeError, ValueError) as exc:
            raise CatalogError(
                f"cannot coerce {value!r} to column type {self.value}"
            ) from exc


@dataclass(frozen=True)
class ColumnDef:
    """Definition of a single column.

    Attributes:
        name: column name, unique within its table.
        col_type: the :class:`ColumnType`.
        nullable: whether NULLs may be stored.
    """

    name: str
    col_type: ColumnType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge used to build join graphs and indexes.

    Attributes:
        column: referencing column in the owning table.
        ref_table: referenced table name.
        ref_column: referenced column name (usually the primary key).
    """

    column: str
    ref_table: str
    ref_column: str


@dataclass(frozen=True)
class PartitionSpec:
    """How a table is split into columnar shards.

    Attributes:
        method: ``"hash"`` (rows routed by a deterministic hash of the key)
            or ``"range"`` (rows routed by comparing the key against
            ``bounds``).
        column: the partition key column.
        partitions: number of partitions (hash partitioning only).
        bounds: strictly ascending *inclusive lower bounds* of partitions
            ``1..n-1`` (range partitioning only); keys below ``bounds[0]``
            land in partition 0, so ``len(bounds) + 1`` partitions exist.
            NULL keys always route to partition 0 under either method.
    """

    method: str
    column: str
    partitions: int = 0
    bounds: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        if self.method not in ("hash", "range"):
            raise CatalogError(
                f"unknown partition method {self.method!r} (expected 'hash' or 'range')"
            )
        if self.method == "hash":
            if self.partitions < 1:
                raise CatalogError(
                    f"hash partitioning needs at least 1 partition, got {self.partitions}"
                )
            if self.bounds:
                raise CatalogError("hash partitioning does not take range bounds")
        else:
            if not self.bounds:
                raise CatalogError("range partitioning needs at least one bound")
            if self.partitions:
                raise CatalogError(
                    "range partitioning derives its partition count from the bounds"
                )
            for low, high in zip(self.bounds, self.bounds[1:]):
                if not low < high:
                    raise CatalogError(
                        f"range partition bounds must be strictly ascending, got {self.bounds!r}"
                    )

    @property
    def num_partitions(self) -> int:
        """Total number of partitions the spec defines."""
        if self.method == "hash":
            return self.partitions
        return len(self.bounds) + 1


@dataclass(frozen=True)
class TableSchema:
    """Immutable description of a table.

    Attributes:
        name: table name, unique within a catalog.
        columns: ordered column definitions.
        primary_key: name of the primary key column, if any.
        foreign_keys: foreign-key edges departing from this table.
        partition_spec: optional :class:`PartitionSpec`; tables carrying one
            are stored as :class:`~repro.storage.partition.PartitionedTable`.
    """

    name: str
    columns: Tuple[ColumnDef, ...]
    primary_key: Optional[str] = None
    foreign_keys: Tuple[ForeignKey, ...] = field(default_factory=tuple)
    partition_spec: Optional[PartitionSpec] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"invalid table name: {self.name!r}")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise CatalogError(f"duplicate column names in table {self.name!r}")
        if self.primary_key is not None and self.primary_key not in names:
            raise CatalogError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise CatalogError(
                    f"foreign key column {fk.column!r} is not a column of {self.name!r}"
                )
        if self.partition_spec is not None and self.partition_spec.column not in names:
            raise CatalogError(
                f"partition key {self.partition_spec.column!r} is not a column "
                f"of {self.name!r}"
            )

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Names of all columns, in declaration order."""
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        """Return True if ``name`` is a column of this table."""
        return any(c.name == name for c in self.columns)

    def column(self, name: str) -> ColumnDef:
        """Return the :class:`ColumnDef` named ``name``.

        Raises:
            CatalogError: if the column does not exist.
        """
        for col in self.columns:
            if col.name == name:
                return col
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def column_index(self, name: str) -> int:
        """Return the positional index of column ``name``."""
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise CatalogError(f"table {self.name!r} has no column {name!r}")


def make_schema(
    name: str,
    columns: Sequence[Tuple[str, ColumnType]],
    primary_key: Optional[str] = None,
    foreign_keys: Sequence[Tuple[str, str, str]] = (),
    partition_by: Optional[PartitionSpec] = None,
) -> TableSchema:
    """Convenience constructor used throughout the workloads and tests.

    Args:
        name: table name.
        columns: sequence of ``(column_name, ColumnType)`` pairs.
        primary_key: optional primary key column name.
        foreign_keys: sequence of ``(column, ref_table, ref_column)`` triples.
        partition_by: optional :class:`PartitionSpec` splitting the table
            into hash- or range-partitioned shards.

    Returns:
        A validated :class:`TableSchema`.
    """
    cols = tuple(ColumnDef(cname, ctype) for cname, ctype in columns)
    fks = tuple(ForeignKey(col, rt, rc) for col, rt, rc in foreign_keys)
    return TableSchema(
        name=name,
        columns=cols,
        primary_key=primary_key,
        foreign_keys=fks,
        partition_spec=partition_by,
    )
