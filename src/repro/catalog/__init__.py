"""Catalog subsystem: schemas, foreign keys and the table registry."""

from repro.catalog.catalog import Catalog, CatalogEntry
from repro.catalog.schema import (
    ColumnDef,
    ColumnType,
    ForeignKey,
    PartitionSpec,
    TableSchema,
    make_schema,
)

__all__ = [
    "Catalog",
    "CatalogEntry",
    "ColumnDef",
    "ColumnType",
    "ForeignKey",
    "PartitionSpec",
    "TableSchema",
    "make_schema",
]
