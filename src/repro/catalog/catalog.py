"""The catalog: a registry of table schemas, storage handles and statistics.

The catalog is the single object the SQL binder, the optimizer and the
executor share.  It maps table names to:

* the :class:`~repro.catalog.schema.TableSchema`,
* the storage object (a :class:`~repro.storage.table.Table`),
* the per-table statistics produced by ANALYZE
  (:class:`~repro.stats.column_stats.TableStats`), and
* any secondary indexes.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

from repro.catalog.schema import TableSchema
from repro.errors import CatalogError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.stats.column_stats import TableStats
    from repro.storage.index import Index
    from repro.storage.table import Table


class CatalogEntry:
    """Everything the engine knows about one table."""

    def __init__(
        self, schema: TableSchema, table: "Table", transient: bool = False
    ) -> None:
        self.schema = schema
        self.table = table
        self.stats: Optional["TableStats"] = None
        self.indexes: Dict[str, "Index"] = {}
        #: True for adaptive-execution pseudo-tables (see register_transient).
        self.transient = transient

    def index_on(self, column: str) -> Optional["Index"]:
        """Return an index whose key column is ``column``, if one exists."""
        return self.indexes.get(column)


class Catalog:
    """Registry of tables known to a :class:`~repro.engine.database.Database`.

    The catalog carries a monotonically increasing *epoch* that is bumped by
    every event that can invalidate a cached plan: table DDL (including the
    re-optimizer's temporary tables), ANALYZE refreshing statistics, and
    index creation.  The plan cache keys entries on the epoch, so stale
    plans simply miss instead of needing explicit invalidation hooks.

    Every mutation (registration, drop, epoch bump, statistics/index
    attachment — including the transient pseudo-table handover of the
    adaptive executor) runs under :attr:`lock`, a reentrant lock that the
    :class:`~repro.engine.database.Database` write paths also hold across
    their compound operations.  Readers of individual entries stay lock-free
    (single dict probes are atomic); multi-entry readers that need a
    consistent point-in-time view take a snapshot via
    :meth:`~repro.engine.database.Database.snapshot` instead of locking.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, CatalogEntry] = {}
        self._epoch = 0
        #: Guards every catalog mutation; reentrant so compound Database
        #: write operations (ANALYZE over many tables, index builds) can
        #: hold it across their internal catalog calls.
        self.lock = threading.RLock()
        # Storage snapshots reused across snapshot() calls while a table's
        # identity and row count are unchanged, so the lazy pinned-column
        # copies amortize over every statement between two writes.
        self._table_snapshots: Dict[str, Tuple[object, int, object]] = {}

    @property
    def epoch(self) -> int:
        """Current catalog/statistics epoch (see class docstring)."""
        return self._epoch

    def bump_epoch(self) -> int:
        """Advance the epoch, invalidating every plan cached against it."""
        with self.lock:
            self._epoch += 1
            return self._epoch

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def table_names(self) -> List[str]:
        """Names of all registered tables, in registration order."""
        with self.lock:
            return list(self._entries)

    def register(self, schema: TableSchema, table: "Table") -> CatalogEntry:
        """Register a table.

        Raises:
            CatalogError: if a table with the same name already exists.
        """
        with self.lock:
            if schema.name in self._entries:
                raise CatalogError(f"table {schema.name!r} already exists")
            entry = CatalogEntry(schema, table)
            self._entries[schema.name] = entry
            self.bump_epoch()
            return entry

    def register_transient(self, schema: TableSchema, table: "Table") -> CatalogEntry:
        """Register a pseudo-table *without* bumping the epoch.

        The adaptive executor hands an already-computed in-memory intermediate
        to a re-planned query remainder by registering it here mid-execution.
        The registration is not DDL: no statement can name the table (its name
        is generated and dropped before the query returns), so cached plans
        for other statements stay valid and the catalog epoch — which keys the
        plan cache — must not move.

        Raises:
            CatalogError: if a table with the same name already exists.
        """
        with self.lock:
            if schema.name in self._entries:
                raise CatalogError(f"table {schema.name!r} already exists")
            entry = CatalogEntry(schema, table, transient=True)
            self._entries[schema.name] = entry
            return entry

    def drop_transient(self, name: str) -> None:
        """Remove a transient pseudo-table without bumping the epoch.

        Raises:
            CatalogError: if the table does not exist or is not transient.
        """
        with self.lock:
            entry = self.entry(name)
            if not entry.transient:
                raise CatalogError(
                    f"table {name!r} is not transient; use drop() for real tables"
                )
            del self._entries[name]

    def drop(self, name: str) -> None:
        """Remove a table from the catalog.

        Raises:
            CatalogError: if the table does not exist.
        """
        with self.lock:
            if name not in self._entries:
                raise CatalogError(f"cannot drop unknown table {name!r}")
            del self._entries[name]
            self.bump_epoch()

    def entry(self, name: str) -> CatalogEntry:
        """Return the :class:`CatalogEntry` for ``name``.

        Raises:
            CatalogError: if the table does not exist.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def schema(self, name: str) -> TableSchema:
        """Return the schema of table ``name``."""
        return self.entry(name).schema

    def table(self, name: str) -> "Table":
        """Return the storage object of table ``name``."""
        return self.entry(name).table

    def stats(self, name: str) -> Optional["TableStats"]:
        """Return ANALYZE statistics for ``name`` (``None`` before ANALYZE)."""
        return self.entry(name).stats

    def set_stats(self, name: str, stats: "TableStats") -> None:
        """Attach ANALYZE statistics to table ``name`` (bumps the epoch)."""
        with self.lock:
            self.entry(name).stats = stats
            self.bump_epoch()

    def add_index(self, table_name: str, index: "Index") -> None:
        """Register a secondary index on ``table_name`` keyed by its column.

        Bumps the epoch: an index changes the access paths available to the
        planner, so previously cached plans may no longer be optimal.
        """
        with self.lock:
            entry = self.entry(table_name)
            entry.indexes[index.column] = index
            self.bump_epoch()

    def indexes(self, table_name: str) -> Dict[str, "Index"]:
        """Return the indexes of ``table_name`` keyed by column name."""
        return self.entry(table_name).indexes

    def snapshot(self) -> "Catalog":
        """Pin a consistent point-in-time view of the whole catalog.

        Returns a :class:`~repro.catalog.snapshot.CatalogSnapshot`: the
        current epoch plus one frozen entry per (non-transient) table —
        schema and stats by reference, a private copy of the index dict,
        and a read-only storage snapshot.  Storage snapshots are reused
        across calls while a table's identity and row count are unchanged;
        transient pseudo-tables belong to a statement mid-flight on some
        other session and are excluded.
        """
        from repro.catalog.snapshot import CatalogSnapshot
        from repro.storage.snapshot import take_snapshot

        with self.lock:
            cache: Dict[str, Tuple[object, int, object]] = {}
            frozen: Dict[str, CatalogEntry] = {}
            for name, entry in self._entries.items():
                if entry.transient:
                    continue
                table = entry.table
                prior = self._table_snapshots.get(name)
                if (
                    prior is not None
                    and prior[0] is table
                    and prior[1] == table.row_count
                ):
                    snap_table = prior[2]
                else:
                    snap_table = take_snapshot(table)
                cache[name] = (table, table.row_count, snap_table)
                frozen_entry = CatalogEntry(entry.schema, snap_table)
                frozen_entry.stats = entry.stats
                frozen_entry.indexes = dict(entry.indexes)
                frozen[name] = frozen_entry
            self._table_snapshots = cache
            return CatalogSnapshot(self._epoch, frozen)
