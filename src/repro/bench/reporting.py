"""Plain-text rendering of experiment results and the CI trajectory hook.

The paper's evaluation artifacts are bar charts, line plots and small tables.
Offline and dependency-free, we render every artifact as an aligned text
table (one row per bar / series point / bucket) so the benchmark output can
be compared side by side with the paper's figures.

:class:`BenchmarkRecorder` is the small hook the CI benchmark job uses to
track the performance trajectory across PRs: benchmark tests record headline
metrics (simulated execution seconds, re-optimization step counts, operator
throughput), the session fixture writes them as ``BENCH_pr.json``, and
``python -m repro.bench.compare`` gates the job against the checked-in
``BENCH_baseline.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:.0f}"
        if cell >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, *values: object) -> None:
        """Append one row."""
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Append a free-text note shown below the table."""
        self.notes.append(note)

    def to_text(self) -> str:
        """Render the experiment as the text artifact printed by benchmarks."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(format_table(self.headers, self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, name: str) -> List[object]:
        """Values of one column (for assertions in benchmarks and tests)."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def row_by(self, key_column: str, key: object) -> Optional[List[object]]:
        """First row whose ``key_column`` equals ``key``."""
        index = self.headers.index(key_column)
        for row in self.rows:
            if row[index] == key:
                return row
        return None


# -- CI benchmark-trajectory reporting ---------------------------------------

#: How a metric is gated by ``repro.bench.compare``:
#: ``"lower"``/``"higher"`` say which direction is better (the comparison
#: fails on a >max-regression move the wrong way); ``"info"`` metrics are
#: reported but never gated — use it for wall-clock quantities that vary
#: across CI runners (the simulated work metrics are deterministic).
DIRECTIONS = ("lower", "higher", "info")

#: Version of the ``BENCH_*.json`` schema.
BENCH_SCHEMA_VERSION = 1


class BenchmarkRecorder:
    """Collects headline benchmark metrics for the CI trajectory gate."""

    def __init__(self) -> None:
        self.metrics: Dict[str, Dict[str, object]] = {}
        self.meta: Dict[str, object] = {}

    def record(self, key: str, value: float, direction: str = "info") -> None:
        """Record one metric (re-recording a key overwrites it).

        Args:
            key: dotted metric name, e.g. ``"fig1.reopt_exec_s"``.
            value: the measured value.
            direction: one of :data:`DIRECTIONS`.
        """
        if direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {direction!r}"
            )
        self.metrics[key] = {"value": float(value), "direction": direction}

    def to_dict(self) -> Dict[str, object]:
        """The JSON-serializable report."""
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "meta": dict(self.meta),
            "metrics": {key: dict(entry) for key, entry in sorted(self.metrics.items())},
        }

    def write(self, path: str) -> None:
        """Write the report to ``path`` as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
