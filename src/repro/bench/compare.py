"""CI benchmark-trajectory gate: compare ``BENCH_pr.json`` to the baseline.

Usage (exactly what the CI benchmark job runs)::

    python -m repro.bench.compare BENCH_baseline.json BENCH_pr.json \
        --max-regression 0.20

Every gated metric in the baseline (``direction`` of ``"lower"`` or
``"higher"``) must be present in the PR report and must not move more than
``--max-regression`` (relative) in the worse direction; ``"info"`` metrics —
wall-clock quantities that vary across CI runners — are printed for the
record but never fail the job.  The gated metrics are simulated work/time
quantities, which are deterministic for a given scale, so the gate is stable
across machines.

Exit status: 0 when every gated metric passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple


def load_report(path: str) -> Dict[str, object]:
    """Load one ``BENCH_*.json`` report (must have a ``metrics`` section)."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if not isinstance(report.get("metrics"), dict):
        raise ValueError(f"{path} has no 'metrics' section")
    return report


def compare_metrics(
    baseline: Dict[str, Dict[str, object]],
    current: Dict[str, Dict[str, object]],
    max_regression: float,
) -> Tuple[List[str], List[str]]:
    """Compare two metric sets; returns ``(report_lines, failures)``."""
    lines: List[str] = []
    failures: List[str] = []
    for key in sorted(baseline):
        base_entry = baseline[key]
        base = float(base_entry["value"])
        direction = str(base_entry.get("direction", "info"))
        entry = current.get(key)
        if entry is None:
            if direction == "info":
                lines.append(f"  {key}: missing from PR report (info, ignored)")
            else:
                failures.append(f"{key}: gated metric missing from PR report")
            continue
        value = float(entry["value"])
        delta_pct: Optional[float] = None
        if base != 0.0:
            delta_pct = 100.0 * (value - base) / abs(base)
        delta_text = "n/a" if delta_pct is None else f"{delta_pct:+.1f}%"
        lines.append(
            f"  {key}: baseline={base:g} current={value:g} "
            f"delta={delta_text} [{direction}]"
        )
        if direction == "info":
            continue
        if base == 0.0:
            # Relative regression against zero is undefined; make the hole
            # visible instead of silently passing.
            lines.append(f"  {key}: baseline is 0, not gated")
            continue
        if direction == "lower" and value > base * (1.0 + max_regression):
            failures.append(
                f"{key}: {value:g} is more than "
                f"{max_regression:.0%} worse than baseline {base:g}"
            )
        elif direction == "higher" and value < base * (1.0 - max_regression):
            failures.append(
                f"{key}: {value:g} is more than "
                f"{max_regression:.0%} worse than baseline {base:g}"
            )
    for key in sorted(set(current) - set(baseline)):
        value = current[key]["value"]
        lines.append(f"  {key}: new metric (no baseline), current={value:g}")
    return lines, failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare", description=__doc__
    )
    parser.add_argument("baseline", help="checked-in BENCH_baseline.json")
    parser.add_argument("current", help="freshly generated BENCH_pr.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="maximum tolerated relative regression on gated metrics "
        "(default: 0.20)",
    )
    args = parser.parse_args(argv)

    baseline_report = load_report(args.baseline)
    current_report = load_report(args.current)
    base_scale = baseline_report.get("meta", {}).get("scale")
    current_scale = current_report.get("meta", {}).get("scale")
    if base_scale != current_scale:
        # Simulated metrics are only comparable at the same workload scale.
        print(
            f"FAIL: incomparable reports — baseline scale={base_scale} "
            f"vs current scale={current_scale}; regenerate the baseline "
            "at the current REPRO_BENCH_SCALE"
        )
        return 1
    baseline = baseline_report["metrics"]
    current = current_report["metrics"]
    lines, failures = compare_metrics(baseline, current, args.max_regression)
    print(f"benchmark trajectory: {args.current} vs {args.baseline}")
    for line in lines:
        print(line)
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed beyond "
              f"{args.max_regression:.0%}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nOK: no gated metric regressed beyond "
          f"{args.max_regression:.0%}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
