"""Estimation/execution regimes compared by the paper.

A *regime* is a way of planning and executing one query:

* ``postgres`` — the plain statistical estimator (the "PostgreSQL" bars);
* ``perfect-(n)`` — true cardinalities injected for joins of at most ``n``
  tables (perfect-(17) is "Perfect");
* ``reoptimized`` — the paper's materialize-and-re-plan scheme, optionally on
  top of perfect-(n) estimates (Figure 8);
* ``midquery`` — the pipelined variant without materialization surcharge
  (ablation).

Regimes produce :class:`QueryOutcome` records with simulated planning and
execution times, which the experiments aggregate into the paper's artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.interceptor import ReoptimizationInterceptor
from repro.core.midquery import MidQueryReoptimizer
from repro.core.oracle import TrueCardinalityOracle
from repro.core.triggers import ReoptimizationPolicy
from repro.engine.database import Database
from repro.engine.pipeline import QueryPipeline
from repro.optimizer.injection import CardinalityInjector
from repro.sql.binder import BoundQuery


@dataclass
class QueryOutcome:
    """Planning/execution accounting of one query under one regime.

    ``rows_processed`` / ``wall_seconds`` capture the *real* operator
    throughput of the run (rows produced across all plan nodes per
    wall-clock second) — the quantity the vectorized engine improves —
    while the simulated ``*_seconds`` fields stay engine-invariant.
    """

    query_name: str
    regime: str
    planning_seconds: float
    execution_seconds: float
    rows: int
    reoptimization_steps: int = 0
    rows_processed: int = 0
    wall_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Planning plus execution."""
        return self.planning_seconds + self.execution_seconds

    @property
    def rows_per_second(self) -> float:
        """Wall-clock operator throughput (0.0 when not measured)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.rows_processed / self.wall_seconds


class Regime:
    """Interface: run one bound query and account for it.

    Every regime serves queries through the engine's
    :class:`~repro.engine.pipeline.QueryPipeline`; a regime differs only in
    the interceptors it installs and the cardinality injector it plans with.
    Plan caching is deliberately absent here: the paper's figures charge
    every query a full planning round.
    """

    name = "regime"

    def run(self, database: Database, query: BoundQuery) -> QueryOutcome:
        """Execute ``query`` under this regime."""
        raise NotImplementedError

    def _pipeline(self, database: Database) -> QueryPipeline:
        """The lifecycle pipeline this regime runs queries through."""
        return QueryPipeline(database)

    def _outcome(self, query: BoundQuery, context) -> QueryOutcome:
        """Fold a finished lifecycle context into the regime's accounting."""
        steps = len(context.report.steps) if context.report is not None else 0
        return QueryOutcome(
            query_name=query.name or "",
            regime=self.name,
            planning_seconds=context.planning_seconds,
            execution_seconds=context.execution_seconds,
            rows=len(context.rows),
            reoptimization_steps=steps,
            rows_processed=context.rows_processed,
            wall_seconds=context.wall_seconds,
        )


class PostgresRegime(Regime):
    """Plain optimizer with its statistical estimates (the baseline)."""

    name = "postgres"

    def __init__(self, injector: Optional[CardinalityInjector] = None) -> None:
        self._injector = injector

    def run(self, database: Database, query: BoundQuery) -> QueryOutcome:
        context = self._pipeline(database).run(bound=query, injector=self._injector)
        return self._outcome(query, context)


class PerfectRegime(Regime):
    """Perfect-(n): true cardinalities for joins of at most ``n`` tables."""

    def __init__(self, oracle: TrueCardinalityOracle, max_tables: int) -> None:
        self._oracle = oracle
        self.max_tables = max_tables
        self.name = f"perfect-{max_tables}"

    def run(self, database: Database, query: BoundQuery) -> QueryOutcome:
        injector = self._oracle.perfect_injection(self.max_tables)
        context = self._pipeline(database).run(bound=query, injector=injector)
        return self._outcome(query, context)


class ReoptimizedRegime(Regime):
    """The paper's re-optimization scheme (optionally on top of perfect-(n))."""

    def __init__(
        self,
        policy: Optional[ReoptimizationPolicy] = None,
        oracle: Optional[TrueCardinalityOracle] = None,
        perfect_tables: int = 0,
        name: Optional[str] = None,
    ) -> None:
        self.policy = policy or ReoptimizationPolicy()
        self._oracle = oracle
        self.perfect_tables = perfect_tables
        if name is not None:
            self.name = name
        elif perfect_tables > 0:
            self.name = f"reopt+perfect-{perfect_tables}"
        else:
            self.name = f"reopt-{int(self.policy.threshold)}"

    def _injector(self) -> Optional[CardinalityInjector]:
        if self._oracle is not None and self.perfect_tables > 0:
            return self._oracle.perfect_injection(self.perfect_tables)
        return None

    def run(self, database: Database, query: BoundQuery) -> QueryOutcome:
        pipeline = QueryPipeline(database, [ReoptimizationInterceptor(self.policy)])
        context = pipeline.run(bound=query, injector=self._injector())
        return self._outcome(query, context)


class MidQueryRegime(ReoptimizedRegime):
    """Pipelined re-optimization without materialization surcharge (ablation)."""

    def __init__(
        self,
        policy: Optional[ReoptimizationPolicy] = None,
    ) -> None:
        super().__init__(policy=policy, name="midquery")

    def run(self, database: Database, query: BoundQuery) -> QueryOutcome:
        reoptimizer = MidQueryReoptimizer(database, self.policy)
        report = reoptimizer.reoptimize(query)
        return QueryOutcome(
            query_name=query.name or "",
            regime=self.name,
            planning_seconds=report.planning_seconds,
            execution_seconds=report.execution_seconds,
            rows=len(report.rows),
            reoptimization_steps=len(report.steps),
            rows_processed=report.rows_processed,
            wall_seconds=report.wall_seconds,
        )
