"""One experiment function per table and figure of the paper's evaluation.

Every function takes a :class:`~repro.bench.harness.WorkloadContext` and
returns an :class:`~repro.bench.reporting.ExperimentResult` whose rows mirror
the series/bars/buckets of the corresponding paper artifact.  The benchmark
modules under ``benchmarks/`` call these functions and print the text tables;
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import (
    WorkloadContext,
    run_matrix,
    run_workload,
    throughput,
    total_seconds,
)
from repro.bench.regimes import (
    MidQueryRegime,
    PerfectRegime,
    PostgresRegime,
    QueryOutcome,
    ReoptimizedRegime,
)
from repro.bench.reporting import ExperimentResult
from repro.core.feedback import FeedbackLoop
from repro.core.interceptor import ReoptimizationInterceptor
from repro.core.triggers import ReoptimizationPolicy, q_error
from repro.engine.pipeline import FeedbackHarvestInterceptor, QueryPipeline
from repro.core.oracle import TrueCardinalityOracle
from repro.optimizer.optimizer import Optimizer
from repro.workloads.job import table_count_distribution
from repro.workloads.stocks import StocksConfig, build_stocks_database, example_query

#: Number of tables in the largest workload query ("perfect" = perfect-(17)).
MAX_PERFECT = 17

#: Q-error thresholds swept by Figure 7 (the paper's x-axis).
FIGURE7_THRESHOLDS = (2, 4, 8, 16, 32, 64, 100, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)


# ---------------------------------------------------------------------------
# Regime helpers
# ---------------------------------------------------------------------------


def postgres_regime() -> PostgresRegime:
    """The baseline regime."""
    return PostgresRegime()


def perfect_regime(context: WorkloadContext, n: int) -> PerfectRegime:
    """Perfect-(n) regime sharing the context's oracle."""
    return PerfectRegime(context.oracle, n)


def reoptimized_regime(
    context: WorkloadContext,
    threshold: float = 32.0,
    perfect_tables: int = 0,
) -> ReoptimizedRegime:
    """Re-optimization regime (optionally on top of perfect-(n))."""
    policy = ReoptimizationPolicy(threshold=threshold)
    return ReoptimizedRegime(
        policy=policy, oracle=context.oracle, perfect_tables=perfect_tables
    )


def _longest_query_names(context: WorkloadContext, count: int) -> List[str]:
    """Names of the ``count`` longest-running queries under the baseline."""
    outcomes = run_workload(context, postgres_regime())
    ranked = sorted(outcomes, key=lambda o: o.execution_seconds, reverse=True)
    return [outcome.query_name for outcome in ranked[:count]]


# ---------------------------------------------------------------------------
# Figure 1 — top-20 longest queries under five regimes
# ---------------------------------------------------------------------------


def figure1(context: WorkloadContext, top: int = 20) -> ExperimentResult:
    """Planning and execution time of the top-``top`` longest queries.

    Compares PostgreSQL-style estimates, perfect-(3), perfect-(4), the
    re-optimization scheme and perfect estimates (paper Figure 1).
    """
    names = _longest_query_names(context, top)
    regimes = [
        postgres_regime(),
        perfect_regime(context, 3),
        perfect_regime(context, 4),
        reoptimized_regime(context),
        perfect_regime(context, MAX_PERFECT),
    ]
    labels = {
        "postgres": "PostgreSQL",
        "perfect-3": "Perfect-(3)",
        "perfect-4": "Perfect-(4)",
        "reopt-32": "Re-optimized",
        f"perfect-{MAX_PERFECT}": "Perfect",
    }
    matrix = run_matrix(context, regimes, names)
    result = ExperimentResult(
        experiment_id="fig1",
        title=f"Top-{top} longest queries: planning + execution time (simulated s)",
        headers=["regime", "execute_s", "plan_s", "total_s"],
    )
    for regime in regimes:
        execution, planning = total_seconds(matrix[regime.name])
        result.add_row(labels[regime.name], execution, planning, execution + planning)
    result.metadata["query_names"] = names
    # Re-optimization activity on the top queries: how many materialize/
    # re-plan steps the scheme took in total (the CI trajectory report tracks
    # this next to the headline times).
    result.metadata["reopt_steps_total"] = sum(
        outcome.reoptimization_steps for outcome in matrix["reopt-32"]
    )
    # Real operator throughput of the executor (engine-dependent), reported
    # alongside the engine-invariant simulated times so the harness artifacts
    # capture the vectorized engine's speedup.
    summary = throughput(outcome for outcomes in matrix.values() for outcome in outcomes)
    result.metadata["rows_processed"] = summary.rows_processed
    result.metadata["executor_wall_seconds"] = summary.wall_seconds
    result.metadata["rows_per_second"] = summary.rows_per_second
    result.add_note(
        f"executor throughput: {summary.rows_per_second:,.0f} rows/s "
        f"({summary.rows_processed:,} rows in {summary.wall_seconds:.2f}s wall)"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 2 — perfect-(n) sweep over the whole workload
# ---------------------------------------------------------------------------


def figure2(
    context: WorkloadContext, ns: Optional[Sequence[int]] = None
) -> ExperimentResult:
    """Total planning + execution time with perfect-(n), n = 0..17 (Figure 2)."""
    ns = list(ns) if ns is not None else list(range(0, MAX_PERFECT + 1))
    regimes = []
    for n in ns:
        regimes.append(postgres_regime() if n == 0 else perfect_regime(context, n))
    matrix = run_matrix(context, regimes)
    result = ExperimentResult(
        experiment_id="fig2",
        title="Whole workload: planning + execution vs perfect-(n)",
        headers=["perfect_n", "execute_s", "plan_s", "total_s"],
    )
    for n, regime in zip(ns, regimes):
        execution, planning = total_seconds(matrix[regime.name])
        result.add_row(n, execution, planning, execution + planning)
    return result


# ---------------------------------------------------------------------------
# Table I — number of cardinality estimates per join size
# ---------------------------------------------------------------------------


def table1(context: WorkloadContext) -> ExperimentResult:
    """Number of cardinality estimates on joins of N tables (paper Table I)."""
    counts: Dict[int, int] = {}
    optimizer = Optimizer(
        context.database.catalog,
        cost_params=context.database.settings.cost,
        planner_config=context.database.settings.planner,
    )
    for name in context.query_names():
        planned = optimizer.plan(context.query(name))
        for size, count in planned.stats.estimates_by_size.items():
            counts[size] = counts.get(size, 0) + count
    result = ExperimentResult(
        experiment_id="table1",
        title="Number of cardinality estimates on joins of N tables",
        headers=["tables_in_join", "num_estimates"],
    )
    for size in sorted(counts):
        result.add_row(size, counts[size])
    return result


# ---------------------------------------------------------------------------
# Tables II and VI — per-query runtime relative to perfect-(17)
# ---------------------------------------------------------------------------

RELATIVE_BUCKETS = ((0.1, 0.8), (0.8, 1.2), (1.2, 2.0), (2.0, 5.0), (5.0, float("inf")))
BUCKET_LABELS = ("0.1 - 0.8", "0.8 - 1.2", "1.2 - 2.0", "2.0 - 5.0", "> 5.0")


def _relative_runtime_histogram(
    baseline: Sequence[QueryOutcome], perfect: Sequence[QueryOutcome]
) -> List[int]:
    perfect_by_name = {o.query_name: o for o in perfect}
    buckets = [0] * len(RELATIVE_BUCKETS)
    for outcome in baseline:
        reference = perfect_by_name[outcome.query_name]
        denominator = max(reference.execution_seconds, 1e-9)
        ratio = outcome.execution_seconds / denominator
        for index, (low, high) in enumerate(RELATIVE_BUCKETS):
            if (ratio >= low or index == 0) and ratio < high:
                buckets[index] += 1
                break
        else:
            buckets[-1] += 1
    return buckets


def table2(context: WorkloadContext) -> ExperimentResult:
    """Runtime of the baseline relative to perfect-(17), bucketed (Table II)."""
    matrix = run_matrix(
        context, [postgres_regime(), perfect_regime(context, MAX_PERFECT)]
    )
    buckets = _relative_runtime_histogram(
        matrix["postgres"], matrix[f"perfect-{MAX_PERFECT}"]
    )
    result = ExperimentResult(
        experiment_id="table2",
        title="Execution time of queries with default estimates relative to perfect-(17)",
        headers=["relative_runtime", "num_queries"],
    )
    for label, count in zip(BUCKET_LABELS, buckets):
        result.add_row(label, count)
    return result


def table6(context: WorkloadContext, threshold: float = 32.0) -> ExperimentResult:
    """Runtime after re-optimization relative to perfect-(17), bucketed (Table VI)."""
    matrix = run_matrix(
        context,
        [
            reoptimized_regime(context, threshold=threshold),
            perfect_regime(context, MAX_PERFECT),
        ],
    )
    buckets = _relative_runtime_histogram(
        matrix[f"reopt-{int(threshold)}"], matrix[f"perfect-{MAX_PERFECT}"]
    )
    result = ExperimentResult(
        experiment_id="table6",
        title="Execution time of queries with re-optimization relative to perfect-(17)",
        headers=["relative_runtime", "num_queries"],
    )
    for label, count in zip(BUCKET_LABELS, buckets):
        result.add_row(label, count)
    return result


# ---------------------------------------------------------------------------
# Table III — number of queries per table count
# ---------------------------------------------------------------------------


def table3(context: WorkloadContext) -> ExperimentResult:
    """Number of workload queries with a given number of tables (Table III)."""
    distribution = table_count_distribution(context.job_queries)
    result = ExperimentResult(
        experiment_id="table3",
        title="Number of queries in the workload with a given number of tables",
        headers=["num_tables", "num_queries"],
    )
    for tables, count in distribution.items():
        result.add_row(tables, count)
    return result


# ---------------------------------------------------------------------------
# Figure 5 — iterative selective improvement (LEO-style feedback)
# ---------------------------------------------------------------------------


def figure5(
    context: WorkloadContext,
    query_names: Optional[Sequence[str]] = None,
    threshold: float = 32.0,
    max_iterations: int = 64,
) -> ExperimentResult:
    """Per-iteration execution time under iterative estimate correction (Figure 5).

    By default the three workload queries with the worst baseline-vs-perfect
    slowdown play the role of the paper's 16b / 25c / 30a.
    """
    if query_names is None:
        query_names = _worst_relative_queries(context, 3)
    perfect = perfect_regime(context, MAX_PERFECT)
    result = ExperimentResult(
        experiment_id="fig5",
        title="Execution time per iteration of selective estimate correction",
        headers=["query", "iteration", "execution_s", "perfect_s"],
    )
    loop = FeedbackLoop(
        context.database, threshold=threshold, max_iterations=max_iterations
    )
    for name in query_names:
        perfect_outcome = regime_outcome(context, perfect, name)
        feedback = loop.run(context.query(name))
        for iteration in feedback.iterations:
            result.add_row(
                name,
                iteration.index,
                iteration.execution_seconds,
                perfect_outcome.execution_seconds,
            )
        context.oracle.release_intermediates(context.query(name))
    result.metadata["query_names"] = list(query_names)
    return result


def _worst_relative_queries(context: WorkloadContext, count: int) -> List[str]:
    matrix = run_matrix(
        context, [postgres_regime(), perfect_regime(context, MAX_PERFECT)]
    )
    perfect_by_name = {o.query_name: o for o in matrix[f"perfect-{MAX_PERFECT}"]}
    ranked = sorted(
        matrix["postgres"],
        key=lambda o: o.execution_seconds
        / max(perfect_by_name[o.query_name].execution_seconds, 1e-9),
        reverse=True,
    )
    return [outcome.query_name for outcome in ranked[:count]]


def regime_outcome(
    context: WorkloadContext, regime, query_name: str
) -> QueryOutcome:
    """Convenience wrapper around the harness cache for one query."""
    from repro.bench.harness import run_query

    return run_query(context, regime, query_name)


# ---------------------------------------------------------------------------
# Figure 6 — the re-optimization rewrite example
# ---------------------------------------------------------------------------


def figure6(
    context: WorkloadContext, query_name: Optional[str] = None, threshold: float = 32.0
) -> ExperimentResult:
    """The CREATE TEMP TABLE rewrite produced by re-optimization (Figure 6)."""
    def reoptimize(name: str):
        pipeline = QueryPipeline(
            context.database,
            [ReoptimizationInterceptor(ReoptimizationPolicy(threshold=threshold))],
        )
        return pipeline.run(bound=context.query(name)).report

    if query_name is None:
        for candidate in _longest_query_names(context, 10):
            report = reoptimize(candidate)
            if report.reoptimized:
                query_name = candidate
                break
        else:  # pragma: no cover - the workload always triggers at least once
            query_name = context.query_names()[0]
            report = reoptimize(query_name)
    else:
        report = reoptimize(query_name)
    result = ExperimentResult(
        experiment_id="fig6",
        title=f"Re-optimization rewrite of {query_name}",
        headers=["step", "trigger", "q_error", "temp_rows"],
    )
    for step in report.steps:
        result.add_row(step.index, ",".join(step.trigger_aliases), step.q_error, step.temp_rows)
    result.metadata["original_sql"] = context.query(query_name).to_sql()
    result.metadata["rewritten_sql"] = report.rewritten_sql()
    result.add_note("rewritten script:\n" + report.rewritten_sql())
    return result


# ---------------------------------------------------------------------------
# Figure 7 — threshold sweep
# ---------------------------------------------------------------------------


def figure7(
    context: WorkloadContext, thresholds: Optional[Sequence[float]] = None
) -> ExperimentResult:
    """Planning/execution time vs re-optimization threshold (Figure 7)."""
    thresholds = list(thresholds) if thresholds is not None else list(FIGURE7_THRESHOLDS)
    regimes = [reoptimized_regime(context, threshold=t) for t in thresholds]
    regimes.append(postgres_regime())
    regimes.append(perfect_regime(context, MAX_PERFECT))
    matrix = run_matrix(context, regimes)
    result = ExperimentResult(
        experiment_id="fig7",
        title="Whole workload: planning + execution vs re-optimization threshold",
        headers=["threshold", "execute_s", "plan_s", "total_s"],
    )
    for threshold, regime in zip(thresholds, regimes[: len(thresholds)]):
        execution, planning = total_seconds(matrix[regime.name])
        result.add_row(int(threshold), execution, planning, execution + planning)
    for label, regime in (("PG", regimes[-2]), ("Perfect", regimes[-1])):
        execution, planning = total_seconds(matrix[regime.name])
        result.add_row(label, execution, planning, execution + planning)
    return result


# ---------------------------------------------------------------------------
# Figure 8 — perfect-(n) with and without re-optimization
# ---------------------------------------------------------------------------


def figure8(
    context: WorkloadContext, ns: Optional[Sequence[int]] = None, threshold: float = 32.0
) -> ExperimentResult:
    """Execution time of perfect-(n) with and without re-optimization (Figure 8)."""
    ns = list(ns) if ns is not None else list(range(0, MAX_PERFECT + 1))
    plain: List = []
    reopt: List = []
    for n in ns:
        plain.append(postgres_regime() if n == 0 else perfect_regime(context, n))
        reopt.append(reoptimized_regime(context, threshold=threshold, perfect_tables=n))
    matrix = run_matrix(context, plain + reopt)
    result = ExperimentResult(
        experiment_id="fig8",
        title="Whole workload execution time: perfect-(n) vs perfect-(n) + re-optimization",
        headers=["perfect_n", "perfect_exec_s", "reopt_exec_s"],
    )
    for n, plain_regime, reopt_regime_ in zip(ns, plain, reopt):
        plain_exec, _ = total_seconds(matrix[plain_regime.name])
        reopt_exec, _ = total_seconds(matrix[reopt_regime_.name])
        result.add_row(n, plain_exec, reopt_exec)
    return result


# ---------------------------------------------------------------------------
# Figure 9 — per-query comparison
# ---------------------------------------------------------------------------


def figure9(context: WorkloadContext, threshold: float = 32.0) -> ExperimentResult:
    """Per-query execution time: baseline vs re-optimized vs perfect (Figure 9)."""
    regimes = [
        postgres_regime(),
        reoptimized_regime(context, threshold=threshold),
        perfect_regime(context, MAX_PERFECT),
    ]
    matrix = run_matrix(context, regimes)
    baseline = {o.query_name: o for o in matrix["postgres"]}
    reopt = {o.query_name: o for o in matrix[f"reopt-{int(threshold)}"]}
    perfect = {o.query_name: o for o in matrix[f"perfect-{MAX_PERFECT}"]}
    ordered = sorted(baseline.values(), key=lambda o: o.execution_seconds)
    result = ExperimentResult(
        experiment_id="fig9",
        title="Per-query execution time (ordered by baseline execution time)",
        headers=["query", "postgres_s", "reopt_s", "perfect_s"],
    )
    for outcome in ordered:
        name = outcome.query_name
        result.add_row(
            name,
            outcome.execution_seconds,
            reopt[name].execution_seconds,
            perfect[name].execution_seconds,
        )
    totals = (
        sum(o.execution_seconds for o in baseline.values()),
        sum(o.execution_seconds for o in reopt.values()),
        sum(o.execution_seconds for o in perfect.values()),
    )
    result.add_note(
        f"totals: postgres={totals[0]:.1f}s reopt={totals[1]:.1f}s perfect={totals[2]:.1f}s"
    )
    result.metadata["totals"] = {
        "postgres": totals[0],
        "reopt": totals[1],
        "perfect": totals[2],
    }
    return result


# ---------------------------------------------------------------------------
# Tables IV / V — the Nasdaq skew example
# ---------------------------------------------------------------------------


def table45(config: Optional[StocksConfig] = None) -> ExperimentResult:
    """The companies/trades skew example (paper Tables IV/V and Section IV-C)."""
    config = config or StocksConfig()
    database = build_stocks_database(config)
    oracle = TrueCardinalityOracle(database)
    result = ExperimentResult(
        experiment_id="table45",
        title="Skew across a join: estimated vs actual rows for popular symbols",
        headers=["symbol", "estimated_rows", "actual_rows", "q_error"],
    )
    from repro.core.triggers import q_error as q_error_fn

    for symbol in config.popular_symbols:
        query = database.parse(example_query(symbol), name=f"stocks-{symbol}")
        planned = database.plan(query)
        join_estimate = None
        for node in planned.plan.join_nodes():
            join_estimate = node.estimated_rows
        actual = oracle.true_cardinality(query, set(query.aliases))
        result.add_row(symbol, join_estimate or 0.0, actual, q_error_fn(join_estimate or 1, actual))
    return result


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------


def ablation_trigger_site(
    context: WorkloadContext, top: int = 10, threshold: float = 32.0
) -> ExperimentResult:
    """Materializing the lowest vs the highest violating join."""
    names = _longest_query_names(context, top)
    lowest = ReoptimizedRegime(
        policy=ReoptimizationPolicy(threshold=threshold, trigger_site="lowest"),
        name="reopt-lowest",
    )
    highest = ReoptimizedRegime(
        policy=ReoptimizationPolicy(threshold=threshold, trigger_site="highest"),
        name="reopt-highest",
    )
    matrix = run_matrix(context, [lowest, highest], names)
    result = ExperimentResult(
        experiment_id="ablation-trigger-site",
        title=f"Trigger site ablation over the top-{top} longest queries",
        headers=["variant", "execute_s", "plan_s"],
    )
    for regime in (lowest, highest):
        execution, planning = total_seconds(matrix[regime.name])
        result.add_row(regime.name, execution, planning)
    return result


def ablation_temp_table_stats(
    context: WorkloadContext, top: int = 10, threshold: float = 32.0
) -> ExperimentResult:
    """Re-planning with vs without ANALYZE on the materialized temp tables."""
    names = _longest_query_names(context, top)
    with_stats = ReoptimizedRegime(
        policy=ReoptimizationPolicy(threshold=threshold, analyze_temp_tables=True),
        name="reopt-analyze",
    )
    without_stats = ReoptimizedRegime(
        policy=ReoptimizationPolicy(threshold=threshold, analyze_temp_tables=False),
        name="reopt-no-analyze",
    )
    matrix = run_matrix(context, [with_stats, without_stats], names)
    result = ExperimentResult(
        experiment_id="ablation-temp-stats",
        title=f"Temp-table ANALYZE ablation over the top-{top} longest queries",
        headers=["variant", "execute_s", "plan_s"],
    )
    for regime in (with_stats, without_stats):
        execution, planning = total_seconds(matrix[regime.name])
        result.add_row(regime.name, execution, planning)
    return result


def ablation_midquery(
    context: WorkloadContext, top: int = 10, threshold: float = 32.0
) -> ExperimentResult:
    """Materializing simulation vs pipelined mid-query re-optimization."""
    names = _longest_query_names(context, top)
    simulated = reoptimized_regime(context, threshold=threshold)
    pipelined = MidQueryRegime(ReoptimizationPolicy(threshold=threshold))
    matrix = run_matrix(context, [simulated, pipelined], names)
    result = ExperimentResult(
        experiment_id="ablation-midquery",
        title=f"Materializing vs pipelined re-optimization over the top-{top} longest queries",
        headers=["variant", "execute_s", "plan_s"],
    )
    for regime in (simulated, pipelined):
        execution, planning = total_seconds(matrix[regime.name])
        result.add_row(regime.name, execution, planning)
    return result


# ---------------------------------------------------------------------------
# Estimator-strategy matrix (estimator x workload, two passes)
# ---------------------------------------------------------------------------


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def estimator_matrix(
    context: WorkloadContext,
    queries: int = 12,
    threshold: float = 8.0,
) -> ExperimentResult:
    """Estimator-strategy x workload matrix: Q-error and re-plan counts.

    Runs a slice of the multi-join workload queries twice under each
    cardinality-estimation strategy (``repro.optimizer.estimators``).  Each
    query takes two passes per run:

    1. a re-optimizing pass (threshold ``threshold``, no plan cache) whose
       materialize-and-re-plan step count is the re-plan metric, and
    2. a plain pass that collects the join Q-errors of the executed plan and
       harvests true cardinalities into the database's feedback store.

    Under the ``feedback`` strategy run 2 plans with the cardinalities
    harvested in run 1, so both its re-plan count and its join Q-error tail
    drop; the statistics-only strategies are deterministic across runs.
    """
    db = context.database
    names = [q.name for q in context.job_queries if q.num_tables >= 4][:queries]
    from repro.optimizer.estimators import strategy_names

    result = ExperimentResult(
        experiment_id="estimators",
        title=(
            f"Estimator strategies over {len(names)} multi-join queries, "
            f"two runs (re-plan threshold {threshold:g})"
        ),
        headers=["estimator", "run", "replans", "qerr_p50", "qerr_p90", "qerr_max"],
    )
    result.metadata["query_names"] = names

    saved_estimator = db.settings.estimator
    try:
        for estimator in strategy_names():
            db.set_estimator(estimator)
            db.feedback.clear()
            reopt_pipeline = QueryPipeline(
                db,
                [ReoptimizationInterceptor(
                    ReoptimizationPolicy(threshold=threshold), adaptive=False
                )],
            )
            plain_pipeline = QueryPipeline(db, [FeedbackHarvestInterceptor()])
            for run in (1, 2):
                replans = 0
                errors: List[float] = []
                for name in names:
                    report = reopt_pipeline.run(bound=context.query(name)).report
                    replans += len(report.steps)
                    ctx = plain_pipeline.run(bound=context.query(name))
                    for node in ctx.planned.plan.join_nodes():
                        if node.actual_rows is not None:
                            errors.append(q_error(node.estimated_rows, node.actual_rows))
                result.add_row(
                    estimator,
                    run,
                    replans,
                    _percentile(errors, 50.0),
                    _percentile(errors, 90.0),
                    max(errors) if errors else 0.0,
                )
    finally:
        db.set_estimator(saved_estimator)
        db.feedback.clear()
    return result
