"""Benchmark harness: regimes, workload context, experiments, reporting."""

from repro.bench.harness import (
    WorkloadContext,
    build_context,
    env_query_limit,
    env_scale,
    run_matrix,
    run_query,
    run_workload,
    throughput,
    ThroughputSummary,
    total_seconds,
)
from repro.bench.regimes import (
    MidQueryRegime,
    PerfectRegime,
    PostgresRegime,
    QueryOutcome,
    Regime,
    ReoptimizedRegime,
)
from repro.bench.reporting import ExperimentResult, format_table

__all__ = [
    "ExperimentResult",
    "MidQueryRegime",
    "PerfectRegime",
    "PostgresRegime",
    "QueryOutcome",
    "Regime",
    "ReoptimizedRegime",
    "ThroughputSummary",
    "WorkloadContext",
    "build_context",
    "env_query_limit",
    "env_scale",
    "format_table",
    "run_matrix",
    "run_query",
    "run_workload",
    "throughput",
    "total_seconds",
]
