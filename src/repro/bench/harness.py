"""Workload harness: build the benchmark context and run regime matrices.

The context bundles the loaded synthetic IMDB database, the 113-query
workload, a shared true-cardinality oracle and a result cache.  The cache is
keyed by ``(regime name, query name)`` so that the many experiments sharing a
regime (PostgreSQL estimates appear in Figures 1, 2, 7, 9 and Tables II/VI)
pay for each query exactly once per process.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 0.4) and the query set can be restricted with
``REPRO_BENCH_QUERY_LIMIT`` for quick runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.regimes import QueryOutcome, Regime
from repro.core.oracle import TrueCardinalityOracle
from repro.engine.database import Database
from repro.engine.settings import EngineSettings
from repro.sql.binder import BoundQuery
from repro.workloads.imdb import ImdbConfig, ImdbDataset, build_imdb_database
from repro.workloads.job import JobQuery, JobWorkloadConfig, bind_workload, generate_job_workload

DEFAULT_BENCH_SCALE = 0.3
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"
QUERY_LIMIT_ENV_VAR = "REPRO_BENCH_QUERY_LIMIT"


@dataclass
class WorkloadContext:
    """Everything an experiment needs to run."""

    database: Database
    dataset: ImdbDataset
    job_queries: List[JobQuery]
    bound_queries: Dict[str, BoundQuery]
    oracle: TrueCardinalityOracle
    outcome_cache: Dict[Tuple[str, str], QueryOutcome] = field(default_factory=dict)

    def query(self, name: str) -> BoundQuery:
        """Bound query by workload name (e.g. ``"q10c"``)."""
        return self.bound_queries[name]

    def query_names(self) -> List[str]:
        """All workload query names, in workload order."""
        return [q.name for q in self.job_queries]


def env_scale(default: float = DEFAULT_BENCH_SCALE) -> float:
    """Dataset scale factor from the environment (``REPRO_BENCH_SCALE``)."""
    try:
        return float(os.environ.get(SCALE_ENV_VAR, default))
    except ValueError:
        return default


def env_query_limit() -> Optional[int]:
    """Optional cap on workload size (``REPRO_BENCH_QUERY_LIMIT``)."""
    value = os.environ.get(QUERY_LIMIT_ENV_VAR)
    if not value:
        return None
    try:
        return max(1, int(value))
    except ValueError:
        return None


def build_context(
    scale: Optional[float] = None,
    seed: int = 42,
    workload_seed: int = 7,
    settings: Optional[EngineSettings] = None,
    query_limit: Optional[int] = None,
) -> WorkloadContext:
    """Build a fully loaded workload context."""
    scale = env_scale() if scale is None else scale
    database, dataset = build_imdb_database(
        ImdbConfig(scale=scale, seed=seed), settings=settings
    )
    job_queries = generate_job_workload(
        dataset.vocabulary, JobWorkloadConfig(seed=workload_seed)
    )
    limit = env_query_limit() if query_limit is None else query_limit
    if limit is not None:
        job_queries = job_queries[:limit]
    bound = bind_workload(database, job_queries)
    bound_queries = {query.name: query for query in bound}
    return WorkloadContext(
        database=database,
        dataset=dataset,
        job_queries=job_queries,
        bound_queries=bound_queries,
        oracle=TrueCardinalityOracle(database),
    )


def run_query(
    context: WorkloadContext, regime: Regime, query_name: str
) -> QueryOutcome:
    """Run one query under one regime, using the context's outcome cache."""
    key = (regime.name, query_name)
    cached = context.outcome_cache.get(key)
    if cached is not None:
        return cached
    outcome = regime.run(context.database, context.query(query_name))
    context.outcome_cache[key] = outcome
    return outcome


def run_workload(
    context: WorkloadContext,
    regime: Regime,
    query_names: Optional[Sequence[str]] = None,
    release_oracle_intermediates: bool = True,
) -> List[QueryOutcome]:
    """Run a set of queries (default: the whole workload) under one regime."""
    names = list(query_names) if query_names is not None else context.query_names()
    outcomes = []
    for name in names:
        outcomes.append(run_query(context, regime, name))
        if release_oracle_intermediates:
            context.oracle.release_intermediates(context.query(name))
    return outcomes


def run_matrix(
    context: WorkloadContext,
    regimes: Sequence[Regime],
    query_names: Optional[Sequence[str]] = None,
) -> Dict[str, List[QueryOutcome]]:
    """Run several regimes over the same queries, query-outer for cache locality.

    Running all regimes of one query back to back lets the oracle reuse its
    grouped intermediates across the perfect-(n) sweep before they are
    released, which is what makes the Figure 2 / Figure 8 sweeps tractable.
    """
    names = list(query_names) if query_names is not None else context.query_names()
    results: Dict[str, List[QueryOutcome]] = {regime.name: [] for regime in regimes}
    for name in names:
        for regime in regimes:
            results[regime.name].append(run_query(context, regime, name))
        context.oracle.release_intermediates(context.query(name))
    return results


def total_seconds(outcomes: Iterable[QueryOutcome]) -> Tuple[float, float]:
    """Sum ``(execution_seconds, planning_seconds)`` over outcomes."""
    execution = 0.0
    planning = 0.0
    for outcome in outcomes:
        execution += outcome.execution_seconds
        planning += outcome.planning_seconds
    return execution, planning


@dataclass
class ThroughputSummary:
    """Aggregate wall-clock operator throughput over a set of outcomes.

    This is the metric the vectorized executor improves.  Experiments attach
    it to their artifacts (e.g. ``fig1``'s metadata and note) next to the
    simulated times, which are engine-invariant by design.
    """

    rows_processed: int
    wall_seconds: float

    @property
    def rows_per_second(self) -> float:
        """Rows produced by all plan operators per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.rows_processed / self.wall_seconds


def throughput(outcomes: Iterable[QueryOutcome]) -> ThroughputSummary:
    """Aggregate ``rows_processed`` / ``wall_seconds`` over outcomes."""
    rows = 0
    wall = 0.0
    for outcome in outcomes:
        rows += outcome.rows_processed
        wall += outcome.wall_seconds
    return ThroughputSummary(rows_processed=rows, wall_seconds=wall)
