"""The pull-style operator protocol every execution engine implements.

The executor's scheduler (:class:`repro.executor.executor.Executor`) drives a
physical plan by *pulling* each node's result from an operator set.  An
operator set is anything satisfying :class:`OperatorSet`: one callable per
plan-node shape, consuming child results and producing a new result.  Three
implementations exist:

* :data:`ExecutionEngine.VECTORIZED` — the columnar batch operators in
  :mod:`repro.executor.operators` (a plain module; modules satisfy the
  protocol structurally);
* :data:`ExecutionEngine.REFERENCE` — the row-at-a-time oracle in
  :mod:`repro.executor.reference`;
* :data:`ExecutionEngine.PARALLEL` — the morsel-driven scheduler in
  :mod:`repro.executor.parallel`, a stateful
  :class:`~repro.executor.parallel.MorselOperators` instance carrying its
  worker pool and morsel size.

Because one scheduler drives all three through this protocol, work
accounting stays engine-invariant by construction and every engine is
differential-testable against the others.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.errors import ExecutionError

QualifiedColumn = Tuple[str, str]


class ExecutionEngine(enum.Enum):
    """Which operator implementation executes plans."""

    VECTORIZED = "vectorized"
    REFERENCE = "reference"
    PARALLEL = "parallel"

    @classmethod
    def from_name(cls, name: "str | ExecutionEngine") -> "ExecutionEngine":
        """Coerce a CLI/config string (or an engine) to an engine."""
        if isinstance(name, cls):
            return name
        try:
            return cls(str(name).lower())
        except ValueError:
            options = ", ".join(engine.value for engine in cls)
            raise ExecutionError(
                f"unknown execution engine {name!r} (expected one of: {options})"
            ) from None


class OperatorSet(Protocol):
    """One relational operator per plan-node shape (pull-style).

    Every result object is duck-type compatible between engines
    (:class:`~repro.executor.batch.ColumnBatch` or
    :class:`~repro.executor.reference.ResultSet`): ``len``, ``columns``,
    ``rows``, ``column_position``, ``column_values`` and ``resolver`` behave
    identically, which is what lets the scheduler stay engine-agnostic.

    Operators that run a pipeline breaker accept an ``observed`` dict and
    record runtime statistics into it (``build_rows``/``probe_rows`` for
    joins; ``morsels``/``workers`` for morsel-parallel scans and joins;
    ``segments_skipped``/``columns_decoded`` for late-materializing
    partitioned scans); the scheduler copies these into the node's
    :class:`NodeMetrics`.

    ``scan_table``'s ``columns`` is the planner's projection-pushdown set
    (``None`` = full width).  It must include every column the pushed-down
    ``filters`` (and ``index_filter``) reference — engines evaluate filters
    against the narrowed batch.  Engines may ignore it (the reference
    oracle scans full-width on purpose).
    """

    def scan_table(
        self,
        catalog,
        alias: str,
        table_name: str,
        filters: Sequence,
        index_column: Optional[str] = None,
        index_filter=None,
        observed: Optional[Dict[str, int]] = None,
        pruned_partitions: Optional[Sequence[int]] = None,
        columns: Optional[Sequence[str]] = None,
    ): ...

    def join_results(
        self, left, right, joins: Sequence, observed: Optional[Dict[str, int]] = None
    ): ...

    def cross_join_results(
        self, left, right, observed: Optional[Dict[str, int]] = None
    ): ...

    def filter_result(self, result, predicates: Sequence): ...

    def empty_result(self, columns: Sequence[QualifiedColumn]): ...

    def count_index_probe_matches(
        self,
        outer,
        outer_positions: Sequence[int],
        catalog,
        inner_table: str,
        inner_column: str,
    ) -> int: ...

    def aggregate_result(self, result, select_items: Sequence): ...

    def group_aggregate_result(
        self, result, group_keys: Sequence, select_items: Sequence
    ): ...

    def sort_result(
        self,
        result,
        keys: Sequence,
        tie_break: Sequence = (),
        tie_break_all: bool = False,
    ): ...

    def limit_result(self, result, limit: int, offset: int = 0): ...

    def distinct_result(self, result): ...


def operators_for(
    engine: "str | ExecutionEngine",
    workers: Optional[int] = None,
    morsel_size: Optional[int] = None,
    memory_budget: Optional[int] = None,
) -> OperatorSet:
    """Resolve an engine name to its operator set.

    ``workers`` and ``morsel_size`` configure the parallel engine and are
    ignored by the serial ones (their operators have no tuning state).
    ``memory_budget`` (max in-memory rows per pipeline breaker) wraps the
    base operators in :class:`~repro.executor.spilling.SpillingOperators`,
    which reroutes oversized hash-join builds and sorts through grace-hash /
    external-merge temp files.
    """
    engine = ExecutionEngine.from_name(engine)
    if engine is ExecutionEngine.VECTORIZED:
        import repro.executor.operators as vectorized_operators

        base: OperatorSet = vectorized_operators
    elif engine is ExecutionEngine.REFERENCE:
        import repro.executor.reference as reference_operators

        base = reference_operators
    else:
        from repro.executor.parallel import MorselOperators

        base = MorselOperators(workers=workers, morsel_size=morsel_size)
    if memory_budget is not None:
        from repro.executor.spilling import SpillingOperators

        return SpillingOperators(base, memory_budget)
    return base
