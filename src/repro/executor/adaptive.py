"""Operator-level adaptive execution (true mid-query re-optimization).

The legacy re-optimization path simulates the paper's scheme by rewriting SQL
against materialized temporary tables.  This module is the real-system design
the paper names (Kabra & DeWitt-style): the executor runs the plan
*stage-wise*, observing per-operator runtime statistics (actual rows,
batches, hash-join build/probe sizes, work) at every operator.  Re-plan
decisions are made at the hash-join pipeline breakers, bottom-up: that is
the only breaker below other joins, i.e. the only point where a *different*
plan for the remainder exists to switch to.  The other breakers —
HashAggregate, Sort — sit above the whole join tree, so by the time they
materialize there is no remainder left to re-plan; their runtime statistics
are still collected and reported (EXPLAIN ANALYZE).  When the Q-error
between a join's estimated and actual cardinality crosses the
:class:`~repro.core.triggers.ReoptimizationPolicy` threshold, the remainder
of the query is re-planned with the observed true cardinalities injected, and
the already-computed in-memory intermediate is handed to the new plan as a
:class:`~repro.storage.intermediate.IntermediateTable` — a ColumnBatch-backed
pseudo-table registered in the catalog without DDL — instead of being written
out and re-scanned.

Differences from the SQL-rewrite simulation, by design:

* **No exploratory executions.**  Stage-wise execution observes cardinalities
  while doing useful work, so every executed operator is charged exactly
  once per round; the simulation's uncharged full "EXPLAIN ANALYZE" runs
  disappear.
* **No materialization surcharge.**  The intermediate never leaves memory;
  the handover itself is free and only the re-planned remainder's scan of
  the pseudo-table is charged (the quantity
  :class:`~repro.core.midquery.MidQueryReoptimizer` models analytically).
* **Client-transparent.**  The final result is restored to the original
  query's output columns (names *and* order), so a re-planned ``SELECT *``
  is indistinguishable from a plain execution — something the SQL-rewrite
  simulation cannot do.
* **Trigger site.**  Executing breakers bottom-up inherently triggers at the
  *lowest* violating join (the paper's choice); the ``"highest"`` ablation
  remains simulation-only.

The loop is engine-agnostic: both the vectorized and the reference engine
execute stage-wise through :meth:`Executor.execute_node`'s resumable memo.
Under the morsel-driven parallel engine the stage boundaries double as the
gather barriers: every hash-join breaker the loop pauses at is exactly the
point where the parallel engine has already merged its per-worker partial
build tables and concatenated the probe morsels back into deterministic
order, so the observed cardinalities (and any handed-over intermediate) are
identical to a serial run.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.triggers import ReoptimizationPolicy, q_error
from repro.errors import ReoptimizationError
from repro.executor.batch import ColumnBatch
from repro.executor.executor import (
    ExecutionResult,
    NodeMetrics,
    WORK_UNITS_PER_SECOND,
)
from repro.executor.reference import ResultSet
from repro.optimizer.injection import CardinalityInjector
from repro.optimizer.optimizer import PlannedQuery
from repro.optimizer.plan import JoinNode, OneTimeFilterNode, PlanNode
from repro.optimizer.provenance import (
    Observations,
    harvest_observations,
    plan_output_columns,
    runtime_injection,
    translate_observations,
)
from repro.sql.binder import BoundQuery
from repro.sql.builder import collapse_aliases, referenced_columns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database

QualifiedColumn = Tuple[str, str]


@dataclass
class ReplanPoint:
    """One mid-query re-plan: where execution paused and what it learned."""

    index: int
    trigger_label: str
    trigger_aliases: Tuple[str, ...]
    estimated_rows: float
    actual_rows: int
    q_error: float
    pseudo_table: str
    pseudo_rows: int
    #: Work performed in the round that was cut short at the breaker.
    executed_work: float
    #: Planning work of re-optimizing the remainder.
    planning_work: float


@dataclass
class AdaptiveExecutionResult(ExecutionResult):
    """An :class:`ExecutionResult` augmented with the adaptive loop's history.

    ``node_metrics`` accumulates the metrics of every round (node ids are
    globally unique), so EXPLAIN ANALYZE of the final plan finds its nodes and
    ``rows_processed`` counts every operator the loop actually ran.
    """

    replans: List[ReplanPoint] = field(default_factory=list)
    replanning_work: float = 0.0
    rounds: int = 1
    pseudo_tables: Tuple[str, ...] = ()
    final_planned: Optional[PlannedQuery] = None
    final_query: Optional[BoundQuery] = None

    @property
    def replanned(self) -> bool:
        """True if at least one mid-query re-plan happened."""
        return bool(self.replans)


class AdaptiveExecutor:
    """Drives stage-wise execution with mid-query re-planning.

    Args:
        database: the engine substrate (executor, optimizer, catalog).
        policy: re-optimization trigger policy (threshold, iteration cap,
            short-query cutoff).  ``trigger_site`` is effectively
            ``"lowest"``: stage-wise execution observes breakers bottom-up.
        injector: optional cardinality injector the caller planned with;
            runtime observations are chained in front of it on every
            re-planning round.
    """

    def __init__(
        self,
        database: "Database",
        policy: Optional[ReoptimizationPolicy] = None,
        injector: Optional[CardinalityInjector] = None,
    ) -> None:
        self._db = database
        self.policy = policy or ReoptimizationPolicy()
        if self.policy.trigger_site != "lowest":
            # Stage-wise execution cannot look ahead: the first violating
            # breaker in bottom-up order is where it stands when it decides.
            warnings.warn(
                f"adaptive execution always triggers at the lowest violating "
                f"pipeline breaker; trigger_site="
                f"{self.policy.trigger_site!r} is a simulation-only ablation "
                "and is ignored here",
                stacklevel=2,
            )
        self._injector = injector

    def execute(self, planned: PlannedQuery) -> AdaptiveExecutionResult:
        """Execute ``planned`` adaptively and return the augmented result."""
        db = self._db
        policy = self.policy
        executor = db.executor
        original_columns = plan_output_columns(planned.plan, db.catalog)
        # Where each original output column currently lives; collapses remap
        # qualified (alias, column) names, projection outputs ("", name) are
        # stable by construction.
        locations: Dict[QualifiedColumn, QualifiedColumn] = {
            qcol: qcol for qcol in original_columns
        }
        observations: Observations = {}
        replans: List[ReplanPoint] = []
        pseudo_names: List[str] = []
        merged_metrics: Dict[int, NodeMetrics] = {}
        total_work = 0.0
        replanning_work = 0.0
        wall_seconds = 0.0
        current_query = planned.query
        current_planned = planned
        result: ResultSet
        try:
            for iteration in range(policy.max_iterations + 1):
                metrics: Dict[int, NodeMetrics] = {}
                memo: Dict[int, Tuple[ResultSet, float]] = {}
                trigger: Optional[JoinNode] = None
                started = time.perf_counter()
                if self._should_adapt(iteration, current_query, current_planned):
                    for join in current_planned.plan.join_nodes():
                        result, _ = executor.execute_node(join, metrics, memo=memo)
                        error = q_error(join.estimated_rows, len(result))
                        if error > policy.threshold:
                            trigger = join
                            break
                if trigger is None:
                    result, _ = executor.execute_node(
                        current_planned.plan, metrics, memo=memo
                    )
                wall_seconds += time.perf_counter() - started
                round_work = self._performed_work(current_planned.plan, memo)
                total_work += round_work
                merged_metrics.update(metrics)
                observations.update(
                    harvest_observations(current_planned.plan, executed=memo)
                )
                if trigger is None:
                    break
                current_query, current_planned, observations, point = self._replan(
                    current_query, trigger, result, iteration, round_work,
                    observations, locations, pseudo_names,
                )
                replans.append(point)
                replanning_work += point.planning_work
            else:  # pragma: no cover - the last iteration never triggers
                raise ReoptimizationError(
                    f"adaptive execution of {planned.query.name!r} did not terminate"
                )
        finally:
            for name in pseudo_names:
                if name in db.catalog:
                    db.drop_intermediate(name)

        final_result = self._restore_output(result, original_columns, locations)
        return AdaptiveExecutionResult(
            result=final_result,
            total_work=total_work,
            wall_seconds=wall_seconds,
            node_metrics=merged_metrics,
            engine=executor.engine,
            replans=replans,
            replanning_work=replanning_work,
            rounds=len(replans) + 1,
            pseudo_tables=tuple(pseudo_names),
            final_planned=current_planned,
            final_query=current_query,
        )

    # -- internals ----------------------------------------------------------

    def _should_adapt(
        self, iteration: int, query: BoundQuery, planned: PlannedQuery
    ) -> bool:
        """Whether this round should pause at breakers and consider re-planning."""
        if iteration >= self.policy.max_iterations:
            return False
        if query.num_tables() <= 1:
            return False
        if any(
            isinstance(node, OneTimeFilterNode) and not node.passes
            for node in planned.plan.walk()
        ):
            # An always-false constant filter prunes the join tree; running
            # its joins stage-wise would execute a subtree the plain
            # executor never touches.
            return False
        if iteration == 0 and self.policy.min_query_seconds > 0.0:
            # A real adaptive executor cannot know the actual runtime up
            # front; gate the short-query cutoff on the optimizer's estimate
            # (the simulation gates on the observed first execution instead).
            estimated_seconds = planned.plan.estimated_cost / WORK_UNITS_PER_SECOND
            if estimated_seconds < self.policy.min_query_seconds:
                return False
        return True

    @staticmethod
    def _performed_work(plan: PlanNode, memo: Dict[int, Tuple[ResultSet, float]]) -> float:
        """Work actually performed this round: own work of every executed node."""
        return sum(
            node.actual_work or 0.0
            for node in plan.walk()
            if node.node_id in memo
        )

    def _handover_columns(
        self, query: BoundQuery, trigger: JoinNode
    ) -> List[QualifiedColumn]:
        """Columns the pseudo-table must expose for the remainder to run."""
        if not query.select_items:
            # SELECT *: every column of every collapsed alias is part of the
            # client-visible output, so all of them ride along (this is what
            # lets the adaptive path re-plan star queries transparently).
            # FROM-clause declaration order, not sorted order: the LIMIT
            # tie-break sorts star output on the declared column sequence, so
            # the handover must preserve it across re-plans.
            return [
                (alias, column)
                for alias in query.aliases
                if alias in trigger.aliases
                for column in self._db.catalog.schema(
                    query.table_for(alias)
                ).column_names
            ]
        needed = referenced_columns(query, trigger.aliases)
        if not needed:
            # Nothing above references the sub-join (e.g. SELECT count(*)
            # over exactly these tables); keep one join column so the
            # rewritten query stays well-formed.
            alias = sorted(trigger.aliases)[0]
            table = query.table_for(alias)
            first_column = self._db.catalog.schema(table).column_names[0]
            needed = [(alias, first_column)]
        return needed

    def _replan(
        self,
        query: BoundQuery,
        trigger: JoinNode,
        intermediate: ResultSet,
        iteration: int,
        round_work: float,
        observations: Observations,
        locations: Dict[QualifiedColumn, QualifiedColumn],
        pseudo_names: List[str],
    ) -> Tuple[BoundQuery, PlannedQuery, Observations, ReplanPoint]:
        """Hand the intermediate over and plan the remainder of the query.

        Returns the rewritten query, its plan, the observations translated
        into the rewritten query's alias space (the loop carries them into
        later rounds), and the re-plan point record.
        """
        db = self._db
        needed = self._handover_columns(query, trigger)
        mapping: Dict[QualifiedColumn, str] = {
            (alias, column): f"{alias}_{column}" for alias, column in needed
        }
        name = db.next_temp_table_name(base="stage")
        db.register_intermediate_result(
            name,
            intermediate,
            [(qcol, mapping[qcol]) for qcol in needed],
            alias_tables=query.alias_tables,
        )
        pseudo_names.append(name)

        for qcol, current in locations.items():
            if current[0] in trigger.aliases:
                locations[qcol] = (name, mapping[current])

        rewritten = collapse_aliases(
            query,
            sorted(trigger.aliases),
            temp_table=name,
            temp_alias=name,
            column_mapping=mapping,
        )
        base_name = query.name or "query"
        rewritten.name = f"{base_name.split('#', 1)[0]}#adapt{iteration + 1}"

        translated = translate_observations(
            observations, frozenset(trigger.aliases), name
        )
        injector = runtime_injection(translated, self._injector)
        planned = db.plan(rewritten, injector=injector)
        point = ReplanPoint(
            index=iteration,
            trigger_label=trigger.label(),
            trigger_aliases=tuple(sorted(trigger.aliases)),
            estimated_rows=trigger.estimated_rows,
            actual_rows=trigger.actual_rows or 0,
            q_error=q_error(trigger.estimated_rows, trigger.actual_rows or 0),
            pseudo_table=name,
            pseudo_rows=len(intermediate),
            executed_work=round_work,
            planning_work=planned.stats.planning_work,
        )
        return rewritten, planned, translated, point

    @staticmethod
    def _restore_output(
        result: ResultSet,
        original_columns: List[QualifiedColumn],
        locations: Dict[QualifiedColumn, QualifiedColumn],
    ) -> ResultSet:
        """Project the final result back to the original output shape.

        Re-planning is invisible to the client: whatever plan produced the
        final rows, the columns come back under the original query's names in
        the original order.
        """
        if tuple(result.columns) == tuple(original_columns):
            return result
        positions = [
            result.column_position(*locations[qcol]) for qcol in original_columns
        ]
        if isinstance(result, ColumnBatch):
            return result.with_columns(original_columns, positions)
        rows = [tuple(row[p] for p in positions) for row in result.rows]
        return ResultSet(original_columns, rows)
