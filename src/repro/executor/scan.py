"""Late-materializing partitioned scans, shared by the fast engines.

The vectorized and morsel-parallel engines both scan partitioned tables
through :func:`scan_partitioned`, which runs a three-stage pipeline per
shard — filter first, decode last:

1. **Segment skipping** — each filter conjunct (in negation normal form) is
   tested against per-:data:`~repro.storage.compression.BLOCK_ROWS`-block
   min/max/null-count synopses sealed into the segments at compress time,
   reusing :func:`repro.optimizer.pruning.may_match`'s three-valued
   refutation.  Provably dead blocks never enter the candidate set, so no
   kernel and no decode ever touches them.  A conjunct participates only
   when *every* column it references has sealed block statistics.
2. **Compressed-domain kernels** — a conjunct referencing exactly one
   column evaluates on the encoded form: once per dictionary entry on a
   :class:`~repro.storage.compression.DictionarySegment` (a code-level
   match set mapped over the codes) and once per run on an
   :class:`~repro.storage.compression.RLESegment`.  The per-value verdict
   comes from :func:`repro.executor.expressions.compile_value_predicate`,
   i.e. the very same compiled predicate the decode path would apply per
   row, so the keep set is bit-identical by construction.
3. **Decode-path residual** — everything else (multi-column conjuncts,
   plain/open columns, shapes the value compiler rejects) decodes only the
   columns it references and runs through the fused filter kernel (with the
   surviving candidates threaded through its ``_cand`` parameter) or the
   per-node batch compiler as a fallback.

Surviving rows then materialize **only the projected columns**
(:class:`~repro.optimizer.plan.ScanNode.columns`); partitions concatenate
in partition order, reproducing the global row-id order every engine
produces.  The two counters reported through ``observed`` —
``segments_skipped`` (refuted blocks) and ``columns_decoded`` (distinct
columns materialized) — are derived from row counts and sealed statistics
only, hence engine-invariant, like all work accounting.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.executor.batch import ColumnBatch
from repro.executor.expressions import (
    ColumnResolver,
    compile_batch_predicate,
    compile_fused_filter,
    compile_value_predicate,
)
from repro.optimizer.pruning import may_match
from repro.optimizer.rewrite import push_not_down
from repro.sql.ast import Expr
from repro.storage.compression import (
    BLOCK_ROWS,
    DictionarySegment,
    RLESegment,
)
from repro.storage.partition import ColumnZone, Partition, ZoneMap

__all__ = ["projected_names", "scan_partitioned"]


def projected_names(schema, columns: Optional[Sequence[str]]) -> List[str]:
    """The scan's output column names, in schema order.

    ``columns`` is the plan's projection-pushdown set (``None`` = full
    width); unknown names are ignored so stale cached plans degrade to a
    narrower-but-valid scan rather than an error.
    """
    if columns is None:
        return list(schema.column_names)
    wanted = set(columns)
    return [name for name in schema.column_names if name in wanted]


class _CompiledFilters:
    """Per-scan compilation of the filter conjunction (shared by all shards)."""

    def __init__(self, alias: str, filters: Sequence[Expr], schema) -> None:
        self.filters = list(filters)
        self.normalized = [push_not_down(conjunct) for conjunct in self.filters]
        self.ref_names: List[Tuple[str, ...]] = []
        self.value_predicates: List[Optional[Callable[[object], bool]]] = []
        for conjunct in self.filters:
            names = tuple(
                dict.fromkeys(
                    ref.column
                    for ref in conjunct.referenced_columns()
                    if ref.alias == alias
                )
            )
            self.ref_names.append(names)
            predicate = None
            if len(names) == 1:
                predicate = compile_value_predicate(conjunct, alias, names[0])
            self.value_predicates.append(predicate)
        self.alias = alias
        self.schema = schema
        self.positions = {
            name: schema.column_index(name)
            for names in self.ref_names
            for name in names
        }


def _block_zone_maps(
    partition: Partition,
    compiled: _CompiledFilters,
) -> Tuple[List[Tuple[int, int]], int]:
    """Candidate row ranges after segment skipping, plus the skipped count.

    Only conjuncts whose referenced columns all carry sealed block
    statistics participate; a block survives unless some participating
    conjunct is provably never TRUE over it (the same 3VL refutation as
    partition pruning, one block at a time).
    """
    row_count = partition.row_count
    stats_for: Dict[str, Optional[list]] = {}
    for name, position in compiled.positions.items():
        segment = partition.segment_at(position)
        stats_for[name] = segment.block_stats() if segment is not None else None
    usable = [
        (normalized, names)
        for normalized, names in zip(compiled.normalized, compiled.ref_names)
        if names and all(stats_for[name] is not None for name in names)
    ]
    ranges: List[Tuple[int, int]] = []
    skipped = 0
    if not usable:
        return [(0, row_count)], 0
    for start in range(0, row_count, BLOCK_ROWS):
        end = min(start + BLOCK_ROWS, row_count)
        block = start // BLOCK_ROWS
        refuted = False
        for normalized, names in usable:
            zones: Dict[str, ColumnZone] = {}
            have_stats = True
            for name in names:
                entry = stats_for[name][block]
                if entry is None:
                    # Mixed-type block: no synopsis, keep conservatively.
                    have_stats = False
                    break
                zones[name] = ColumnZone(entry[0], entry[1], entry[2])
            if not have_stats:
                continue
            zone_map = ZoneMap(row_count=end - start, columns=zones)
            if not may_match(normalized, zone_map):
                refuted = True
                break
        if refuted:
            skipped += 1
        else:
            ranges.append((start, end))
    return ranges, skipped


def _dictionary_filter(
    segment: DictionarySegment,
    predicate: Callable[[object], bool],
    candidates: Optional[List[int]],
    row_count: int,
) -> Optional[List[int]]:
    """Apply a single-column conjunct in the code domain: |dict| evaluations."""
    dictionary = segment.dictionary
    match = {
        code for code, value in enumerate(dictionary) if predicate(value)
    }
    if len(match) == len(dictionary):
        return candidates  # every entry passes: no narrowing
    if not match:
        return []
    codes = segment.codes
    if candidates is None:
        return [i for i in range(row_count) if codes[i] in match]
    return [i for i in candidates if codes[i] in match]


def _rle_filter(
    segment: RLESegment,
    predicate: Callable[[object], bool],
    candidates: Optional[List[int]],
) -> List[int]:
    """Apply a single-column conjunct in the run domain: |runs| evaluations."""
    runs = segment.runs
    verdicts = [predicate(value) for value, _ in runs]
    out: List[int] = []
    if candidates is None:
        row = 0
        for (_, count), keep in zip(runs, verdicts):
            if keep:
                out.extend(range(row, row + count))
            row += count
        return out
    # Walk candidates (ascending) and the run boundaries in lockstep.
    pointer = 0
    run_end = runs[0][1] if runs else 0
    for i in candidates:
        while i >= run_end:
            pointer += 1
            run_end += runs[pointer][1]
        if verdicts[pointer]:
            out.append(i)
    return out


def _materialize(
    partition: Partition, position: int, indices: Optional[List[int]]
) -> List[object]:
    """Values of one column at the surviving rows (or the whole column)."""
    segment = partition.segment_at(position)
    if indices is None:
        return partition.column_at(position)
    if segment is not None:
        return segment.gather(indices)
    values = partition.column_at(position)
    return [values[i] for i in indices]


def _ranges_to_indices(ranges: List[Tuple[int, int]]) -> List[int]:
    out: List[int] = []
    for start, end in ranges:
        out.extend(range(start, end))
    return out


def _scan_one_partition(
    partition: Partition,
    compiled: _CompiledFilters,
    positions: Sequence[int],
    names: Sequence[str],
) -> Tuple[List[List[object]], int, Set[str]]:
    """Run the skip -> compressed-domain -> decode pipeline over one shard.

    Returns ``(projected survivor columns, blocks skipped, columns decoded)``.
    Survivors stay in ascending local row order, so concatenating shard
    results in partition order reproduces the classic gather-then-filter
    row order bit for bit.
    """
    row_count = partition.row_count
    decoded: Set[str] = set()
    if row_count == 0:
        return [[] for _ in positions], 0, decoded

    ranges, skipped = _block_zone_maps(partition, compiled)
    candidates: Optional[List[int]]
    candidates = None if not skipped else _ranges_to_indices(ranges)

    residual_positions: List[int] = []
    for index, predicate in enumerate(compiled.value_predicates):
        if candidates is not None and not candidates:
            break
        segment = None
        if predicate is not None:
            name = compiled.ref_names[index][0]
            segment = partition.segment_at(compiled.positions[name])
        if isinstance(segment, DictionarySegment):
            candidates = _dictionary_filter(
                segment, predicate, candidates, row_count
            )
        elif isinstance(segment, RLESegment):
            candidates = _rle_filter(segment, predicate, candidates)
        else:
            residual_positions.append(index)

    if residual_positions and not (candidates is not None and not candidates):
        residual = [compiled.filters[i] for i in residual_positions]
        needed: Set[str] = set()
        for i in residual_positions:
            needed.update(compiled.ref_names[i])
        residual_names = [
            name for name in compiled.schema.column_names if name in needed
        ]
        decoded.update(residual_names)
        qualified = [(compiled.alias, name) for name in residual_names]
        data = [
            partition.column_at(compiled.positions[name])
            for name in residual_names
        ]
        resolver = ColumnResolver(qualified)
        kernel = compile_fused_filter(residual, resolver)
        if kernel is not None:
            candidates = kernel(data, 0, row_count, candidates)
        else:
            batch = ColumnBatch(qualified, data, length=row_count)
            for conjunct in residual:
                check = compile_batch_predicate(conjunct, resolver)
                candidates = check(batch, candidates)
                if not candidates:
                    break

    decoded.update(names)
    out = [_materialize(partition, position, candidates) for position in positions]
    return out, skipped, decoded


def scan_partitioned(
    table,
    alias: str,
    filters: Sequence[Expr],
    pruned_partitions: Sequence[int],
    columns: Optional[Sequence[str]],
    observed: Optional[Dict[str, int]] = None,
    pool=None,
    workers: int = 1,
) -> Tuple[ColumnBatch, int]:
    """Late-materializing scan of a partitioned table's unpruned shards.

    ``pool``/``workers`` let the morsel-parallel engine dispatch one shard
    pipeline per pool task; shard results always concatenate in partition
    order, so the output is bit-identical for any worker count.  Returns
    ``(batch, rows_fetched)`` with ``rows_fetched`` the unpruned shards' row
    sum — segment skipping changes decode work, never work accounting.
    """
    schema = table.schema
    names = projected_names(schema, columns)
    positions = [schema.column_index(name) for name in names]
    qualified = [(alias, name) for name in names]
    pruned = set(pruned_partitions)
    kept = [
        partition
        for index, partition in enumerate(table.partitions())
        if index not in pruned
    ]
    rows_fetched = sum(partition.row_count for partition in kept)

    filters = list(filters)
    if not filters:
        if not pruned:
            if columns is None:
                data = table.column_data()
            else:
                data = [table.gathered_column(position) for position in positions]
        else:
            data = [[] for _ in positions]
            for partition in kept:
                for accumulator, position in zip(data, positions):
                    accumulator.extend(partition.column_at(position))
        if observed is not None and columns is not None:
            observed["columns_decoded"] = len(names)
        return ColumnBatch(qualified, data, length=rows_fetched), rows_fetched

    compiled = _CompiledFilters(alias, filters, schema)
    task = lambda partition: _scan_one_partition(  # noqa: E731
        partition, compiled, positions, names
    )
    if pool is not None and workers > 1 and len(kept) > 1:
        results = list(pool.map(task, kept))
    else:
        results = [task(partition) for partition in kept]

    out: List[List[object]] = [[] for _ in positions]
    survivors = 0
    skipped_total = 0
    decoded_all: Set[str] = set()
    for columns_part, skipped, decoded in results:
        for accumulator, part in zip(out, columns_part):
            accumulator.extend(part)
        skipped_total += skipped
        decoded_all.update(decoded)
    survivors = len(out[0]) if out else 0
    if observed is not None:
        observed["segments_skipped"] = skipped_total
        observed["columns_decoded"] = len(decoded_all)
    return ColumnBatch(qualified, out, length=survivors), rows_fetched
