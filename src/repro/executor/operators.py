"""Vectorized (columnar, batch-at-a-time) relational operators.

This is the default execution engine.  Every operator consumes and produces
:class:`~repro.executor.batch.ColumnBatch` objects:

* ``scan_table`` wraps the storage layer's raw column lists into a batch
  without copying and narrows it with a compiled batch predicate;
* ``join_results`` hash-joins two batches by materializing only the key
  columns, then represents the output as two shared selection vectors — no
  payload column is touched until something downstream reads it;
* ``aggregate_result`` folds aggregates directly over column lists.

The engine mirrors :mod:`repro.executor.reference` exactly: same output
multiset (in fact the same row order: probe-side-major, build insertion
order within a key) and same work-accounting inputs.  Like the reference
engine it is a *functional simulator* — the optimizer's physical algorithm
choice (``NESTED_LOOP`` vs ``HASH_JOIN`` …) only affects the deterministic
work charged by :mod:`repro.executor.executor`, never the rows produced.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import ExecutionError
from repro.executor.batch import ColumnBatch
from repro.executor.expressions import (
    compile_batch_conjunction,
    compile_batch_scalar,
    index_probe_keys,
)
from repro.executor.reference import (
    ResultSet,
    output_columns,
    resolve_join_positions,
)
from repro.executor.scan import projected_names, scan_partitioned
from repro.sql.ast import AggregateFunc, ColumnRef, SelectItem
from repro.sql.binder import BoundJoin, BoundSortKey

QualifiedColumn = Tuple[str, str]

__all__ = [
    "ColumnBatch",
    "ResultSet",
    "aggregate_result",
    "count_index_probe_matches",
    "cross_join_results",
    "distinct_result",
    "empty_result",
    "filter_result",
    "group_aggregate_result",
    "join_results",
    "limit_result",
    "scan_table",
    "sort_result",
]


def scan_table(
    catalog: Catalog,
    alias: str,
    table_name: str,
    filters: Sequence,
    index_column: Optional[str] = None,
    index_filter=None,
    observed: Optional[Dict[str, int]] = None,
    pruned_partitions: Optional[Sequence[int]] = None,
    columns: Optional[Sequence[str]] = None,
) -> Tuple[ColumnBatch, int]:
    """Scan a base table column-wise, optionally through an index.

    The sequential path hands the table's backing column lists straight into
    the batch (zero-copy); filtering only builds a selection vector.  For a
    partitioned table, ``pruned_partitions`` (derived by the executor from
    the zone maps) drops whole shards before the filter runs, and the scan
    goes through the late-materialization pipeline in
    :mod:`repro.executor.scan` — segment skipping, compressed-domain filter
    kernels, then decode of only the surviving rows.  ``columns`` is the
    planner's projection-pushdown set (``None`` = full width); it must
    include every column the filters reference.  ``observed`` is part of
    the operator protocol (the parallel engine records morsel statistics
    through it, partitioned scans their skip/decode counters).

    Returns:
        ``(batch, rows_fetched)`` where ``rows_fetched`` is the number of
        rows read from storage before residual filtering (used for work
        accounting: an index scan reads fewer rows than a sequential scan,
        a pruned partitioned scan fewer than the full table).
    """
    table = catalog.table(table_name)
    if pruned_partitions is not None:
        return scan_partitioned(
            table, alias, list(filters), pruned_partitions, columns, observed
        )
    names = projected_names(table.schema, columns)
    qualified: List[QualifiedColumn] = [(alias, name) for name in names]
    if columns is None:
        data = table.column_data()
    else:
        table_data = table.column_data()
        data = [table_data[table.schema.column_index(name)] for name in names]
    batch = ColumnBatch(qualified, data, length=table.row_count)

    if index_column is not None and index_filter is not None:
        index = catalog.indexes(table_name).get(index_column)
        if index is None:
            raise ExecutionError(
                f"plan requires an index on {table_name}.{index_column} that does not exist"
            )
        keys = index_probe_keys(index_filter)
        row_ids: List[int] = []
        for key in keys:
            row_ids.extend(index.lookup(key))
        row_ids = sorted(set(row_ids))
        batch = batch.restrict(row_ids)
        rows_fetched = len(row_ids)
    else:
        rows_fetched = table.row_count

    predicate = compile_batch_conjunction(list(filters), batch.resolver)
    if predicate is not None:
        batch = batch.restrict(predicate(batch))
    return batch, rows_fetched


def _key_rows(
    batch: ColumnBatch, positions: Sequence[int]
) -> List[object]:
    """Per-row join keys: the bare value for one column, tuples otherwise."""
    if len(positions) == 1:
        return batch.values(positions[0])
    return list(zip(*(batch.values(p) for p in positions)))


def _key_is_null(key: object, composite: bool) -> bool:
    if composite:
        return any(v is None for v in key)
    return key is None


def join_results(
    left: ColumnBatch,
    right: ColumnBatch,
    joins: Sequence[BoundJoin],
    observed: Optional[Dict[str, int]] = None,
) -> ColumnBatch:
    """Equi-join two batches on all given join predicates.

    The physical evaluation always builds a hash table on the smaller input;
    the optimizer's algorithm choice only affects work accounting.  Only the
    key columns are materialized — the output batch reuses both inputs'
    backing columns through composed selection vectors.

    When ``observed`` is given, the operator records the runtime statistics
    of its pipeline breaker — the rows materialized into the hash build side
    and the rows streamed through the probe side — which the executor attaches
    to the node's metrics.  Both engines report identical values (the build
    side is always the smaller input), keeping the statistic differential-
    test comparable.
    """
    if not joins:
        raise ExecutionError("join_results requires at least one join predicate")
    left = ColumnBatch.from_result(left)
    right = ColumnBatch.from_result(right)
    left_positions, right_positions = resolve_join_positions(left, right, joins)

    build_on_left = len(left) <= len(right)
    if observed is not None:
        observed["build_rows"] = min(len(left), len(right))
        observed["probe_rows"] = max(len(left), len(right))
    if build_on_left:
        build, probe = left, right
        build_positions, probe_positions = left_positions, right_positions
    else:
        build, probe = right, left
        build_positions, probe_positions = right_positions, left_positions

    composite = len(build_positions) > 1
    build_keys = _key_rows(build, build_positions)
    buckets: Dict[object, List[int]] = {}
    for i, key in enumerate(build_keys):
        if _key_is_null(key, composite):
            continue
        buckets.setdefault(key, []).append(i)

    build_idx: List[int] = []
    probe_idx: List[int] = []
    probe_keys = _key_rows(probe, probe_positions)
    for i, key in enumerate(probe_keys):
        if _key_is_null(key, composite):
            continue
        matches = buckets.get(key)
        if not matches:
            continue
        build_idx.extend(matches)
        probe_idx.extend([i] * len(matches))

    if build_on_left:
        left_sel, right_sel = build_idx, probe_idx
    else:
        left_sel, right_sel = probe_idx, build_idx
    return ColumnBatch.concat(left.restrict(left_sel), right.restrict(right_sel))


def cross_join_results(
    left: ColumnBatch,
    right: ColumnBatch,
    observed: Optional[Dict[str, int]] = None,
) -> ColumnBatch:
    """Cartesian product of two batches via repeated/tiled index vectors.

    Left-major row order, matching the reference engine exactly; only the
    two selection vectors are materialized, never the payload columns.
    """
    left = ColumnBatch.from_result(left)
    right = ColumnBatch.from_result(right)
    if observed is not None:
        observed["build_rows"] = min(len(left), len(right))
        observed["probe_rows"] = max(len(left), len(right))
    right_count = len(right)
    left_idx = [i for i in range(len(left)) for _ in range(right_count)]
    right_idx = list(range(right_count)) * len(left)
    return ColumnBatch.concat(left.restrict(left_idx), right.restrict(right_idx))


def filter_result(result: ColumnBatch, predicates: Sequence) -> ColumnBatch:
    """Apply filter expressions by narrowing the selection vectors."""
    result = ColumnBatch.from_result(result)
    predicate = compile_batch_conjunction(list(predicates), result.resolver)
    if predicate is None:
        return result
    return result.restrict(predicate(result))


def empty_result(columns: Sequence[QualifiedColumn]) -> ColumnBatch:
    """An empty batch with the given column layout (pruned subtrees)."""
    return ColumnBatch(columns, [[] for _ in columns], length=0)


def count_index_probe_matches(
    outer: ColumnBatch,
    outer_positions: Sequence[int],
    catalog: Catalog,
    inner_table: str,
    inner_column: str,
) -> int:
    """Number of index matches an index-nested-loop join would fetch.

    Counts, over all outer rows, how many inner rows share the join key
    *before* the inner table's residual filters are applied — the quantity an
    index nested loop actually pays for.
    """
    index = catalog.indexes(inner_table).get(inner_column)
    if index is None:
        return 0
    outer = ColumnBatch.from_result(outer)
    composite = len(outer_positions) > 1
    key_counts: Counter = Counter(
        key
        for key in _key_rows(outer, outer_positions)
        if not _key_is_null(key, composite)
    )
    matches = 0
    for key, count in key_counts.items():
        probe_key = key[0] if isinstance(key, tuple) else key
        matches += count * len(index.lookup(probe_key))
    return matches


def _fold_column(item: SelectItem, values: List[object]) -> object:
    """Fold one ungrouped aggregate over a compacted column.

    Deliberately implemented independently of the reference oracle's
    ``fold_aggregate`` (generator folds here, list folds there) so the
    differential suite cross-checks the SQL NULL-semantics rules — NULLs are
    skipped, SUM/AVG over an empty or all-NULL input return NULL, COUNT
    returns 0 — instead of both engines sharing one implementation.
    ``SUM``/``AVG`` accumulate in input order, which keeps float results
    bit-identical with the oracle.
    """
    if item.aggregate is AggregateFunc.COUNT:
        return sum(1 for v in values if v is not None)
    if item.aggregate is AggregateFunc.MIN:
        return min((v for v in values if v is not None), default=None)
    if item.aggregate is AggregateFunc.MAX:
        return max((v for v in values if v is not None), default=None)
    if item.aggregate in (AggregateFunc.SUM, AggregateFunc.AVG):
        total = None
        count = 0
        for value in values:
            if value is None:
                continue
            total = value if total is None else total + value
            count += 1
        if item.aggregate is AggregateFunc.SUM or total is None:
            return total
        return total / count
    # Bare column inside an aggregate context (legacy direct-operator use).
    return next((v for v in values if v is not None), None)


def _item_values(result: ColumnBatch, item: SelectItem) -> List[object]:
    """Compacted per-row values of one select item's expression."""
    ref = item.column
    if ref is not None:
        return result.column_values(ref.alias, ref.column)
    return compile_batch_scalar(item.expr, result.resolver)(result, None)


def aggregate_result(
    result: ColumnBatch, select_items: Sequence[SelectItem]
) -> ColumnBatch:
    """Apply the final (ungrouped) aggregation / projection column-wise.

    Computed select items evaluate through the batch expression compiler
    (one pass per tree node over the compacted columns); bare columns keep
    the zero-copy projection path.
    """
    if not select_items:
        return result
    result = ColumnBatch.from_result(result)
    has_aggregate = any(item.aggregate is not None for item in select_items)
    columns = output_columns(select_items)
    if has_aggregate:
        row: List[object] = []
        for item in select_items:
            if item.expr is None:  # COUNT(*)
                row.append(len(result))
                continue
            row.append(_fold_column(item, _item_values(result, item)))
        return ColumnBatch.from_rows(columns, [tuple(row)])
    if all(item.column is not None for item in select_items):
        positions = [
            result.column_position(item.column.alias, item.column.column)
            for item in select_items
        ]
        return result.with_columns(columns, positions)
    # Computed projection columns: materialize each item's value list once.
    data = [_item_values(result, item) for item in select_items]
    return ColumnBatch(columns, data, length=len(result))


def group_aggregate_result(
    result: ColumnBatch,
    group_keys: Sequence[ColumnRef],
    select_items: Sequence[SelectItem],
) -> ColumnBatch:
    """Grouped aggregation over compacted key columns.

    Group ids are assigned in first-appearance order (NULL keys form their
    own group), then every output column is folded column-wise over the
    per-group value lists — no row tuples are ever built.  Output order and
    values mirror the reference engine exactly.
    """
    result = ColumnBatch.from_result(result)
    key_positions = [
        result.column_position(ref.alias, ref.column) for ref in group_keys
    ]
    keys = _key_rows(result, key_positions)

    group_index: Dict[object, int] = {}
    setdefault = group_index.setdefault
    group_ids = [setdefault(key, len(group_index)) for key in keys]
    num_groups = len(group_index)

    first_row: List[int] = [-1] * num_groups
    for i, gid in enumerate(group_ids):
        if first_row[gid] < 0:
            first_row[gid] = i

    out_data: List[List[object]] = []
    for item in select_items:
        if item.expr is None:  # COUNT(*): rows per group
            counts = [0] * num_groups
            for gid in group_ids:
                counts[gid] += 1
            out_data.append(counts)
            continue
        values = _item_values(result, item)
        if item.aggregate is None:
            # Depends only on group keys (binder rule): the group's first
            # row represents it.
            out_data.append([values[i] for i in first_row])
            continue
        out_data.append(
            _fold_grouped(item.aggregate, group_ids, values, num_groups)
        )
    return ColumnBatch(output_columns(select_items), out_data, length=num_groups)


def _fold_grouped(
    aggregate: AggregateFunc,
    group_ids: List[int],
    values: List[object],
    num_groups: int,
) -> List[object]:
    """Fold one aggregate column-wise into per-group accumulator slots.

    Accumulation happens in input-row order per group — the same order the
    reference oracle folds its per-group row lists — so SUM/AVG float
    results are bit-identical across engines.
    """
    if aggregate is AggregateFunc.COUNT:
        counts = [0] * num_groups
        for gid, value in zip(group_ids, values):
            if value is not None:
                counts[gid] += 1
        return counts
    accumulator: List[object] = [None] * num_groups
    if aggregate in (AggregateFunc.SUM, AggregateFunc.AVG):
        tallies = [0] * num_groups
        for gid, value in zip(group_ids, values):
            if value is not None:
                current = accumulator[gid]
                accumulator[gid] = value if current is None else current + value
                tallies[gid] += 1
        if aggregate is AggregateFunc.SUM:
            return accumulator
        return [
            None if total is None else total / count
            for total, count in zip(accumulator, tallies)
        ]
    if aggregate is AggregateFunc.MIN:
        for gid, value in zip(group_ids, values):
            if value is not None:
                current = accumulator[gid]
                if current is None or value < current:
                    accumulator[gid] = value
        return accumulator
    for gid, value in zip(group_ids, values):  # MAX
        if value is not None:
            current = accumulator[gid]
            if current is None or value > current:
                accumulator[gid] = value
    return accumulator


def sort_result(
    result: ColumnBatch,
    keys: Sequence[BoundSortKey],
    tie_break: Sequence = (),
    tie_break_all: bool = False,
) -> ColumnBatch:
    """Sort the batch on the given keys (multi-pass stable sort, zero-copy).

    One stable pass per key, last key first, each pass keyed on
    ``(is NULL, value)`` with ``reverse`` for descending — which realizes
    NULLS LAST for ascending keys and NULLS FIRST for descending, ties in
    input order.  The reference oracle reaches the same ordering through an
    independent comparator-based sort; the differential suite pins the two
    against each other.

    ``tie_break`` (expressions over the sort input) or ``tie_break_all``
    (every input column, positionally) appends a deterministic total order
    *below* the declared keys: tie passes run first, ascending NULLS LAST,
    so rows equal on all declared keys no longer depend on input order.  The
    planner sets these only under ``LIMIT``, where the cut would otherwise
    expose plan-dependent tie order.
    """
    result = ColumnBatch.from_result(result)
    order = list(range(len(result)))
    if tie_break_all:
        tie_columns = [result.values(p) for p in range(len(result.columns))]
    else:
        tie_columns = [
            compile_batch_scalar(expr, result.resolver)(result, None)
            for expr in tie_break
        ]
    for values in reversed(tie_columns):
        order.sort(
            key=lambda i, values=values: (
                values[i] is None,
                0 if values[i] is None else values[i],
            )
        )
    for key in reversed(keys):
        values = result.column_values(key.alias, key.column)
        order.sort(
            key=lambda i: (values[i] is None, 0 if values[i] is None else values[i]),
            reverse=not key.ascending,
        )
    return result.restrict(order)


def limit_result(result: ColumnBatch, limit: int, offset: int = 0) -> ColumnBatch:
    """Apply LIMIT/OFFSET by narrowing the selection vectors."""
    result = ColumnBatch.from_result(result)
    start = min(max(0, offset), len(result))
    end = min(start + max(0, limit), len(result))
    return result.restrict(list(range(start, end)))


def distinct_result(result: ColumnBatch) -> ColumnBatch:
    """Keep the first occurrence of every distinct row (selection-vector only)."""
    result = ColumnBatch.from_result(result)
    seen = set()
    keep: List[int] = []
    for i, row in enumerate(result.rows):
        if row not in seen:
            seen.add(row)
            keep.append(i)
    return result.restrict(keep)
