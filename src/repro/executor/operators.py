"""Vectorized (columnar, batch-at-a-time) relational operators.

This is the default execution engine.  Every operator consumes and produces
:class:`~repro.executor.batch.ColumnBatch` objects:

* ``scan_table`` wraps the storage layer's raw column lists into a batch
  without copying and narrows it with a compiled batch predicate;
* ``join_results`` hash-joins two batches by materializing only the key
  columns, then represents the output as two shared selection vectors — no
  payload column is touched until something downstream reads it;
* ``aggregate_result`` folds aggregates directly over column lists.

The engine mirrors :mod:`repro.executor.reference` exactly: same output
multiset (in fact the same row order: probe-side-major, build insertion
order within a key) and same work-accounting inputs.  Like the reference
engine it is a *functional simulator* — the optimizer's physical algorithm
choice (``NESTED_LOOP`` vs ``HASH_JOIN`` …) only affects the deterministic
work charged by :mod:`repro.executor.executor`, never the rows produced.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import ExecutionError
from repro.executor.batch import ColumnBatch
from repro.executor.expressions import compile_batch_conjunction, index_probe_keys
from repro.executor.reference import ResultSet, resolve_join_positions
from repro.sql.ast import AggregateFunc, SelectItem
from repro.sql.binder import BoundJoin

QualifiedColumn = Tuple[str, str]

__all__ = [
    "ColumnBatch",
    "ResultSet",
    "aggregate_result",
    "count_index_probe_matches",
    "join_results",
    "scan_table",
]


def scan_table(
    catalog: Catalog,
    alias: str,
    table_name: str,
    filters: Sequence,
    index_column: Optional[str] = None,
    index_filter=None,
) -> Tuple[ColumnBatch, int]:
    """Scan a base table column-wise, optionally through an index.

    The sequential path hands the table's backing column lists straight into
    the batch (zero-copy); filtering only builds a selection vector.

    Returns:
        ``(batch, rows_fetched)`` where ``rows_fetched`` is the number of
        rows read from storage before residual filtering (used for work
        accounting: an index scan reads fewer rows than a sequential scan).
    """
    table = catalog.table(table_name)
    columns: List[QualifiedColumn] = [
        (alias, name) for name in table.schema.column_names
    ]
    batch = ColumnBatch(columns, table.column_data(), length=table.row_count)

    if index_column is not None and index_filter is not None:
        index = catalog.indexes(table_name).get(index_column)
        if index is None:
            raise ExecutionError(
                f"plan requires an index on {table_name}.{index_column} that does not exist"
            )
        keys = index_probe_keys(index_filter)
        row_ids: List[int] = []
        for key in keys:
            row_ids.extend(index.lookup(key))
        row_ids = sorted(set(row_ids))
        batch = batch.restrict(row_ids)
        rows_fetched = len(row_ids)
    else:
        rows_fetched = table.row_count

    predicate = compile_batch_conjunction(list(filters), batch.resolver)
    if predicate is not None:
        batch = batch.restrict(predicate(batch))
    return batch, rows_fetched


def _key_rows(
    batch: ColumnBatch, positions: Sequence[int]
) -> List[object]:
    """Per-row join keys: the bare value for one column, tuples otherwise."""
    if len(positions) == 1:
        return batch.values(positions[0])
    return list(zip(*(batch.values(p) for p in positions)))


def _key_is_null(key: object, composite: bool) -> bool:
    if composite:
        return any(v is None for v in key)
    return key is None


def join_results(
    left: ColumnBatch,
    right: ColumnBatch,
    joins: Sequence[BoundJoin],
) -> ColumnBatch:
    """Equi-join two batches on all given join predicates.

    The physical evaluation always builds a hash table on the smaller input;
    the optimizer's algorithm choice only affects work accounting.  Only the
    key columns are materialized — the output batch reuses both inputs'
    backing columns through composed selection vectors.
    """
    if not joins:
        raise ExecutionError("join_results requires at least one join predicate")
    left = ColumnBatch.from_result(left)
    right = ColumnBatch.from_result(right)
    left_positions, right_positions = resolve_join_positions(left, right, joins)

    build_on_left = len(left) <= len(right)
    if build_on_left:
        build, probe = left, right
        build_positions, probe_positions = left_positions, right_positions
    else:
        build, probe = right, left
        build_positions, probe_positions = right_positions, left_positions

    composite = len(build_positions) > 1
    build_keys = _key_rows(build, build_positions)
    buckets: Dict[object, List[int]] = {}
    for i, key in enumerate(build_keys):
        if _key_is_null(key, composite):
            continue
        buckets.setdefault(key, []).append(i)

    build_idx: List[int] = []
    probe_idx: List[int] = []
    probe_keys = _key_rows(probe, probe_positions)
    for i, key in enumerate(probe_keys):
        if _key_is_null(key, composite):
            continue
        matches = buckets.get(key)
        if not matches:
            continue
        build_idx.extend(matches)
        probe_idx.extend([i] * len(matches))

    if build_on_left:
        left_sel, right_sel = build_idx, probe_idx
    else:
        left_sel, right_sel = probe_idx, build_idx
    return ColumnBatch.concat(left.restrict(left_sel), right.restrict(right_sel))


def count_index_probe_matches(
    outer: ColumnBatch,
    outer_positions: Sequence[int],
    catalog: Catalog,
    inner_table: str,
    inner_column: str,
) -> int:
    """Number of index matches an index-nested-loop join would fetch.

    Counts, over all outer rows, how many inner rows share the join key
    *before* the inner table's residual filters are applied — the quantity an
    index nested loop actually pays for.
    """
    index = catalog.indexes(inner_table).get(inner_column)
    if index is None:
        return 0
    outer = ColumnBatch.from_result(outer)
    composite = len(outer_positions) > 1
    key_counts: Counter = Counter(
        key
        for key in _key_rows(outer, outer_positions)
        if not _key_is_null(key, composite)
    )
    matches = 0
    for key, count in key_counts.items():
        probe_key = key[0] if isinstance(key, tuple) else key
        matches += count * len(index.lookup(probe_key))
    return matches


def aggregate_result(
    result: ColumnBatch, select_items: Sequence[SelectItem]
) -> ColumnBatch:
    """Apply the final aggregation / projection column-wise."""
    if not select_items:
        return result
    result = ColumnBatch.from_result(result)
    has_aggregate = any(item.aggregate is not None for item in select_items)
    columns: List[QualifiedColumn] = []
    for i, item in enumerate(select_items):
        name = item.output_name or f"col{i}"
        columns.append(("", name))
    if has_aggregate:
        row: List[object] = []
        for item in select_items:
            values = result.column_values(item.column.alias, item.column.column)
            if item.aggregate is AggregateFunc.COUNT:
                row.append(sum(1 for v in values if v is not None))
            elif item.aggregate is AggregateFunc.MIN:
                row.append(min((v for v in values if v is not None), default=None))
            elif item.aggregate is AggregateFunc.MAX:
                row.append(max((v for v in values if v is not None), default=None))
            else:
                row.append(next((v for v in values if v is not None), None))
        return ColumnBatch.from_rows(columns, [tuple(row)])
    positions = [
        result.column_position(item.column.alias, item.column.column)
        for item in select_items
    ]
    return result.with_columns(columns, positions)
