"""Row-at-a-time reference operators (the differential-testing oracle).

This module preserves the original tuple-at-a-time execution engine as a
slow, obviously-correct oracle.  The vectorized operators in
:mod:`repro.executor.operators` must produce the same result multiset *and*
the same work-accounting inputs (rows fetched, output cardinalities, index
probe match counts) for every query; ``tests/test_executor_differential.py``
enforces this over the bundled workloads.

The engine is a *functional simulator*: every operator produces exactly the
rows a real implementation would produce, but the physical algorithm chosen
by the optimizer is reflected in the deterministic work accounting (see
:mod:`repro.executor.executor`), not in how the rows are computed.  In
particular a plan node labelled ``NESTED_LOOP`` is evaluated with a hash
table internally — same output, bounded wall-clock — while its *charged* work
is quadratic, exactly what the paper's execution times show when the
optimizer picks a nested loop on an underestimated input.
"""

from __future__ import annotations

import functools
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import ExecutionError
from repro.executor.expressions import (
    ColumnResolver,
    compile_conjunction,
    compile_scalar,
    index_probe_keys,
)
from repro.sql.ast import AggregateFunc, ColumnRef, SelectItem
from repro.sql.binder import BoundJoin, BoundSortKey, output_column_name

QualifiedColumn = Tuple[str, str]


class ResultSet:
    """An intermediate result: qualified column names plus row tuples."""

    def __init__(self, columns: Sequence[QualifiedColumn], rows: List[tuple]) -> None:
        self.columns: Tuple[QualifiedColumn, ...] = tuple(columns)
        self.rows = rows
        self.resolver = ColumnResolver(self.columns)

    def __len__(self) -> int:
        return len(self.rows)

    def column_position(self, alias: str, column: str) -> int:
        """Position of ``alias.column`` in each row tuple."""
        return self.resolver.position(alias, column)

    def column_values(self, alias: str, column: str) -> List[object]:
        """All values of one column."""
        position = self.column_position(alias, column)
        return [row[position] for row in self.rows]

    def project(self, columns: Sequence[QualifiedColumn]) -> "ResultSet":
        """Return a new result set with only the requested columns."""
        positions = [self.column_position(alias, column) for alias, column in columns]
        rows = [tuple(row[p] for p in positions) for row in self.rows]
        return ResultSet(columns, rows)


def scan_table(
    catalog: Catalog,
    alias: str,
    table_name: str,
    filters: Sequence,
    index_column: Optional[str] = None,
    index_filter=None,
    observed: Optional[Dict[str, int]] = None,
    pruned_partitions: Optional[Sequence[int]] = None,
    columns: Optional[Sequence[str]] = None,
) -> Tuple[ResultSet, int]:
    """Scan a base table, optionally through an index.

    ``observed`` is part of the operator protocol (the parallel engine
    records morsel statistics through it); the serial scan reports nothing.
    For a partitioned table, ``pruned_partitions`` drops whole shards before
    filtering; the surviving shards are read in partition order, matching
    the table's global row-id order.  ``columns`` — the planner's
    projection-pushdown set — is deliberately **ignored**: the oracle always
    reads full-width decoded rows, so differential tests independently
    check that late materialization never changes any referenced value.

    Returns:
        ``(result, rows_fetched)`` where ``rows_fetched`` is the number of
        rows read from storage before residual filtering (used for work
        accounting: an index scan reads fewer rows than a sequential scan).
    """
    table = catalog.table(table_name)
    columns: List[QualifiedColumn] = [
        (alias, name) for name in table.schema.column_names
    ]
    resolver = ColumnResolver(columns)

    if pruned_partitions is not None:
        pruned = set(pruned_partitions)
        candidate_rows: List[Tuple[object, ...]] = []
        for index, partition in enumerate(table.partitions()):
            if index not in pruned:
                candidate_rows.extend(partition.iter_rows())
        rows_fetched = len(candidate_rows)
        predicate = compile_conjunction(list(filters), resolver)
        rows = [row for row in candidate_rows if predicate(row)]
        return ResultSet(columns, rows), rows_fetched

    if index_column is not None and index_filter is not None:
        index = catalog.indexes(table_name).get(index_column)
        if index is None:
            raise ExecutionError(
                f"plan requires an index on {table_name}.{index_column} that does not exist"
            )
        keys = index_probe_keys(index_filter)
        row_ids: List[int] = []
        for key in keys:
            row_ids.extend(index.lookup(key))
        candidate_rows = [table.row(row_id) for row_id in sorted(set(row_ids))]
    else:
        candidate_rows = list(table.iter_rows())

    rows_fetched = len(candidate_rows)
    predicate = compile_conjunction(list(filters), resolver)
    rows = [row for row in candidate_rows if predicate(row)]
    return ResultSet(columns, rows), rows_fetched


def resolve_join_positions(
    left, right, joins: Sequence[BoundJoin]
) -> Tuple[List[int], List[int]]:
    """Column positions of each join key in the left / right inputs.

    Shared by both engines so predicate orientation is resolved identically.
    """
    left_positions: List[int] = []
    right_positions: List[int] = []
    for join in joins:
        if left.resolver.has(join.left_alias, join.left_column):
            left_positions.append(left.column_position(join.left_alias, join.left_column))
            right_positions.append(
                right.column_position(join.right_alias, join.right_column)
            )
        else:
            left_positions.append(left.column_position(join.right_alias, join.right_column))
            right_positions.append(
                right.column_position(join.left_alias, join.left_column)
            )
    return left_positions, right_positions


def join_results(
    left: ResultSet,
    right: ResultSet,
    joins: Sequence[BoundJoin],
    observed: Optional[Dict[str, int]] = None,
) -> ResultSet:
    """Equi-join two result sets on all given join predicates.

    The physical evaluation always builds a hash table on the smaller input;
    the optimizer's algorithm choice only affects work accounting.  When
    ``observed`` is given, the build/probe input sizes of the hash-join
    pipeline breaker are recorded exactly as the vectorized engine records
    them (see :func:`repro.executor.operators.join_results`).
    """
    if not joins:
        raise ExecutionError("join_results requires at least one join predicate")
    left_positions, right_positions = resolve_join_positions(left, right, joins)

    columns = list(left.columns) + list(right.columns)
    build_on_left = len(left.rows) <= len(right.rows)
    if observed is not None:
        observed["build_rows"] = min(len(left.rows), len(right.rows))
        observed["probe_rows"] = max(len(left.rows), len(right.rows))
    if build_on_left:
        build, probe = left, right
        build_positions, probe_positions = left_positions, right_positions
    else:
        build, probe = right, left
        build_positions, probe_positions = right_positions, left_positions

    buckets: Dict[tuple, List[tuple]] = {}
    for row in build.rows:
        key = tuple(row[p] for p in build_positions)
        if any(v is None for v in key):
            continue
        buckets.setdefault(key, []).append(row)

    out_rows: List[tuple] = []
    for row in probe.rows:
        key = tuple(row[p] for p in probe_positions)
        if any(v is None for v in key):
            continue
        matches = buckets.get(key)
        if not matches:
            continue
        for match in matches:
            if build_on_left:
                out_rows.append(match + row)
            else:
                out_rows.append(row + match)
    return ResultSet(columns, out_rows)


def cross_join_results(
    left: ResultSet,
    right: ResultSet,
    observed: Optional[Dict[str, int]] = None,
) -> ResultSet:
    """Cartesian product of two result sets (residual-only joins).

    Row order is left-major (every left row paired with all right rows in
    order) in both engines, so residual filtering downstream stays
    differential-test comparable.
    """
    if observed is not None:
        observed["build_rows"] = min(len(left.rows), len(right.rows))
        observed["probe_rows"] = max(len(left.rows), len(right.rows))
    columns = list(left.columns) + list(right.columns)
    rows = [l + r for l in left.rows for r in right.rows]
    return ResultSet(columns, rows)


def filter_result(result: ResultSet, predicates: Sequence) -> ResultSet:
    """Apply filter expressions to an intermediate result (residual filters)."""
    predicate = compile_conjunction(list(predicates), result.resolver)
    return ResultSet(result.columns, [row for row in result.rows if predicate(row)])


def empty_result(columns: Sequence[QualifiedColumn]) -> ResultSet:
    """An empty result with the given column layout (pruned subtrees)."""
    return ResultSet(columns, [])


def count_index_probe_matches(
    outer: ResultSet,
    outer_positions: Sequence[int],
    catalog: Catalog,
    inner_table: str,
    inner_column: str,
) -> int:
    """Number of index matches an index-nested-loop join would fetch.

    Counts, over all outer rows, how many inner rows share the join key
    *before* the inner table's residual filters are applied — the quantity an
    index nested loop actually pays for.
    """
    index = catalog.indexes(inner_table).get(inner_column)
    if index is None:
        return 0
    key_counts: Counter = Counter()
    for row in outer.rows:
        key = tuple(row[p] for p in outer_positions)
        if any(v is None for v in key):
            continue
        key_counts[key[0] if len(key) == 1 else key] += 1
    matches = 0
    for key, count in key_counts.items():
        probe_key = key if not isinstance(key, tuple) else key[0]
        matches += count * len(index.lookup(probe_key))
    return matches


def output_columns(select_items: Sequence[SelectItem]) -> List[QualifiedColumn]:
    """Output column names of a projected/aggregated result (shared rule)."""
    return [("", output_column_name(item, i)) for i, item in enumerate(select_items)]


def fold_aggregate(item: SelectItem, values: List[object]) -> object:
    """Fold one aggregate over the raw (NULL-inclusive) values of a group.

    Every aggregate skips NULLs and returns NULL (COUNT: 0) over an empty or
    all-NULL input, per SQL semantics; callers handle ``COUNT(*)`` themselves
    (there is no single values column to fold).  ``SUM``/``AVG`` accumulate
    in input order so float results are identical across engines.  The
    vectorized engine implements the same rules independently
    (``operators._fold_column`` / ``operators._fold_grouped``) so the
    differential suite cross-checks them rather than testing one shared
    implementation against itself.
    """
    if item.aggregate is AggregateFunc.COUNT:
        return sum(1 for v in values if v is not None)
    non_null = [v for v in values if v is not None]
    if item.aggregate is AggregateFunc.MIN:
        return min(non_null) if non_null else None
    if item.aggregate is AggregateFunc.MAX:
        return max(non_null) if non_null else None
    if item.aggregate in (AggregateFunc.SUM, AggregateFunc.AVG):
        if not non_null:
            return None
        # Seed from the first value rather than sum()'s integer 0 so IEEE
        # signed zeros survive (0 + -0.0 is 0.0, but -0.0 alone stays -0.0),
        # keeping float results bit-identical with the vectorized engine.
        total = functools.reduce(lambda acc, value: acc + value, non_null)
        if item.aggregate is AggregateFunc.SUM:
            return total
        return total / len(non_null)
    # Bare column inside an aggregate context (legacy direct-operator use).
    return non_null[0] if non_null else None


def _item_values(result: ResultSet, item: SelectItem) -> List[object]:
    """Per-row values of one select item's expression (row-at-a-time eval)."""
    ref = item.column
    if ref is not None:
        return result.column_values(ref.alias, ref.column)
    scalar = compile_scalar(item.expr, result.resolver)
    return [scalar(row) for row in result.rows]


def aggregate_result(
    result: ResultSet, select_items: Sequence[SelectItem]
) -> ResultSet:
    """Apply the final (ungrouped) aggregation / projection.

    Computed select items (``a + b``, ``CASE ...``) are evaluated row by row
    through the compiled row closures; aggregates over expressions
    (``SUM(a*b)``) fold over those per-row values.
    """
    if not select_items:
        return result
    has_aggregate = any(item.aggregate is not None for item in select_items)
    columns = output_columns(select_items)
    if has_aggregate:
        row: List[object] = []
        for item in select_items:
            if item.expr is None:  # COUNT(*)
                row.append(len(result))
                continue
            row.append(fold_aggregate(item, _item_values(result, item)))
        return ResultSet(columns, [tuple(row)])
    if all(item.column is not None for item in select_items):
        positions = [
            result.column_position(item.column.alias, item.column.column)
            for item in select_items
        ]
        rows = [tuple(row[p] for p in positions) for row in result.rows]
        return ResultSet(columns, rows)
    # Computed projection columns: one compiled evaluator per item.
    getters: List = []
    for item in select_items:
        ref = item.column
        if ref is not None:
            position = result.column_position(ref.alias, ref.column)
            getters.append(lambda row, p=position: row[p])
        else:
            getters.append(compile_scalar(item.expr, result.resolver))
    rows = [tuple(getter(row) for getter in getters) for row in result.rows]
    return ResultSet(columns, rows)


def group_aggregate_result(
    result: ResultSet,
    group_keys: Sequence[ColumnRef],
    select_items: Sequence[SelectItem],
) -> ResultSet:
    """Grouped aggregation: one output row per distinct group-key tuple.

    NULL group-key values form their own group (SQL's GROUP BY treats NULLs
    as equal).  Groups are emitted in first-appearance order, which both
    engines share, so row order matches the vectorized engine exactly.
    """
    key_positions = [
        result.column_position(ref.alias, ref.column) for ref in group_keys
    ]
    group_index: Dict[tuple, int] = {}
    group_rows: List[List[tuple]] = []
    for row in result.rows:
        key = tuple(row[p] for p in key_positions)
        index = group_index.get(key)
        if index is None:
            group_index[key] = index = len(group_rows)
            group_rows.append([])
        group_rows[index].append(row)

    # Each item evaluates per row: a bare column by position, a computed
    # expression through its compiled row closure; COUNT(*) has no values.
    item_getters: List = []
    for item in select_items:
        if item.expr is None:
            item_getters.append(None)  # COUNT(*)
        elif item.column is not None:
            position = result.column_position(item.column.alias, item.column.column)
            item_getters.append(lambda row, p=position: row[p])
        else:
            item_getters.append(compile_scalar(item.expr, result.resolver))
    out_rows: List[tuple] = []
    for rows in group_rows:
        out: List[object] = []
        for item, getter in zip(select_items, item_getters):
            if getter is None:  # COUNT(*)
                out.append(len(rows))
            elif item.aggregate is None:
                # Non-aggregate grouped items depend only on group keys
                # (binder rule), so the first row represents the group.
                out.append(getter(rows[0]))
            else:
                out.append(fold_aggregate(item, [getter(row) for row in rows]))
        out_rows.append(tuple(out))
    return ResultSet(output_columns(select_items), out_rows)


def sort_result(
    result: ResultSet,
    keys: Sequence[BoundSortKey],
    tie_break: Sequence = (),
    tie_break_all: bool = False,
) -> ResultSet:
    """Sort the result on the given keys (comparator-based, the oracle way).

    NULL placement is deterministic: NULLS LAST for ascending keys, NULLS
    FIRST for descending (PostgreSQL's default).  Rows tying on every key
    keep their input order (stable sort).  This is implemented independently
    of the vectorized engine's multi-pass sort — same ordering rules, a
    different algorithm — so the differential suite genuinely cross-checks
    ORDER BY semantics between the engines.

    ``tie_break`` expressions (or, with ``tie_break_all``, every input
    column positionally) extend the comparator below the declared keys as
    ascending NULLS-LAST columns, realizing the same deterministic total
    order the vectorized engine's extra tie passes produce under ``LIMIT``.
    """
    key_columns = [
        (result.column_values(key.alias, key.column), key.ascending)
        for key in keys
    ]
    if tie_break_all:
        for position in range(len(result.columns)):
            key_columns.append(([row[position] for row in result.rows], True))
    else:
        for expr in tie_break:
            scalar = compile_scalar(expr, result.resolver)
            key_columns.append(([scalar(row) for row in result.rows], True))

    def compare(a: int, b: int) -> int:
        for values, ascending in key_columns:
            va, vb = values[a], values[b]
            if va is None and vb is None:
                continue
            if va is None:  # NULLS LAST asc, NULLS FIRST desc
                return 1 if ascending else -1
            if vb is None:
                return -1 if ascending else 1
            if va == vb:
                continue
            if va < vb:
                return -1 if ascending else 1
            return 1 if ascending else -1
        return 0

    order = sorted(range(len(result)), key=functools.cmp_to_key(compare))
    return ResultSet(result.columns, [result.rows[i] for i in order])


def limit_result(result: ResultSet, limit: int, offset: int = 0) -> ResultSet:
    """Apply LIMIT/OFFSET to the result rows."""
    start = min(max(0, offset), len(result))
    end = min(start + max(0, limit), len(result))
    return ResultSet(result.columns, result.rows[start:end])


def distinct_result(result: ResultSet) -> ResultSet:
    """Drop duplicate rows, keeping the first occurrence of each."""
    seen = set()
    rows: List[tuple] = []
    for row in result.rows:
        if row not in seen:
            seen.add(row)
            rows.append(row)
    return ResultSet(result.columns, rows)
