"""Executor subsystem: operators, instrumented execution, EXPLAIN rendering."""

from repro.executor.executor import (
    ExecutionResult,
    Executor,
    NodeMetrics,
    WORK_UNITS_PER_SECOND,
)
from repro.executor.explain import estimation_errors, explain_plan
from repro.executor.operators import ResultSet, aggregate_result, join_results, scan_table

__all__ = [
    "ExecutionResult",
    "Executor",
    "NodeMetrics",
    "ResultSet",
    "WORK_UNITS_PER_SECOND",
    "aggregate_result",
    "estimation_errors",
    "explain_plan",
    "join_results",
    "scan_table",
]
