"""Executor subsystem: operators, instrumented execution, EXPLAIN rendering.

Two engines implement the plan operators:

* :mod:`repro.executor.operators` — the vectorized columnar engine (default);
* :mod:`repro.executor.reference` — the row-at-a-time oracle used for
  differential testing.

Select one per :class:`Executor` via :class:`ExecutionEngine`.
"""

from repro.executor.batch import ColumnBatch
from repro.executor.executor import (
    ExecutionEngine,
    ExecutionResult,
    Executor,
    NodeMetrics,
    WORK_UNITS_PER_SECOND,
)
from repro.executor.explain import estimation_errors, explain_plan
from repro.executor.operators import (
    ResultSet,
    aggregate_result,
    distinct_result,
    group_aggregate_result,
    join_results,
    limit_result,
    scan_table,
    sort_result,
)

__all__ = [
    "ColumnBatch",
    "ExecutionEngine",
    "ExecutionResult",
    "Executor",
    "NodeMetrics",
    "ResultSet",
    "WORK_UNITS_PER_SECOND",
    "aggregate_result",
    "distinct_result",
    "estimation_errors",
    "explain_plan",
    "group_aggregate_result",
    "join_results",
    "limit_result",
    "scan_table",
    "sort_result",
]
