"""Budget-aware operator wrapper: grace hash join and external merge sort.

:class:`SpillingOperators` wraps any base operator set
(:mod:`~repro.executor.operators`, :mod:`~repro.executor.reference`, or a
:class:`~repro.executor.parallel.MorselOperators` instance) and intercepts
the two pipeline breakers whose working state grows with input size — the
hash-join build table and the sort — whenever their input exceeds
``memory_budget`` rows.  Everything else delegates to the base engine
untouched, so one wrapper serves all three engines.

Determinism is the contract: spilled execution returns **bit-identical**
results to the in-memory engines.

* The grace hash join partitions both sides' row indices into
  ``ceil(build_rows / budget)`` bucket files by a deterministic hash of the
  join key, builds one bounded hash table per bucket (bucket files replay
  ascending row order, i.e. the serial build's insertion order), and
  finally stable-sorts the matched pairs by probe index.  One key maps to
  one bucket, so the restored order is exactly the in-memory engines'
  probe-side-major order with build insertion order within a key.
* The external merge sort folds the engines' multi-pass stable sort into a
  single composite key (declared keys with :class:`~repro.storage.spill.Rev`
  for descending, then tie-break columns, then the original row index),
  sorts runs of ``budget`` rows, spills each run's index order to a file,
  and k-way merges with ``heapq.merge`` — equal to the serial sort by
  construction.

Spill directories are context managers created per operation; leaving the
``with`` block — on success or a mid-spill failure — closes any open spill
file handles and removes the directory.  ``spill_dirs`` keeps the paths so
tests can assert the cleanup happened.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.executor.batch import ColumnBatch
from repro.executor.expressions import compile_batch_scalar
from repro.executor.operators import _key_is_null, _key_rows
from repro.executor.reference import resolve_join_positions
from repro.sql.binder import BoundJoin, BoundSortKey
from repro.storage.partition import stable_hash
from repro.storage.spill import BucketFiles, Rev, SpillDir, read_run, write_run

__all__ = ["SpillingOperators"]


class SpillingOperators:
    """An operator set enforcing a per-pipeline-breaker row budget."""

    def __init__(self, base, memory_budget: int) -> None:
        self.base = base
        self.memory_budget = max(1, int(memory_budget))
        #: How many joins / sorts actually spilled (smoke-test observability).
        self.spilled_joins = 0
        self.spilled_sorts = 0
        #: Temp directories used by past spills; all deleted by the time the
        #: operator returns, so tests assert none of these paths exist.
        self.spill_dirs: List[str] = []

    def __getattr__(self, name: str):
        # Everything not intercepted (scans, aggregates, limits, ...) runs on
        # the wrapped engine.
        return getattr(self.base, name)

    # -- grace hash join ---------------------------------------------------------

    def join_results(
        self,
        left,
        right,
        joins: Sequence[BoundJoin],
        observed: Optional[Dict[str, int]] = None,
    ):
        left = ColumnBatch.from_result(left)
        right = ColumnBatch.from_result(right)
        if min(len(left), len(right)) <= self.memory_budget:
            return self.base.join_results(left, right, joins, observed=observed)
        self.spilled_joins += 1
        return self._grace_hash_join(left, right, joins, observed)

    def _grace_hash_join(
        self,
        left: ColumnBatch,
        right: ColumnBatch,
        joins: Sequence[BoundJoin],
        observed: Optional[Dict[str, int]],
    ) -> ColumnBatch:
        left_positions, right_positions = resolve_join_positions(left, right, joins)
        build_on_left = len(left) <= len(right)
        if observed is not None:
            observed["build_rows"] = min(len(left), len(right))
            observed["probe_rows"] = max(len(left), len(right))
        if build_on_left:
            build, probe = left, right
            build_positions, probe_positions = left_positions, right_positions
        else:
            build, probe = right, left
            build_positions, probe_positions = right_positions, left_positions

        composite = len(build_positions) > 1
        build_keys = _key_rows(build, build_positions)
        probe_keys = _key_rows(probe, probe_positions)
        buckets = max(2, -(-len(build) // self.memory_budget))

        pairs: List[Tuple[int, int]] = []
        with SpillDir(prefix="repro-spill-join-") as spill:
            self.spill_dirs.append(spill.path)
            build_files = BucketFiles(spill, "build", buckets)
            for i, key in enumerate(build_keys):
                if not _key_is_null(key, composite):
                    build_files.write(stable_hash(key) % buckets, i)
            build_files.close()
            probe_files = BucketFiles(spill, "probe", buckets)
            for i, key in enumerate(probe_keys):
                if not _key_is_null(key, composite):
                    probe_files.write(stable_hash(key) % buckets, i)
            probe_files.close()

            for bucket in range(buckets):
                # Bucket files replay ascending row order, so this bounded
                # table equals the serial build restricted to the bucket.
                table: Dict[object, List[int]] = {}
                for i in build_files.read(bucket):
                    table.setdefault(build_keys[i], []).append(i)
                for i in probe_files.read(bucket):
                    matches = table.get(probe_keys[i])
                    if matches:
                        pairs.extend((i, m) for m in matches)

        # One probe key lives in exactly one bucket, so a probe row's matches
        # are contiguous and build-ordered already; the stable sort restores
        # the global probe-major order across buckets.
        pairs.sort(key=lambda pair: pair[0])
        probe_idx = [pair[0] for pair in pairs]
        build_idx = [pair[1] for pair in pairs]
        if build_on_left:
            left_sel, right_sel = build_idx, probe_idx
        else:
            left_sel, right_sel = probe_idx, build_idx
        return ColumnBatch.concat(left.restrict(left_sel), right.restrict(right_sel))

    # -- external merge sort -----------------------------------------------------

    def sort_result(
        self,
        result,
        keys: Sequence[BoundSortKey],
        tie_break: Sequence = (),
        tie_break_all: bool = False,
    ):
        batch = ColumnBatch.from_result(result)
        if len(batch) <= self.memory_budget:
            return self.base.sort_result(
                batch, keys, tie_break=tie_break, tie_break_all=tie_break_all
            )
        self.spilled_sorts += 1
        return self._external_merge_sort(batch, keys, tie_break, tie_break_all)

    def _external_merge_sort(
        self,
        batch: ColumnBatch,
        keys: Sequence[BoundSortKey],
        tie_break: Sequence,
        tie_break_all: bool,
    ) -> ColumnBatch:
        # The engines sort with one stable pass per key (tie passes first,
        # declared keys last); that equals a single sort on this composite
        # key, with the original index as the final stability tie-break.
        declared = [
            (batch.column_values(key.alias, key.column), key.ascending)
            for key in keys
        ]
        if tie_break_all:
            ties = [batch.values(p) for p in range(len(batch.columns))]
        else:
            ties = [
                compile_batch_scalar(expr, batch.resolver)(batch, None)
                for expr in tie_break
            ]

        def key_of(i: int) -> Tuple:
            parts: List[object] = []
            for values, ascending in declared:
                v = values[i]
                part = (v is None, 0 if v is None else v)
                parts.append(part if ascending else Rev(part))
            for values in ties:
                v = values[i]
                parts.append((v is None, 0 if v is None else v))
            parts.append(i)
            return tuple(parts)

        with SpillDir(prefix="repro-spill-sort-") as spill:
            self.spill_dirs.append(spill.path)
            runs: List[str] = []
            budget = self.memory_budget
            for start in range(0, len(batch), budget):
                run = list(range(start, min(start + budget, len(batch))))
                run.sort(key=key_of)
                path = spill.file(f"run-{len(runs)}.idx")
                write_run(path, run)
                runs.append(path)
            # Keys are recomputed per comparison from the in-memory columns,
            # so run files stay plain integer indices.
            order = list(
                heapq.merge(*(read_run(path) for path in runs), key=key_of)
            )
        return batch.restrict(order)
