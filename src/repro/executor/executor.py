"""Plan execution with instrumentation.

The executor walks a physical plan, computes the exact result rows, and
attaches to every node its *actual* cardinality and *actual work* — the cost
model evaluated with true row counts.  This plays the role of
``EXPLAIN ANALYZE`` in the paper: the re-optimization driver compares each
join's estimated and actual cardinality to decide whether to re-plan.

Three interchangeable operator sets implement the plan nodes, all driven
through the pull-style protocol in :mod:`repro.executor.protocol`:

* :data:`ExecutionEngine.VECTORIZED` (default) — the columnar batch engine
  in :mod:`repro.executor.operators`;
* :data:`ExecutionEngine.REFERENCE` — the original row-at-a-time oracle in
  :mod:`repro.executor.reference`;
* :data:`ExecutionEngine.PARALLEL` — the morsel-driven engine in
  :mod:`repro.executor.parallel` (fused filter kernels, worker-pool scans
  and hash joins, deterministic result order restored by morsel index).

Work accounting is **engine-invariant**: charged work depends only on row
counts (rows fetched, join input/output cardinalities, index probe matches),
which both engines compute identically; only wall-clock differs.  This is
what makes differential testing between the engines meaningful.

See DESIGN.md (Metrics) for why deterministic work units, not wall-clock,
are the primary execution-time proxy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import ExecutionError
from repro.executor.protocol import ExecutionEngine, OperatorSet, operators_for
from repro.executor.reference import ResultSet
from repro.optimizer.cost import CostModel
from repro.optimizer.plan import (
    AccessPath,
    AggregateNode,
    DistinctNode,
    HashAggregateNode,
    JoinAlgorithm,
    JoinNode,
    LimitNode,
    MaterializeNode,
    OneTimeFilterNode,
    PlanNode,
    ScanNode,
    SortNode,
)
from repro.optimizer.provenance import plan_output_columns
from repro.optimizer.pruning import prune_partitions
from repro.storage.partition import PartitionedTable

# Conversion between abstract work units and "simulated seconds" reported by
# the benchmark harness.  The constant is chosen so that a JOB-like workload
# at the default scale lands in the same few-hundred-seconds range as the
# paper's figures; only ratios between regimes matter for the claims.
WORK_UNITS_PER_SECOND = 2_000.0

# Nominal vector size used to report per-operator batch counts.  The batch
# statistic is engine-invariant by construction (derived from row counts the
# engines agree on), so the differential suites can compare it directly.
VECTOR_BATCH_ROWS = 1024


def batch_count(rows: int) -> int:
    """Number of nominal vectors an operator's output occupies (min 1)."""
    return max(1, -(-int(rows) // VECTOR_BATCH_ROWS))


@dataclass
class NodeMetrics:
    """Per-node instrumentation collected during execution.

    Beyond the estimated/actual cardinalities and charged work, the executor
    records ``batches`` (nominal :data:`VECTOR_BATCH_ROWS`-row vectors the
    output occupies — engine-invariant) and, for joins, the build/probe input
    sizes observed at the hash-join pipeline breaker.  Under the parallel
    engine, scans and joins additionally record ``morsels`` (row ranges
    dispatched) and ``workers`` (pool slots actually usable for them).
    Sequential scans of partitioned tables record ``partitions_scanned`` /
    ``partitions_pruned`` (the zone-map pruning actually applied at
    execution time) plus the late-materialization counters:
    ``segments_skipped`` (row blocks refuted by sealed min/max/null-count
    synopses before any kernel ran) and ``columns_decoded`` (distinct
    columns actually materialized — the projection-pushdown savings).
    These runtime statistics feed EXPLAIN ANALYZE and the adaptive
    re-optimization loop.
    """

    node_id: int
    label: str
    estimated_rows: float
    actual_rows: int
    work: float
    batches: int = 1
    build_rows: Optional[int] = None
    probe_rows: Optional[int] = None
    morsels: Optional[int] = None
    workers: Optional[int] = None
    partitions_scanned: Optional[int] = None
    partitions_pruned: Optional[int] = None
    segments_skipped: Optional[int] = None
    columns_decoded: Optional[int] = None


@dataclass
class ExecutionResult:
    """The outcome of executing one physical plan.

    ``result`` is a :class:`~repro.executor.batch.ColumnBatch` under the
    vectorized engine and a :class:`ResultSet` under the reference engine;
    the two are duck-type compatible.
    """

    result: ResultSet
    total_work: float
    wall_seconds: float
    node_metrics: Dict[int, NodeMetrics] = field(default_factory=dict)
    engine: ExecutionEngine = ExecutionEngine.VECTORIZED

    @property
    def simulated_seconds(self) -> float:
        """Total work rescaled to simulated seconds."""
        return self.total_work / WORK_UNITS_PER_SECOND

    @property
    def row_count(self) -> int:
        """Number of rows in the final result."""
        return len(self.result)

    @property
    def rows_processed(self) -> int:
        """Rows produced across all plan nodes (the throughput numerator)."""
        return sum(metric.actual_rows for metric in self.node_metrics.values())

    @property
    def rows_per_second(self) -> float:
        """Real (wall-clock) operator throughput in rows/sec."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.rows_processed / self.wall_seconds


class Executor:
    """Executes physical plans against a catalog.

    Args:
        catalog: tables and indexes to execute against.
        cost_model: work-accounting model (built from the catalog by default).
        engine: which operator implementation to use; work accounting is
            identical across engines by construction.
        workers: worker-pool size for the parallel engine (ignored by the
            serial engines).
        morsel_size: scan/join morsel size (rows) for the parallel engine.
        memory_budget: max rows a pipeline breaker may hold in memory; when
            set, hash-join build sides and sort runs beyond it spill to temp
            files (grace hash join / external merge sort).
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        engine: ExecutionEngine = ExecutionEngine.VECTORIZED,
        workers: Optional[int] = None,
        morsel_size: Optional[int] = None,
        memory_budget: Optional[int] = None,
    ) -> None:
        self._catalog = catalog
        self.cost_model = cost_model or CostModel(catalog)
        self.engine = ExecutionEngine.from_name(engine)
        self._ops: OperatorSet = operators_for(
            self.engine,
            workers=workers,
            morsel_size=morsel_size,
            memory_budget=memory_budget,
        )

    @property
    def operators(self):
        """The operator module implementing this executor's engine.

        Exposed so collaborators that evaluate relational operators outside
        a plan (e.g. the true-cardinality oracle's base-table scans) follow
        the configured engine instead of hard-pinning one implementation.
        """
        return self._ops

    def execute(self, plan: PlanNode) -> ExecutionResult:
        """Execute ``plan`` and return its result with instrumentation."""
        start = time.perf_counter()
        metrics: Dict[int, NodeMetrics] = {}
        result, work = self._execute_node(plan, metrics)
        wall = time.perf_counter() - start
        return ExecutionResult(
            result=result,
            total_work=work,
            wall_seconds=wall,
            node_metrics=metrics,
            engine=self.engine,
        )

    def execute_node(
        self,
        node: PlanNode,
        metrics: Dict[int, NodeMetrics],
        memo: Optional[Dict[int, Tuple[ResultSet, float]]] = None,
    ) -> Tuple[ResultSet, float]:
        """Execute one plan subtree, memoizing per-node results.

        This is the stage-wise entry the adaptive executor drives: it executes
        pipeline-breaker subtrees bottom-up, observing runtime statistics
        after each, and finally the plan root.  Passing the same ``memo``
        (keyed by node id) across calls makes execution *resumable* — a node
        already executed in an earlier stage returns its cached result and
        cumulative work instead of recomputing.
        """
        return self._execute_node(node, metrics, memo=memo)

    # -- node dispatch -----------------------------------------------------------

    def _execute_node(
        self,
        node: PlanNode,
        metrics: Dict[int, NodeMetrics],
        charge: bool = True,
        memo: Optional[Dict[int, Tuple[ResultSet, float]]] = None,
    ) -> Tuple[ResultSet, float]:
        if memo is not None and node.node_id in memo:
            return memo[node.node_id]
        build_rows: Optional[int] = None
        probe_rows: Optional[int] = None
        observed: Dict[str, int] = {}
        if isinstance(node, ScanNode):
            result, work = self._execute_scan(node, observed)
        elif isinstance(node, JoinNode):
            result, work, build_rows, probe_rows = self._execute_join(
                node, metrics, memo, observed
            )
        elif isinstance(node, AggregateNode):
            child_result, child_work = self._execute_node(node.child, metrics, memo=memo)
            result = self._ops.aggregate_result(child_result, list(node.select_items))
            work = child_work + self.cost_model.aggregate_cost(
                len(child_result), max(1, len(node.select_items))
            )
        elif isinstance(node, HashAggregateNode):
            child_result, child_work = self._execute_node(node.child, metrics, memo=memo)
            result = self._ops.group_aggregate_result(
                child_result, list(node.group_keys), list(node.select_items)
            )
            work = child_work + self.cost_model.hash_aggregate_cost(
                len(child_result), len(result), max(1, len(node.select_items))
            )
        elif isinstance(node, SortNode):
            child_result, child_work = self._execute_node(node.child, metrics, memo=memo)
            result = self._ops.sort_result(
                child_result,
                list(node.keys),
                tie_break=list(node.tie_break),
                tie_break_all=node.tie_break_all,
            )
            work = child_work + self.cost_model.sort_cost(
                len(child_result), len(node.keys)
            )
        elif isinstance(node, DistinctNode):
            child_result, child_work = self._execute_node(node.child, metrics, memo=memo)
            result = self._ops.distinct_result(child_result)
            work = child_work + self.cost_model.distinct_cost(
                len(child_result), len(result)
            )
        elif isinstance(node, LimitNode):
            child_result, child_work = self._execute_node(node.child, metrics, memo=memo)
            result = self._ops.limit_result(child_result, node.limit, node.offset)
            work = child_work + self.cost_model.limit_cost(len(result))
        elif isinstance(node, OneTimeFilterNode):
            if node.passes:
                result, work = self._execute_node(node.child, metrics, memo=memo)
            else:
                # The constant filter is false: the child subtree is pruned —
                # never executed, never charged.
                columns = plan_output_columns(node.child, self._catalog)
                result = self._ops.empty_result(columns)
                work = 0.0
        elif isinstance(node, MaterializeNode):
            child_result, child_work = self._execute_node(node.child, metrics, memo=memo)
            result = child_result
            work = child_work + self.cost_model.materialize_cost(
                len(child_result), len(child_result.columns)
            )
        else:
            raise ExecutionError(f"unsupported plan node {type(node).__name__}")

        if not charge:
            work = 0.0
        node.actual_rows = len(result)
        own_work = work - sum(
            metrics[child.node_id].work
            for child in node.children()
            if child.node_id in metrics
        )
        node.actual_work = max(0.0, own_work)
        metrics[node.node_id] = NodeMetrics(
            node_id=node.node_id,
            label=node.label(),
            estimated_rows=node.estimated_rows,
            actual_rows=len(result),
            work=work,
            batches=batch_count(len(result)),
            build_rows=build_rows,
            probe_rows=probe_rows,
            morsels=observed.get("morsels"),
            workers=observed.get("workers"),
            partitions_scanned=observed.get("partitions_scanned"),
            partitions_pruned=observed.get("partitions_pruned"),
            segments_skipped=observed.get("segments_skipped"),
            columns_decoded=observed.get("columns_decoded"),
        )
        if memo is not None:
            memo[node.node_id] = (result, work)
        return result, work

    # -- operators ----------------------------------------------------------------

    def _execute_scan(
        self, node: ScanNode, observed: Dict[str, int]
    ) -> Tuple[ResultSet, float]:
        index_column = None
        index_filter = None
        if node.access_path is AccessPath.INDEX_SCAN:
            index_column = node.index_column
            index_filter = node.index_filter
        pruned_partitions: Optional[Tuple[int, ...]] = None
        storage = self._catalog.table(node.table)
        if node.access_path is AccessPath.SEQ_SCAN and isinstance(
            storage, PartitionedTable
        ):
            # Pruning is re-derived here, not read off the plan: table loads
            # do not invalidate cached plans, so the plan-time set can be
            # stale.  Because this one scheduler drives every engine, the
            # execution-time set is engine-invariant automatically.
            pruned_partitions, total = prune_partitions(
                storage, list(node.filters)
            )
            observed["partitions_scanned"] = total - len(pruned_partitions)
            observed["partitions_pruned"] = len(pruned_partitions)
        result, rows_fetched = self._ops.scan_table(
            self._catalog,
            node.alias,
            node.table,
            list(node.filters),
            index_column=index_column,
            index_filter=index_filter,
            observed=observed,
            pruned_partitions=pruned_partitions,
            columns=node.columns,
        )
        if node.access_path is AccessPath.SEQ_SCAN:
            # ``rows_fetched`` is the storage rows the scan actually read:
            # the full table normally, the unpruned partitions' rows for a
            # partitioned table — pruning shrinks the charged CPU term.
            work = self.cost_model.seq_scan_cost(
                node.table, rows_fetched, len(node.filters)
            )
        else:
            residual = max(0, len(node.filters) - 1)
            work = self.cost_model.index_scan_cost(node.table, rows_fetched, residual)
        return result, work

    def _execute_join(
        self,
        node: JoinNode,
        metrics: Dict[int, NodeMetrics],
        memo: Optional[Dict[int, Tuple[ResultSet, float]]] = None,
        observed: Optional[Dict[str, int]] = None,
    ) -> Tuple[ResultSet, float, int, int]:
        inner_is_index_probed = node.algorithm is JoinAlgorithm.INDEX_NESTED_LOOP
        outer_result, outer_work = self._execute_node(node.left, metrics, memo=memo)
        inner_result, inner_work = self._execute_node(
            node.right, metrics, charge=not inner_is_index_probed, memo=memo
        )
        if observed is None:
            observed = {}
        if node.join_predicates:
            joined = self._ops.join_results(
                outer_result,
                inner_result,
                list(node.join_predicates),
                observed=observed,
            )
        else:
            # Residual-only join: filtered cross product (nested-loop costed).
            joined = self._ops.cross_join_results(
                outer_result, inner_result, observed=observed
            )
        if node.residual_filters:
            joined = self._ops.filter_result(joined, list(node.residual_filters))

        outer_rows = len(outer_result)
        inner_rows = len(inner_result)
        output_rows = len(joined)
        if node.algorithm is JoinAlgorithm.HASH_JOIN:
            own = self.cost_model.hash_join_cost(outer_rows, inner_rows, output_rows)
        elif node.algorithm is JoinAlgorithm.NESTED_LOOP:
            own = self.cost_model.nested_loop_cost(outer_rows, inner_rows, output_rows)
        elif node.algorithm is JoinAlgorithm.MERGE_JOIN:
            own = self.cost_model.merge_join_cost(outer_rows, inner_rows, output_rows)
        elif node.algorithm is JoinAlgorithm.INDEX_NESTED_LOOP:
            own = self._index_nested_loop_work(node, outer_result, output_rows)
        else:  # pragma: no cover - enum is exhaustive
            raise ExecutionError(f"unknown join algorithm {node.algorithm}")
        return (
            joined,
            outer_work + inner_work + own,
            observed.get("build_rows", inner_rows),
            observed.get("probe_rows", outer_rows),
        )

    def _index_nested_loop_work(
        self, node: JoinNode, outer_result: ResultSet, output_rows: int
    ) -> float:
        inner = node.right
        if not isinstance(inner, ScanNode):
            raise ExecutionError(
                "index nested loop plans must have a base-table scan as inner child"
            )
        join = None
        for candidate in node.join_predicates:
            if candidate.touches(inner.alias):
                join = candidate
                break
        if join is None:
            raise ExecutionError("index nested loop join has no usable join predicate")
        inner_column = join.column_for(inner.alias)
        outer_alias, outer_column = join.other(inner.alias)
        outer_position = outer_result.column_position(outer_alias, outer_column)
        probe_matches = self._ops.count_index_probe_matches(
            outer_result, [outer_position], self._catalog, inner.table, inner_column
        )
        # Probes pay one index lookup per outer row; every index match is
        # fetched and residual-filtered even if it does not survive.
        charged_matches = max(probe_matches, output_rows)
        return self.cost_model.index_nested_loop_cost(
            len(outer_result), charged_matches, len(inner.filters)
        )
