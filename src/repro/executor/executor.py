"""Plan execution with instrumentation.

The executor walks a physical plan, computes the exact result rows, and
attaches to every node its *actual* cardinality and *actual work* — the cost
model evaluated with true row counts.  This plays the role of
``EXPLAIN ANALYZE`` in the paper: the re-optimization driver compares each
join's estimated and actual cardinality to decide whether to re-plan.

See DESIGN.md (Metrics) for why deterministic work units, not wall-clock,
are the primary execution-time proxy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import ExecutionError
from repro.executor.operators import (
    ResultSet,
    aggregate_result,
    count_index_probe_matches,
    join_results,
    scan_table,
)
from repro.optimizer.cost import CostModel
from repro.optimizer.plan import (
    AccessPath,
    AggregateNode,
    JoinAlgorithm,
    JoinNode,
    MaterializeNode,
    PlanNode,
    ScanNode,
)

# Conversion between abstract work units and "simulated seconds" reported by
# the benchmark harness.  The constant is chosen so that a JOB-like workload
# at the default scale lands in the same few-hundred-seconds range as the
# paper's figures; only ratios between regimes matter for the claims.
WORK_UNITS_PER_SECOND = 2_000.0


@dataclass
class NodeMetrics:
    """Per-node instrumentation collected during execution."""

    node_id: int
    label: str
    estimated_rows: float
    actual_rows: int
    work: float


@dataclass
class ExecutionResult:
    """The outcome of executing one physical plan."""

    result: ResultSet
    total_work: float
    wall_seconds: float
    node_metrics: Dict[int, NodeMetrics] = field(default_factory=dict)

    @property
    def simulated_seconds(self) -> float:
        """Total work rescaled to simulated seconds."""
        return self.total_work / WORK_UNITS_PER_SECOND

    @property
    def row_count(self) -> int:
        """Number of rows in the final result."""
        return len(self.result)


class Executor:
    """Executes physical plans against a catalog."""

    def __init__(self, catalog: Catalog, cost_model: Optional[CostModel] = None) -> None:
        self._catalog = catalog
        self.cost_model = cost_model or CostModel(catalog)

    def execute(self, plan: PlanNode) -> ExecutionResult:
        """Execute ``plan`` and return its result with instrumentation."""
        start = time.perf_counter()
        metrics: Dict[int, NodeMetrics] = {}
        result, work = self._execute_node(plan, metrics)
        wall = time.perf_counter() - start
        return ExecutionResult(
            result=result, total_work=work, wall_seconds=wall, node_metrics=metrics
        )

    # -- node dispatch -----------------------------------------------------------

    def _execute_node(
        self, node: PlanNode, metrics: Dict[int, NodeMetrics], charge: bool = True
    ) -> Tuple[ResultSet, float]:
        if isinstance(node, ScanNode):
            result, work = self._execute_scan(node)
        elif isinstance(node, JoinNode):
            result, work = self._execute_join(node, metrics)
        elif isinstance(node, AggregateNode):
            child_result, child_work = self._execute_node(node.child, metrics)
            result = aggregate_result(child_result, list(node.select_items))
            work = child_work + self.cost_model.aggregate_cost(
                len(child_result), max(1, len(node.select_items))
            )
        elif isinstance(node, MaterializeNode):
            child_result, child_work = self._execute_node(node.child, metrics)
            result = child_result
            work = child_work + self.cost_model.materialize_cost(
                len(child_result), len(child_result.columns)
            )
        else:
            raise ExecutionError(f"unsupported plan node {type(node).__name__}")

        if not charge:
            work = 0.0
        node.actual_rows = len(result)
        own_work = work - sum(
            metrics[child.node_id].work
            for child in node.children()
            if child.node_id in metrics
        )
        node.actual_work = max(0.0, own_work)
        metrics[node.node_id] = NodeMetrics(
            node_id=node.node_id,
            label=node.label(),
            estimated_rows=node.estimated_rows,
            actual_rows=len(result),
            work=work,
        )
        return result, work

    # -- operators ----------------------------------------------------------------

    def _execute_scan(self, node: ScanNode) -> Tuple[ResultSet, float]:
        index_column = None
        index_filter = None
        if node.access_path is AccessPath.INDEX_SCAN:
            index_column = node.index_column
            index_filter = node.index_filter
        result, rows_fetched = scan_table(
            self._catalog,
            node.alias,
            node.table,
            list(node.filters),
            index_column=index_column,
            index_filter=index_filter,
        )
        if node.access_path is AccessPath.SEQ_SCAN:
            table_rows = self._catalog.table(node.table).row_count
            work = self.cost_model.seq_scan_cost(
                node.table, table_rows, len(node.filters)
            )
        else:
            residual = max(0, len(node.filters) - 1)
            work = self.cost_model.index_scan_cost(node.table, rows_fetched, residual)
        return result, work

    def _execute_join(
        self, node: JoinNode, metrics: Dict[int, NodeMetrics]
    ) -> Tuple[ResultSet, float]:
        inner_is_index_probed = node.algorithm is JoinAlgorithm.INDEX_NESTED_LOOP
        outer_result, outer_work = self._execute_node(node.left, metrics)
        inner_result, inner_work = self._execute_node(
            node.right, metrics, charge=not inner_is_index_probed
        )
        joined = join_results(outer_result, inner_result, list(node.join_predicates))

        outer_rows = len(outer_result)
        inner_rows = len(inner_result)
        output_rows = len(joined)
        if node.algorithm is JoinAlgorithm.HASH_JOIN:
            own = self.cost_model.hash_join_cost(outer_rows, inner_rows, output_rows)
        elif node.algorithm is JoinAlgorithm.NESTED_LOOP:
            own = self.cost_model.nested_loop_cost(outer_rows, inner_rows, output_rows)
        elif node.algorithm is JoinAlgorithm.MERGE_JOIN:
            own = self.cost_model.merge_join_cost(outer_rows, inner_rows, output_rows)
        elif node.algorithm is JoinAlgorithm.INDEX_NESTED_LOOP:
            own = self._index_nested_loop_work(node, outer_result, output_rows)
        else:  # pragma: no cover - enum is exhaustive
            raise ExecutionError(f"unknown join algorithm {node.algorithm}")
        return joined, outer_work + inner_work + own

    def _index_nested_loop_work(
        self, node: JoinNode, outer_result: ResultSet, output_rows: int
    ) -> float:
        inner = node.right
        if not isinstance(inner, ScanNode):
            raise ExecutionError(
                "index nested loop plans must have a base-table scan as inner child"
            )
        join = None
        for candidate in node.join_predicates:
            if candidate.touches(inner.alias):
                join = candidate
                break
        if join is None:
            raise ExecutionError("index nested loop join has no usable join predicate")
        inner_column = join.column_for(inner.alias)
        outer_alias, outer_column = join.other(inner.alias)
        outer_position = outer_result.column_position(outer_alias, outer_column)
        probe_matches = count_index_probe_matches(
            outer_result, [outer_position], self._catalog, inner.table, inner_column
        )
        # Probes pay one index lookup per outer row; every index match is
        # fetched and residual-filtered even if it does not survive.
        charged_matches = max(probe_matches, output_rows)
        return self.cost_model.index_nested_loop_cost(
            len(outer_result), charged_matches, len(inner.filters)
        )
