"""Morsel-driven parallel operators (the ``parallel`` execution engine).

The engine splits pipeline sources into fixed-size *morsels* — contiguous
row ranges — and dispatches them to a shared ``concurrent.futures`` thread
pool:

* **Scans** compile the whole filter conjunction into one fused single-pass
  kernel (:func:`repro.executor.expressions.compile_fused_filter`) and run
  one kernel invocation per morsel.  Each morsel returns its surviving row
  indices in ascending order; concatenating the per-morsel results in morsel
  index order reproduces the serial engine's selection vector exactly.
* **Hash joins** build per-morsel partial hash tables over the build side,
  merged at the barrier in morsel order (which reproduces the serial build's
  ascending per-key row lists), then probe in parallel with the output of
  each probe morsel concatenated in morsel order.

Determinism is therefore structural, not incidental: for any worker count
and morsel size the engine produces **bit-identical rows in identical
order** to the serial vectorized engine, which the differential fuzzer pins.

Every other operator (aggregation, sort, limit, distinct, residual filters)
delegates to the vectorized implementation — those run above a pipeline
breaker where the morsel results have already been gathered.  The gather
points coincide with the adaptive executor's stage-wise pause points: when
the adaptive scheduler pauses at a pipeline breaker to harvest observed
cardinalities, all morsels of the stage have joined the barrier, so the
observed statistics are complete.

Parallel dispatch is recorded through the ``observed`` channel of the
operator protocol (``morsels`` / ``workers``), surfaces in
:class:`~repro.executor.executor.NodeMetrics` and renders in
``EXPLAIN ANALYZE``.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import repro.executor.operators as vectorized
from repro.catalog.catalog import Catalog
from repro.errors import ExecutionError
from repro.executor.batch import ColumnBatch
from repro.executor.expressions import compile_fused_filter
from repro.executor.operators import _key_rows
from repro.executor.reference import resolve_join_positions
from repro.executor.scan import projected_names, scan_partitioned
from repro.sql.binder import BoundJoin

DEFAULT_WORKERS = 4
DEFAULT_MORSEL_SIZE = 4096

#: Worker pools shared per worker count.  Morsel order — not scheduling
#: order — determines result order, so sharing pools across executors is
#: safe and keeps thread counts bounded when tests build many databases.
_POOLS: Dict[int, concurrent.futures.ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _shared_pool(workers: int) -> concurrent.futures.ThreadPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"morsel-{workers}"
            )
            _POOLS[workers] = pool
        return pool


def _build_span(
    keys: List[object], start: int, end: int, composite: bool
) -> Dict[object, List[int]]:
    """Partial hash table over one build-side morsel (NULL keys dropped)."""
    buckets: Dict[object, List[int]] = {}
    setdefault = buckets.setdefault
    for i in range(start, end):
        key = keys[i]
        if (any(v is None for v in key) if composite else key is None):
            continue
        setdefault(key, []).append(i)
    return buckets


def _probe_span(
    keys: List[object],
    start: int,
    end: int,
    composite: bool,
    buckets: Dict[object, List[int]],
) -> Tuple[List[int], List[int]]:
    """Probe one morsel against the merged hash table."""
    build_idx: List[int] = []
    probe_idx: List[int] = []
    get = buckets.get
    for i in range(start, end):
        key = keys[i]
        if (any(v is None for v in key) if composite else key is None):
            continue
        matches = get(key)
        if not matches:
            continue
        build_idx.extend(matches)
        probe_idx.extend([i] * len(matches))
    return build_idx, probe_idx


class MorselOperators:
    """Operator set dispatching scans and joins morsel-wise to a worker pool.

    Satisfies :class:`repro.executor.protocol.OperatorSet`; results are
    :class:`~repro.executor.batch.ColumnBatch` objects, so everything
    downstream of the parallel operators is shared with the vectorized
    engine.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        morsel_size: Optional[int] = None,
    ) -> None:
        self.workers = max(1, int(workers if workers is not None else DEFAULT_WORKERS))
        self.morsel_size = max(
            1, int(morsel_size if morsel_size is not None else DEFAULT_MORSEL_SIZE)
        )

    # Operators above the scan/join pipeline breakers see fully gathered
    # batches and are shared verbatim with the vectorized engine.
    cross_join_results = staticmethod(vectorized.cross_join_results)
    filter_result = staticmethod(vectorized.filter_result)
    empty_result = staticmethod(vectorized.empty_result)
    count_index_probe_matches = staticmethod(vectorized.count_index_probe_matches)
    aggregate_result = staticmethod(vectorized.aggregate_result)
    group_aggregate_result = staticmethod(vectorized.group_aggregate_result)
    sort_result = staticmethod(vectorized.sort_result)
    limit_result = staticmethod(vectorized.limit_result)
    distinct_result = staticmethod(vectorized.distinct_result)

    # -- morsel dispatch ---------------------------------------------------------

    def _spans(self, length: int) -> List[Tuple[int, int]]:
        size = self.morsel_size
        return [(start, min(start + size, length)) for start in range(0, length, size)]

    def _record(self, observed: Optional[Dict[str, int]], morsels: int, workers: int) -> None:
        if observed is not None:
            observed["morsels"] = morsels
            observed["workers"] = workers

    # -- operators ---------------------------------------------------------------

    def scan_table(
        self,
        catalog: Catalog,
        alias: str,
        table_name: str,
        filters: Sequence,
        index_column: Optional[str] = None,
        index_filter=None,
        observed: Optional[Dict[str, int]] = None,
        pruned_partitions: Optional[Sequence[int]] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> Tuple[ColumnBatch, int]:
        """Morsel-parallel sequential scan with a fused filter kernel.

        Index scans, unfiltered scans and filter shapes fusion cannot express
        fall back to the (serial) vectorized scan — output and work
        accounting are identical either way.  Partitioned tables run the
        shared late-materialization pipeline
        (:func:`repro.executor.scan.scan_partitioned`) with one shard
        pipeline per pool task; shard results concatenate in partition
        order, so the row order is the same deterministic gather every
        engine produces.  ``columns`` narrows the scan (and the fused
        kernel's resolver) to the projection-pushdown set.
        """
        if index_column is not None and index_filter is not None:
            self._record(observed, 1, 1)
            return vectorized.scan_table(
                catalog,
                alias,
                table_name,
                filters,
                index_column=index_column,
                index_filter=index_filter,
                columns=columns,
            )
        table = catalog.table(table_name)
        if pruned_partitions is not None:
            kept_count = len(table.partitions()) - len(set(pruned_partitions))
            parallel = bool(filters) and self.workers > 1 and kept_count > 1
            result = scan_partitioned(
                table,
                alias,
                list(filters),
                pruned_partitions,
                columns,
                observed,
                pool=_shared_pool(self.workers) if parallel else None,
                workers=self.workers,
            )
            if parallel:
                self._record(observed, kept_count, min(self.workers, kept_count))
            else:
                self._record(observed, 1, 1)
            return result
        names = projected_names(table.schema, columns)
        qualified = [(alias, name) for name in names]
        length = table.row_count
        if columns is None:
            data = table.column_data()
        else:
            table_data = table.column_data()
            data = [
                table_data[table.schema.column_index(name)] for name in names
            ]
        batch = ColumnBatch(qualified, data, length=length)
        filters = list(filters)
        if not filters:
            self._record(observed, 1, 1)
            return batch, length
        kernel = compile_fused_filter(filters, batch.resolver)
        if kernel is None:
            self._record(observed, 1, 1)
            return vectorized.scan_table(
                catalog,
                alias,
                table_name,
                filters,
                columns=columns,
            )
        spans = self._spans(length)
        if self.workers > 1 and len(spans) > 1:
            pool = _shared_pool(self.workers)
            parts = list(
                pool.map(lambda span: kernel(data, span[0], span[1]), spans)
            )
            kept = [i for part in parts for i in part]
            self._record(observed, len(spans), min(self.workers, len(spans)))
        else:
            kept = []
            for start, end in spans:
                kept.extend(kernel(data, start, end))
            self._record(observed, max(1, len(spans)), 1)
        return batch.restrict(kept), length

    def join_results(
        self,
        left: ColumnBatch,
        right: ColumnBatch,
        joins: Sequence[BoundJoin],
        observed: Optional[Dict[str, int]] = None,
    ) -> ColumnBatch:
        """Morsel-parallel hash join (parallel build, merge barrier, parallel probe).

        Matches :func:`repro.executor.operators.join_results` row for row:
        partial hash tables merge in morsel order (reproducing the serial
        build's ascending per-key row lists), probe morsel outputs
        concatenate in morsel order (reproducing the serial probe-major row
        order), and the build side is always the smaller input.
        """
        if not joins:
            raise ExecutionError("join_results requires at least one join predicate")
        left = ColumnBatch.from_result(left)
        right = ColumnBatch.from_result(right)
        left_positions, right_positions = resolve_join_positions(left, right, joins)

        build_on_left = len(left) <= len(right)
        if observed is not None:
            observed["build_rows"] = min(len(left), len(right))
            observed["probe_rows"] = max(len(left), len(right))
        if build_on_left:
            build, probe = left, right
            build_positions, probe_positions = left_positions, right_positions
        else:
            build, probe = right, left
            build_positions, probe_positions = right_positions, left_positions

        composite = len(build_positions) > 1
        build_keys = _key_rows(build, build_positions)
        probe_keys = _key_rows(probe, probe_positions)
        build_spans = self._spans(len(build_keys))
        probe_spans = self._spans(len(probe_keys))
        parallel = self.workers > 1 and (len(build_spans) > 1 or len(probe_spans) > 1)

        if parallel:
            pool = _shared_pool(self.workers)
            partials = list(
                pool.map(
                    lambda span: _build_span(build_keys, span[0], span[1], composite),
                    build_spans,
                )
            )
            buckets: Dict[object, List[int]] = {}
            for partial in partials:  # merge barrier, morsel order
                for key, indices in partial.items():
                    existing = buckets.get(key)
                    if existing is None:
                        buckets[key] = indices
                    else:
                        existing.extend(indices)
            parts = list(
                pool.map(
                    lambda span: _probe_span(
                        probe_keys, span[0], span[1], composite, buckets
                    ),
                    probe_spans,
                )
            )
            build_idx: List[int] = []
            probe_idx: List[int] = []
            for span_build, span_probe in parts:
                build_idx.extend(span_build)
                probe_idx.extend(span_probe)
            morsels = len(build_spans) + len(probe_spans)
            used = min(self.workers, max(len(build_spans), len(probe_spans), 1))
            self._record(observed, morsels, used)
        else:
            buckets = _build_span(build_keys, 0, len(build_keys), composite)
            build_idx, probe_idx = _probe_span(
                probe_keys, 0, len(probe_keys), composite, buckets
            )
            self._record(observed, max(1, len(build_spans) + len(probe_spans)), 1)

        if build_on_left:
            left_sel, right_sel = build_idx, probe_idx
        else:
            left_sel, right_sel = probe_idx, build_idx
        return ColumnBatch.concat(left.restrict(left_sel), right.restrict(right_sel))
