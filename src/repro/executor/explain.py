"""EXPLAIN / EXPLAIN ANALYZE rendering of physical plans.

The output format intentionally resembles PostgreSQL's: one line per node,
indented by depth, showing the optimizer's estimates and — after execution —
the actual row counts and work.  The re-optimization examples and the
deep-dive example scripts print these trees.
"""

from __future__ import annotations

from typing import List, Optional

from repro.executor.executor import ExecutionResult
from repro.optimizer.plan import PlanNode


def explain_plan(plan: PlanNode, analyze: Optional[ExecutionResult] = None) -> str:
    """Render ``plan`` as an indented text tree.

    Args:
        plan: the plan root.
        analyze: execution result; when given, actual row counts and work are
            appended to every node line (EXPLAIN ANALYZE style).
    """
    lines: List[str] = []
    _render(plan, 0, lines, analyze)
    return "\n".join(lines)


def _render(
    node: PlanNode, depth: int, lines: List[str], analyze: Optional[ExecutionResult]
) -> None:
    indent = "  " * depth
    arrow = "-> " if depth else ""
    text = (
        f"{indent}{arrow}{node.label()}  "
        f"(est_rows={node.estimated_rows:.0f} est_cost={node.estimated_cost:.1f}"
    )
    if analyze is not None and node.node_id in analyze.node_metrics:
        metrics = analyze.node_metrics[node.node_id]
        text += f" actual_rows={metrics.actual_rows} work={metrics.work:.1f}"
    elif node.actual_rows is not None:
        text += f" actual_rows={node.actual_rows}"
    text += ")"
    lines.append(text)
    for child in node.children():
        _render(child, depth + 1, lines, analyze)


def estimation_errors(plan: PlanNode) -> List[str]:
    """Summarize estimated-vs-actual discrepancies of all joins in a plan.

    Only meaningful after the plan has been executed.  Used by examples and
    by tests asserting that the instrumentation is populated.
    """
    from repro.core.triggers import q_error

    lines: List[str] = []
    for join in plan.join_nodes():
        if join.actual_rows is None:
            continue
        error = q_error(join.estimated_rows, join.actual_rows)
        lines.append(
            f"{join.label()}: est={join.estimated_rows:.0f} "
            f"actual={join.actual_rows} q_error={error:.1f}"
        )
    return lines
