"""EXPLAIN / EXPLAIN ANALYZE rendering of physical plans.

The output format intentionally resembles PostgreSQL's: one line per node,
indented by depth, showing the optimizer's estimates and — after execution —
the actual row counts, batch counts and work.  The re-optimization examples
and the deep-dive example scripts print these trees.

When the execution result came from the adaptive executor
(:class:`~repro.executor.adaptive.AdaptiveExecutionResult`), the rendering
additionally marks scans of in-memory intermediates handed over by a
mid-query re-plan and appends one line per re-plan point: where execution
paused, the estimated-vs-actual mismatch that triggered it, and the
pseudo-table the intermediate was handed over as.
"""

from __future__ import annotations

from typing import List, Optional

from repro.executor.executor import ExecutionResult
from repro.optimizer.plan import JoinNode, OneTimeFilterNode, PlanNode, ScanNode
from repro.sql.ast import render_conjunct


def explain_plan(plan: PlanNode, analyze: Optional[ExecutionResult] = None) -> str:
    """Render ``plan`` as an indented text tree.

    Args:
        plan: the plan root.
        analyze: execution result; when given, actual row counts and work are
            appended to every node line (EXPLAIN ANALYZE style), and adaptive
            executions also render their re-plan points.
    """
    lines: List[str] = []
    _render(plan, 0, lines, analyze)
    replans = getattr(analyze, "replans", None)
    if replans:
        lines.append("Re-plan points:")
        for point in replans:
            lines.append(
                f"  #{point.index + 1} at {point.trigger_label}: "
                f"est_rows={point.estimated_rows:.0f} "
                f"actual_rows={point.actual_rows} "
                f"q_error={point.q_error:.1f} -> remainder re-planned, "
                f"{point.pseudo_rows} rows handed over in memory "
                f"as {point.pseudo_table}"
            )
    return "\n".join(lines)


def _render(
    node: PlanNode, depth: int, lines: List[str], analyze: Optional[ExecutionResult]
) -> None:
    indent = "  " * depth
    arrow = "-> " if depth else ""
    label = node.label()
    pseudo_tables = getattr(analyze, "pseudo_tables", ())
    if isinstance(node, ScanNode) and node.table in pseudo_tables:
        label += " [in-memory intermediate]"
    text = (
        f"{indent}{arrow}{label}  "
        f"(est_rows={node.estimated_rows:.0f} est_cost={node.estimated_cost:.1f}"
    )
    if analyze is not None and node.node_id in analyze.node_metrics:
        metrics = analyze.node_metrics[node.node_id]
        text += (
            f" actual_rows={metrics.actual_rows} "
            f"batches={metrics.batches} work={metrics.work:.1f}"
        )
        if metrics.build_rows is not None:
            text += f" build_rows={metrics.build_rows}"
        if metrics.probe_rows is not None:
            text += f" probe_rows={metrics.probe_rows}"
        if metrics.morsels is not None:
            text += f" morsels={metrics.morsels}"
        if metrics.workers is not None:
            text += f" workers={metrics.workers}"
        if metrics.partitions_scanned is not None:
            text += f" partitions_scanned={metrics.partitions_scanned}"
        if metrics.partitions_pruned is not None:
            text += f" partitions_pruned={metrics.partitions_pruned}"
        if metrics.segments_skipped is not None:
            text += f" segments_skipped={metrics.segments_skipped}"
        if metrics.columns_decoded is not None:
            text += f" columns_decoded={metrics.columns_decoded}"
    elif node.actual_rows is not None:
        text += f" actual_rows={node.actual_rows}"
    text += ")"
    lines.append(text)
    detail_indent = "  " * (depth + 1) + ("    " if depth else "")
    if isinstance(node, ScanNode) and node.partitions_total is not None:
        scanned = node.partitions_total - len(node.pruned_partitions)
        lines.append(
            f"{detail_indent}Partitions: {scanned}/{node.partitions_total} scanned"
        )
    if (
        isinstance(node, ScanNode)
        and node.columns is not None
        and node.columns_total
    ):
        lines.append(
            f"{detail_indent}Columns: {len(node.columns)}/{node.columns_total} read"
        )
    if analyze is not None and node.node_id in analyze.node_metrics:
        skipped = analyze.node_metrics[node.node_id].segments_skipped
        if skipped:
            lines.append(f"{detail_indent}Segments: {skipped} skipped")
    if isinstance(node, ScanNode) and node.filters:
        rendered = " AND ".join(render_conjunct(f) for f in node.filters)
        lines.append(f"{detail_indent}Filter (pushed down): {rendered}")
    if isinstance(node, JoinNode) and node.residual_filters:
        rendered = " AND ".join(
            render_conjunct(f) for f in node.residual_filters
        )
        lines.append(f"{detail_indent}Join Filter (residual): {rendered}")
    if isinstance(node, OneTimeFilterNode) and node.conditions:
        rendered = " AND ".join(render_conjunct(f) for f in node.conditions)
        lines.append(f"{detail_indent}One-Time Filter: {rendered}")
    for child in node.children():
        _render(child, depth + 1, lines, analyze)


def estimation_errors(plan: PlanNode) -> List[str]:
    """Summarize estimated-vs-actual discrepancies of all joins in a plan.

    Only meaningful after the plan has been executed.  Used by examples and
    by tests asserting that the instrumentation is populated.
    """
    from repro.core.triggers import q_error

    lines: List[str] = []
    for join in plan.join_nodes():
        if join.actual_rows is None:
            continue
        error = q_error(join.estimated_rows, join.actual_rows)
        lines.append(
            f"{join.label()}: est={join.estimated_rows:.0f} "
            f"actual={join.actual_rows} q_error={error:.1f}"
        )
    return lines
