"""Predicate compilation and evaluation.

Filter predicates are compiled once per plan into plain Python callables that
take a row tuple and return a boolean.  SQL ``LIKE`` patterns are translated
to compiled regular expressions (with caching) so repeated evaluation stays
cheap.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ExecutionError
from repro.sql.ast import (
    BetweenPredicate,
    ComparisonPredicate,
    InPredicate,
    LikePredicate,
    NullPredicate,
    OrPredicate,
    Predicate,
)

RowPredicate = Callable[[tuple], bool]


@lru_cache(maxsize=4096)
def like_pattern_to_regex(pattern: str) -> "re.Pattern":
    """Translate a SQL LIKE pattern into an anchored regular expression."""
    parts: List[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


def like_match(value: object, pattern: str) -> bool:
    """SQL LIKE semantics; NULL never matches."""
    if value is None:
        return False
    return like_pattern_to_regex(pattern).match(str(value)) is not None


class ColumnResolver:
    """Maps qualified ``(alias, column)`` pairs to row tuple positions."""

    def __init__(self, columns: Sequence[Tuple[str, str]]) -> None:
        self._positions: Dict[Tuple[str, str], int] = {
            (alias, column): index for index, (alias, column) in enumerate(columns)
        }
        self.columns: Tuple[Tuple[str, str], ...] = tuple(columns)

    def position(self, alias: str, column: str) -> int:
        """Index of ``alias.column`` in the row tuple."""
        try:
            return self._positions[(alias, column)]
        except KeyError:
            raise ExecutionError(
                f"column {alias}.{column} is not available in this intermediate result"
            ) from None

    def has(self, alias: str, column: str) -> bool:
        """True if the column is available."""
        return (alias, column) in self._positions


def compile_predicate(predicate: Predicate, resolver: ColumnResolver) -> RowPredicate:
    """Compile a filter predicate into a row-level boolean function."""
    if isinstance(predicate, ComparisonPredicate):
        index = resolver.position(predicate.column.alias, predicate.column.column)
        op = predicate.op
        value = predicate.value
        return lambda row: op.evaluate(row[index], value)
    if isinstance(predicate, InPredicate):
        index = resolver.position(predicate.column.alias, predicate.column.column)
        values = set(predicate.values)
        return lambda row: row[index] is not None and row[index] in values
    if isinstance(predicate, LikePredicate):
        index = resolver.position(predicate.column.alias, predicate.column.column)
        regex = like_pattern_to_regex(predicate.pattern)
        if predicate.negated:
            return lambda row: row[index] is not None and not regex.match(str(row[index]))
        return lambda row: row[index] is not None and bool(regex.match(str(row[index])))
    if isinstance(predicate, BetweenPredicate):
        index = resolver.position(predicate.column.alias, predicate.column.column)
        low = predicate.low
        high = predicate.high
        return lambda row: row[index] is not None and low <= row[index] <= high
    if isinstance(predicate, NullPredicate):
        index = resolver.position(predicate.column.alias, predicate.column.column)
        if predicate.negated:
            return lambda row: row[index] is not None
        return lambda row: row[index] is None
    if isinstance(predicate, OrPredicate):
        compiled = [compile_predicate(operand, resolver) for operand in predicate.operands]
        return lambda row: any(check(row) for check in compiled)
    raise ExecutionError(f"unsupported predicate type {type(predicate).__name__}")


def compile_conjunction(
    predicates: Sequence[Predicate], resolver: ColumnResolver
) -> RowPredicate:
    """Compile a conjunction of predicates into a single row-level function."""
    compiled = [compile_predicate(predicate, resolver) for predicate in predicates]
    if not compiled:
        return lambda row: True
    if len(compiled) == 1:
        return compiled[0]
    return lambda row: all(check(row) for check in compiled)
