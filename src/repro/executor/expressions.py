"""Predicate compilation and evaluation.

Two compilation targets share this module:

* **Row predicates** (the reference engine): a predicate becomes a plain
  Python callable taking a row tuple and returning a boolean.
* **Batch predicates** (the vectorized engine): a predicate becomes a
  callable taking a :class:`~repro.executor.batch.ColumnBatch` plus an
  optional candidate-index list and returning the surviving batch-row
  indices.  Conjunctions narrow the candidate list predicate by predicate,
  so later predicates only look at rows that survived earlier ones.

Both targets are compiled from the same AST and must agree exactly — the
differential test suite and the property tests enforce this.  SQL ``LIKE``
patterns are translated to compiled regular expressions (with caching) so
repeated evaluation stays cheap.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.sql.ast import (
    BetweenPredicate,
    ComparisonOp,
    ComparisonPredicate,
    InPredicate,
    LikePredicate,
    NullPredicate,
    OrPredicate,
    Predicate,
)

RowPredicate = Callable[[tuple], bool]

#: A compiled batch predicate: ``(batch, candidate_indices | None) -> indices``.
#: ``None`` candidates mean "all rows of the batch".
BatchPredicate = Callable[[object, Optional[Sequence[int]]], List[int]]


@lru_cache(maxsize=4096)
def like_pattern_to_regex(pattern: str) -> "re.Pattern":
    """Translate a SQL LIKE pattern into an anchored regular expression."""
    parts: List[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


def like_match(value: object, pattern: str) -> bool:
    """SQL LIKE semantics; NULL never matches."""
    if value is None:
        return False
    return like_pattern_to_regex(pattern).match(str(value)) is not None


class ColumnResolver:
    """Maps qualified ``(alias, column)`` pairs to row tuple positions."""

    def __init__(self, columns: Sequence[Tuple[str, str]]) -> None:
        self._positions: Dict[Tuple[str, str], int] = {
            (alias, column): index for index, (alias, column) in enumerate(columns)
        }
        self.columns: Tuple[Tuple[str, str], ...] = tuple(columns)

    def position(self, alias: str, column: str) -> int:
        """Index of ``alias.column`` in the row tuple."""
        try:
            return self._positions[(alias, column)]
        except KeyError:
            raise ExecutionError(
                f"column {alias}.{column} is not available in this intermediate result"
            ) from None

    def has(self, alias: str, column: str) -> bool:
        """True if the column is available."""
        return (alias, column) in self._positions


def compile_predicate(predicate: Predicate, resolver: ColumnResolver) -> RowPredicate:
    """Compile a filter predicate into a row-level boolean function."""
    if isinstance(predicate, ComparisonPredicate):
        index = resolver.position(predicate.column.alias, predicate.column.column)
        op = predicate.op
        value = predicate.value
        return lambda row: op.evaluate(row[index], value)
    if isinstance(predicate, InPredicate):
        index = resolver.position(predicate.column.alias, predicate.column.column)
        values = set(predicate.values)
        return lambda row: row[index] is not None and row[index] in values
    if isinstance(predicate, LikePredicate):
        index = resolver.position(predicate.column.alias, predicate.column.column)
        regex = like_pattern_to_regex(predicate.pattern)
        if predicate.negated:
            return lambda row: row[index] is not None and not regex.match(str(row[index]))
        return lambda row: row[index] is not None and bool(regex.match(str(row[index])))
    if isinstance(predicate, BetweenPredicate):
        index = resolver.position(predicate.column.alias, predicate.column.column)
        low = predicate.low
        high = predicate.high
        return lambda row: row[index] is not None and low <= row[index] <= high
    if isinstance(predicate, NullPredicate):
        index = resolver.position(predicate.column.alias, predicate.column.column)
        if predicate.negated:
            return lambda row: row[index] is not None
        return lambda row: row[index] is None
    if isinstance(predicate, OrPredicate):
        compiled = [compile_predicate(operand, resolver) for operand in predicate.operands]
        return lambda row: any(check(row) for check in compiled)
    raise ExecutionError(f"unsupported predicate type {type(predicate).__name__}")


def compile_conjunction(
    predicates: Sequence[Predicate], resolver: ColumnResolver
) -> RowPredicate:
    """Compile a conjunction of predicates into a single row-level function."""
    compiled = [compile_predicate(predicate, resolver) for predicate in predicates]
    if not compiled:
        return lambda row: True
    if len(compiled) == 1:
        return compiled[0]
    return lambda row: all(check(row) for check in compiled)


# -- batch (vectorized) compilation ------------------------------------------


def _candidates(batch, candidates: Optional[Sequence[int]]) -> Iterable[int]:
    return range(len(batch)) if candidates is None else candidates


def _filter_column(position: int, keep: Callable[[object], bool]) -> BatchPredicate:
    """Batch predicate keeping rows whose column value satisfies ``keep``.

    The selection-vector indirection is resolved once per call, outside the
    row loop, so the common zero-copy scan case (no selection vector) runs a
    bare ``data[i]`` list access per row.
    """

    def run(batch, candidates: Optional[Sequence[int]]) -> List[int]:
        data, sel = batch.column_storage(position)
        it = _candidates(batch, candidates)
        if sel is None:
            return [i for i in it if keep(data[i])]
        return [i for i in it if keep(data[sel[i]])]

    return run


def compile_batch_predicate(
    predicate: Predicate, resolver: ColumnResolver
) -> BatchPredicate:
    """Compile a filter predicate into a columnar (batch-at-a-time) evaluator.

    The returned callable must keep exactly the rows the row-level compilation
    of the same predicate keeps; NULL semantics follow SQL (NULL never
    satisfies a comparison, ``IS NULL`` excepted).
    """
    if isinstance(predicate, ComparisonPredicate):
        position = resolver.position(predicate.column.alias, predicate.column.column)
        value = predicate.value
        if value is None:
            return lambda batch, candidates: []
        op = predicate.op
        if op is ComparisonOp.EQ:
            return _filter_column(position, lambda v: v == value)
        if op is ComparisonOp.NE:
            return _filter_column(position, lambda v: v is not None and v != value)
        if op is ComparisonOp.LT:
            return _filter_column(position, lambda v: v is not None and v < value)
        if op is ComparisonOp.LE:
            return _filter_column(position, lambda v: v is not None and v <= value)
        if op is ComparisonOp.GT:
            return _filter_column(position, lambda v: v is not None and v > value)
        return _filter_column(position, lambda v: v is not None and v >= value)
    if isinstance(predicate, InPredicate):
        position = resolver.position(predicate.column.alias, predicate.column.column)
        values = {v for v in predicate.values if v is not None}
        return _filter_column(position, lambda v: v in values)
    if isinstance(predicate, LikePredicate):
        position = resolver.position(predicate.column.alias, predicate.column.column)
        regex = like_pattern_to_regex(predicate.pattern)
        if predicate.negated:
            return _filter_column(
                position, lambda v: v is not None and not regex.match(str(v))
            )
        return _filter_column(
            position, lambda v: v is not None and bool(regex.match(str(v)))
        )
    if isinstance(predicate, BetweenPredicate):
        position = resolver.position(predicate.column.alias, predicate.column.column)
        low = predicate.low
        high = predicate.high
        return _filter_column(position, lambda v: v is not None and low <= v <= high)
    if isinstance(predicate, NullPredicate):
        position = resolver.position(predicate.column.alias, predicate.column.column)
        if predicate.negated:
            return _filter_column(position, lambda v: v is not None)
        return _filter_column(position, lambda v: v is None)
    if isinstance(predicate, OrPredicate):
        compiled = [
            compile_batch_predicate(operand, resolver) for operand in predicate.operands
        ]

        def run_or(batch, candidates: Optional[Sequence[int]]) -> List[int]:
            keep = set()
            for check in compiled:
                keep.update(check(batch, candidates))
            if candidates is None:
                return sorted(keep)
            return [i for i in candidates if i in keep]

        return run_or
    raise ExecutionError(f"unsupported predicate type {type(predicate).__name__}")


def compile_batch_conjunction(
    predicates: Sequence[Predicate], resolver: ColumnResolver
) -> Optional[Callable[[object], List[int]]]:
    """Compile a conjunction into a ``batch -> surviving indices`` function.

    Returns ``None`` for the empty conjunction so callers can skip building a
    selection vector entirely (every row passes).
    """
    compiled = [compile_batch_predicate(predicate, resolver) for predicate in predicates]
    if not compiled:
        return None

    def run(batch) -> List[int]:
        candidates: Optional[List[int]] = None
        for check in compiled:
            candidates = check(batch, candidates)
            if not candidates:
                return []
        return candidates

    return run


def index_probe_keys(index_filter: Predicate) -> List[object]:
    """Keys to probe an equality index with, from the index-driving filter."""
    if isinstance(index_filter, ComparisonPredicate):
        return [index_filter.value]
    if isinstance(index_filter, InPredicate):
        return list(index_filter.values)
    raise ExecutionError(
        f"unsupported index filter of type {type(index_filter).__name__}"
    )
