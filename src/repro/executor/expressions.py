"""Expression compilation: one tree, two evaluation targets.

The unified :class:`~repro.sql.ast.Expr` tree is compiled into either of

* **Row closures** (the reference engine): :func:`compile_scalar` turns an
  expression into a plain Python callable taking a row tuple and returning
  the SQL value (``None`` is NULL); :func:`compile_predicate` wraps it with
  SQL's truthiness rule (only ``True`` keeps a row).
* **Batch evaluators** (the vectorized engine): :func:`compile_batch_scalar`
  produces a callable taking a :class:`~repro.executor.batch.ColumnBatch`
  plus an optional candidate-index list and returning the per-candidate
  values column-wise; :func:`compile_batch_predicate` returns the surviving
  batch-row indices.  Conjunctions narrow the candidate list predicate by
  predicate, so later predicates only look at rows that survived earlier
  ones, and the common leaf shapes (``column op literal``, ``IN``, ``LIKE``,
  ``BETWEEN``, ``IS NULL`` over a bare column) compile to specialized
  tight-loop filters that never materialize intermediate value lists.

Both targets are compiled from the same AST, share the value semantics of
:mod:`repro.sql.values` (three-valued logic, NULL-propagating arithmetic,
division by zero -> NULL) and must agree exactly — the differential test
suite and the expression fuzzer enforce this bit-for-bit, floats included.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.sql import values as V
from repro.sql.ast import (
    Arithmetic,
    ArithOp,
    Between,
    BoolConnective,
    BoolExpr,
    Case,
    Column,
    Comparison,
    ComparisonOp,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Param,
)
from repro.sql.values import like_pattern_to_regex

RowScalar = Callable[[tuple], object]
RowPredicate = Callable[[tuple], bool]

#: A compiled batch predicate: ``(batch, candidate_indices | None) -> indices``.
#: ``None`` candidates mean "all rows of the batch".
BatchPredicate = Callable[[object, Optional[Sequence[int]]], List[int]]

#: A compiled batch scalar: ``(batch, candidate_indices | None) -> values``.
BatchScalar = Callable[[object, Optional[Sequence[int]]], List[object]]

#: A fused filter kernel: ``(columns, start, end[, candidates]) -> kept row
#: indices``.  ``columns`` is the batch's raw backing column lists (no
#: selection vector); the optional fourth argument replaces the
#: ``range(start, end)`` row loop with an explicit candidate-index iterable
#: (segment skipping hands surviving rows through it).
FusedFilter = Callable[[Sequence[List[object]], int, int], List[int]]

__all__ = [
    "BatchPredicate",
    "BatchScalar",
    "ColumnResolver",
    "FusedFilter",
    "RowPredicate",
    "RowScalar",
    "compile_batch_conjunction",
    "compile_batch_predicate",
    "compile_batch_scalar",
    "compile_conjunction",
    "compile_fused_filter",
    "compile_predicate",
    "compile_scalar",
    "compile_value_predicate",
    "index_probe_keys",
    "like_match",
    "like_pattern_to_regex",
]


def like_match(value: object, pattern: str) -> bool:
    """Two-valued LIKE (NULL never matches); kept for direct callers."""
    return V.like(value, pattern) is True


class ColumnResolver:
    """Maps qualified ``(alias, column)`` pairs to row tuple positions."""

    def __init__(self, columns: Sequence[Tuple[str, str]]) -> None:
        self._positions: Dict[Tuple[str, str], int] = {
            (alias, column): index for index, (alias, column) in enumerate(columns)
        }
        self.columns: Tuple[Tuple[str, str], ...] = tuple(columns)

    def position(self, alias: str, column: str) -> int:
        """Index of ``alias.column`` in the row tuple."""
        try:
            return self._positions[(alias, column)]
        except KeyError:
            raise ExecutionError(
                f"column {alias}.{column} is not available in this intermediate result"
            ) from None

    def has(self, alias: str, column: str) -> bool:
        """True if the column is available."""
        return (alias, column) in self._positions


# ---------------------------------------------------------------------------
# Row-closure target (reference engine)
# ---------------------------------------------------------------------------


def compile_scalar(expr: Expr, resolver: ColumnResolver) -> RowScalar:
    """Compile an expression into a ``row -> value`` closure."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, Column):
        index = resolver.position(expr.alias, expr.column)
        return lambda row: row[index]
    if isinstance(expr, Param):
        raise ExecutionError(
            f"unbound parameter ?{expr.index} reached the executor; bind "
            "parameters before planning"
        )
    if isinstance(expr, Negate):
        operand = compile_scalar(expr.operand, resolver)
        return lambda row: V.negate(operand(row))
    if isinstance(expr, Arithmetic):
        op = expr.op
        left = compile_scalar(expr.left, resolver)
        right = compile_scalar(expr.right, resolver)
        return lambda row: V.arith(op, left(row), right(row))
    if isinstance(expr, Comparison):
        op = expr.op
        left = compile_scalar(expr.left, resolver)
        right = compile_scalar(expr.right, resolver)
        return lambda row: V.compare(op, left(row), right(row))
    if isinstance(expr, IsNull):
        operand = compile_scalar(expr.operand, resolver)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(expr, InList):
        operand = compile_scalar(expr.operand, resolver)
        items = [compile_scalar(item, resolver) for item in expr.items]
        if expr.negated:
            return lambda row: V.logical_not(
                V.in_list(operand(row), [item(row) for item in items])
            )
        return lambda row: V.in_list(operand(row), [item(row) for item in items])
    if isinstance(expr, Like):
        operand = compile_scalar(expr.operand, resolver)
        pattern = compile_scalar(expr.pattern, resolver)
        if expr.negated:
            return lambda row: V.logical_not(V.like(operand(row), pattern(row)))
        return lambda row: V.like(operand(row), pattern(row))
    if isinstance(expr, Between):
        operand = compile_scalar(expr.operand, resolver)
        low = compile_scalar(expr.low, resolver)
        high = compile_scalar(expr.high, resolver)
        if expr.negated:
            return lambda row: V.logical_not(
                V.between(operand(row), low(row), high(row))
            )
        return lambda row: V.between(operand(row), low(row), high(row))
    if isinstance(expr, Not):
        operand = compile_scalar(expr.operand, resolver)
        return lambda row: V.logical_not(operand(row))
    if isinstance(expr, BoolExpr):
        operands = [compile_scalar(operand, resolver) for operand in expr.operands]
        if expr.op is BoolConnective.AND:
            return lambda row: V.logical_and([operand(row) for operand in operands])
        return lambda row: V.logical_or([operand(row) for operand in operands])
    if isinstance(expr, Case):
        whens = [
            (compile_scalar(condition, resolver), compile_scalar(result, resolver))
            for condition, result in expr.whens
        ]
        default = (
            compile_scalar(expr.default, resolver)
            if expr.default is not None
            else None
        )

        def run_case(row):
            for condition, result in whens:
                if condition(row) is True:
                    return result(row)
            return default(row) if default is not None else None

        return run_case
    raise ExecutionError(f"unsupported expression type {type(expr).__name__}")


def compile_predicate(predicate: Expr, resolver: ColumnResolver) -> RowPredicate:
    """Compile a filter expression into a row-level boolean function.

    SQL filter semantics: the row is kept only when the three-valued result
    is ``True`` (``False`` and NULL both drop it).
    """
    scalar = compile_scalar(predicate, resolver)
    return lambda row: scalar(row) is True


def compile_value_predicate(
    predicate: Expr, alias: str, column: str
) -> Optional[Callable[[object], bool]]:
    """Compile a predicate over exactly one column into ``value -> keep``.

    The compressed-domain filter kernels use this to evaluate a conjunct
    once per dictionary entry or once per RLE run instead of once per row.
    The closure reuses :func:`compile_predicate` over a one-column row, so
    its keep/drop decision is — by construction — identical to the row and
    batch evaluators on the decoded value.  Returns ``None`` when the
    predicate references anything but ``alias.column`` (or contains a shape
    the row compiler rejects, e.g. an unbound parameter); callers then fall
    back to the decode path.
    """
    refs = {(ref.alias, ref.column) for ref in predicate.referenced_columns()}
    if refs != {(alias, column)}:
        return None
    try:
        row_predicate = compile_predicate(
            predicate, ColumnResolver(((alias, column),))
        )
    except ExecutionError:
        return None
    return lambda value: row_predicate((value,))


def compile_conjunction(
    predicates: Sequence[Expr], resolver: ColumnResolver
) -> RowPredicate:
    """Compile a conjunction of predicates into a single row-level function."""
    compiled = [compile_predicate(predicate, resolver) for predicate in predicates]
    if not compiled:
        return lambda row: True
    if len(compiled) == 1:
        return compiled[0]
    return lambda row: all(check(row) for check in compiled)


# ---------------------------------------------------------------------------
# Batch (vectorized) target
# ---------------------------------------------------------------------------


def _candidates(batch, candidates: Optional[Sequence[int]]) -> Iterable[int]:
    return range(len(batch)) if candidates is None else candidates


def _filter_column(position: int, keep: Callable[[object], bool]) -> BatchPredicate:
    """Batch predicate keeping rows whose column value satisfies ``keep``.

    The selection-vector indirection is resolved once per call, outside the
    row loop, so the common zero-copy scan case (no selection vector) runs a
    bare ``data[i]`` list access per row.
    """

    def run(batch, candidates: Optional[Sequence[int]]) -> List[int]:
        data, sel = batch.column_storage(position)
        it = _candidates(batch, candidates)
        if sel is None:
            return [i for i in it if keep(data[i])]
        return [i for i in it if keep(data[sel[i]])]

    return run


def _literal_value(expr: Expr) -> Tuple[bool, object]:
    """``(True, value)`` when the expression is a literal constant."""
    if isinstance(expr, Literal):
        return True, expr.value
    return False, None


def _column_comparison_filter(
    position: int, op: ComparisonOp, value: object
) -> BatchPredicate:
    """Tight-loop filter for the ``column op literal`` shape."""
    if value is None:
        return lambda batch, candidates: []
    if op is ComparisonOp.EQ:
        return _filter_column(position, lambda v: v is not None and v == value)
    if op is ComparisonOp.NE:
        return _filter_column(position, lambda v: v is not None and v != value)
    if op is ComparisonOp.LT:
        return _filter_column(position, lambda v: v is not None and v < value)
    if op is ComparisonOp.LE:
        return _filter_column(position, lambda v: v is not None and v <= value)
    if op is ComparisonOp.GT:
        return _filter_column(position, lambda v: v is not None and v > value)
    return _filter_column(position, lambda v: v is not None and v >= value)


def compile_batch_predicate(
    predicate: Expr, resolver: ColumnResolver
) -> BatchPredicate:
    """Compile a filter expression into a columnar (batch-at-a-time) evaluator.

    The returned callable keeps exactly the rows the row-level compilation
    of the same expression keeps.  Leaf predicates over bare columns use
    specialized selection-vector loops; arbitrary trees fall back to the
    column-wise scalar evaluator and keep the rows whose value is ``True``.
    """
    if isinstance(predicate, Comparison):
        # column op literal (either orientation) -> specialized loop.
        if isinstance(predicate.left, Column):
            is_literal, value = _literal_value(predicate.right)
            if is_literal:
                position = resolver.position(
                    predicate.left.alias, predicate.left.column
                )
                return _column_comparison_filter(position, predicate.op, value)
        if isinstance(predicate.right, Column):
            is_literal, value = _literal_value(predicate.left)
            if is_literal:
                position = resolver.position(
                    predicate.right.alias, predicate.right.column
                )
                return _column_comparison_filter(
                    position, predicate.op.flipped(), value
                )
    elif isinstance(predicate, InList) and isinstance(predicate.operand, Column):
        if all(isinstance(item, Literal) for item in predicate.items):
            position = resolver.position(
                predicate.operand.alias, predicate.operand.column
            )
            literal_values = [item.value for item in predicate.items]
            non_null = {v for v in literal_values if v is not None}
            if not predicate.negated:
                return _filter_column(position, lambda v: v in non_null)
            if any(v is None for v in literal_values):
                # ``x NOT IN (..., NULL)`` is never True.
                return lambda batch, candidates: []
            return _filter_column(
                position, lambda v: v is not None and v not in non_null
            )
    elif isinstance(predicate, Like) and isinstance(predicate.operand, Column):
        is_literal, pattern = _literal_value(predicate.pattern)
        if is_literal and pattern is not None:
            position = resolver.position(
                predicate.operand.alias, predicate.operand.column
            )
            regex = like_pattern_to_regex(str(pattern))
            if predicate.negated:
                return _filter_column(
                    position, lambda v: v is not None and not regex.match(str(v))
                )
            return _filter_column(
                position, lambda v: v is not None and bool(regex.match(str(v)))
            )
    elif isinstance(predicate, Between) and isinstance(predicate.operand, Column):
        low_literal, low = _literal_value(predicate.low)
        high_literal, high = _literal_value(predicate.high)
        if low_literal and high_literal:
            position = resolver.position(
                predicate.operand.alias, predicate.operand.column
            )
            if low is None or high is None:
                return lambda batch, candidates: []
            if predicate.negated:
                return _filter_column(
                    position, lambda v: v is not None and not (low <= v <= high)
                )
            return _filter_column(
                position, lambda v: v is not None and low <= v <= high
            )
    elif isinstance(predicate, IsNull) and isinstance(predicate.operand, Column):
        position = resolver.position(
            predicate.operand.alias, predicate.operand.column
        )
        if predicate.negated:
            return _filter_column(position, lambda v: v is not None)
        return _filter_column(position, lambda v: v is None)
    elif isinstance(predicate, BoolExpr):
        compiled = [
            compile_batch_predicate(operand, resolver)
            for operand in predicate.operands
        ]
        if predicate.op is BoolConnective.AND:

            def run_and(batch, candidates: Optional[Sequence[int]]) -> List[int]:
                for check in compiled:
                    candidates = check(batch, candidates)
                    if not candidates:
                        return []
                return list(candidates)

            return run_and

        def run_or(batch, candidates: Optional[Sequence[int]]) -> List[int]:
            keep = set()
            for check in compiled:
                keep.update(check(batch, candidates))
            if candidates is None:
                return sorted(keep)
            return [i for i in candidates if i in keep]

        return run_or
    # Generic tree: evaluate column-wise, keep candidates whose value is True.
    scalar = compile_batch_scalar(predicate, resolver)

    def run_generic(batch, candidates: Optional[Sequence[int]]) -> List[int]:
        computed = scalar(batch, candidates)
        if candidates is None:
            return [i for i, value in enumerate(computed) if value is True]
        return [i for i, value in zip(candidates, computed) if value is True]

    return run_generic


def compile_batch_conjunction(
    predicates: Sequence[Expr], resolver: ColumnResolver
) -> Optional[Callable[[object], List[int]]]:
    """Compile a conjunction into a ``batch -> surviving indices`` function.

    Returns ``None`` for the empty conjunction so callers can skip building a
    selection vector entirely (every row passes).
    """
    compiled = [compile_batch_predicate(predicate, resolver) for predicate in predicates]
    if not compiled:
        return None

    def run(batch) -> List[int]:
        candidates: Optional[List[int]] = None
        for check in compiled:
            candidates = check(batch, candidates)
            if not candidates:
                return []
        return candidates

    return run


def compile_batch_scalar(expr: Expr, resolver: ColumnResolver) -> BatchScalar:
    """Compile an expression into a column-wise value evaluator.

    The returned callable computes the expression for every candidate row in
    one pass per tree node (a Python-level form of vectorization: one
    comprehension over compacted column lists instead of one closure call
    per row per node).
    """
    if isinstance(expr, Literal):
        value = expr.value

        def run_literal(batch, candidates: Optional[Sequence[int]]) -> List[object]:
            count = len(batch) if candidates is None else len(candidates)
            return [value] * count

        return run_literal
    if isinstance(expr, Column):
        position = resolver.position(expr.alias, expr.column)

        def run_column(batch, candidates: Optional[Sequence[int]]) -> List[object]:
            if candidates is None:
                return batch.values(position)
            data, sel = batch.column_storage(position)
            if sel is None:
                return [data[i] for i in candidates]
            return [data[sel[i]] for i in candidates]

        return run_column
    if isinstance(expr, Param):
        raise ExecutionError(
            f"unbound parameter ?{expr.index} reached the executor; bind "
            "parameters before planning"
        )
    if isinstance(expr, Negate):
        operand = compile_batch_scalar(expr.operand, resolver)
        return lambda batch, candidates: [
            None if v is None else -v for v in operand(batch, candidates)
        ]
    if isinstance(expr, Arithmetic):
        left = compile_batch_scalar(expr.left, resolver)
        right = compile_batch_scalar(expr.right, resolver)
        op = expr.op
        if op is ArithOp.ADD:
            return lambda batch, candidates: [
                None if a is None or b is None else a + b
                for a, b in zip(left(batch, candidates), right(batch, candidates))
            ]
        if op is ArithOp.SUB:
            return lambda batch, candidates: [
                None if a is None or b is None else a - b
                for a, b in zip(left(batch, candidates), right(batch, candidates))
            ]
        if op is ArithOp.MUL:
            return lambda batch, candidates: [
                None if a is None or b is None else a * b
                for a, b in zip(left(batch, candidates), right(batch, candidates))
            ]
        # DIV/MOD keep the truncation and zero-divisor rules in one place.
        return lambda batch, candidates: [
            V.arith(op, a, b)
            for a, b in zip(left(batch, candidates), right(batch, candidates))
        ]
    if isinstance(expr, Comparison):
        left = compile_batch_scalar(expr.left, resolver)
        right = compile_batch_scalar(expr.right, resolver)
        op = expr.op
        if op is ComparisonOp.EQ:
            return lambda batch, candidates: [
                None if a is None or b is None else a == b
                for a, b in zip(left(batch, candidates), right(batch, candidates))
            ]
        if op is ComparisonOp.NE:
            return lambda batch, candidates: [
                None if a is None or b is None else a != b
                for a, b in zip(left(batch, candidates), right(batch, candidates))
            ]
        if op is ComparisonOp.LT:
            return lambda batch, candidates: [
                None if a is None or b is None else a < b
                for a, b in zip(left(batch, candidates), right(batch, candidates))
            ]
        if op is ComparisonOp.LE:
            return lambda batch, candidates: [
                None if a is None or b is None else a <= b
                for a, b in zip(left(batch, candidates), right(batch, candidates))
            ]
        if op is ComparisonOp.GT:
            return lambda batch, candidates: [
                None if a is None or b is None else a > b
                for a, b in zip(left(batch, candidates), right(batch, candidates))
            ]
        return lambda batch, candidates: [
            None if a is None or b is None else a >= b
            for a, b in zip(left(batch, candidates), right(batch, candidates))
        ]
    if isinstance(expr, IsNull):
        operand = compile_batch_scalar(expr.operand, resolver)
        if expr.negated:
            return lambda batch, candidates: [
                v is not None for v in operand(batch, candidates)
            ]
        return lambda batch, candidates: [
            v is None for v in operand(batch, candidates)
        ]
    if isinstance(expr, InList):
        operand = compile_batch_scalar(expr.operand, resolver)
        items = [compile_batch_scalar(item, resolver) for item in expr.items]
        negated = expr.negated

        def run_in(batch, candidates: Optional[Sequence[int]]) -> List[object]:
            operand_values = operand(batch, candidates)
            item_columns = [item(batch, candidates) for item in items]
            out: List[object] = []
            for i, v in enumerate(operand_values):
                answer = V.in_list(v, [column[i] for column in item_columns])
                out.append(V.logical_not(answer) if negated else answer)
            return out

        return run_in
    if isinstance(expr, Like):
        operand = compile_batch_scalar(expr.operand, resolver)
        negated = expr.negated
        is_literal, pattern_value = _literal_value(expr.pattern)
        if is_literal:
            if pattern_value is None:
                return lambda batch, candidates: [None] * _count(batch, candidates)
            regex = like_pattern_to_regex(str(pattern_value))
            if negated:
                return lambda batch, candidates: [
                    None if v is None else not regex.match(str(v))
                    for v in operand(batch, candidates)
                ]
            return lambda batch, candidates: [
                None if v is None else bool(regex.match(str(v)))
                for v in operand(batch, candidates)
            ]
        pattern = compile_batch_scalar(expr.pattern, resolver)

        def run_like(batch, candidates: Optional[Sequence[int]]) -> List[object]:
            out: List[object] = []
            for v, p in zip(operand(batch, candidates), pattern(batch, candidates)):
                answer = V.like(v, p)
                out.append(V.logical_not(answer) if negated else answer)
            return out

        return run_like
    if isinstance(expr, Between):
        operand = compile_batch_scalar(expr.operand, resolver)
        low = compile_batch_scalar(expr.low, resolver)
        high = compile_batch_scalar(expr.high, resolver)
        negated = expr.negated

        def run_between(batch, candidates: Optional[Sequence[int]]) -> List[object]:
            out: List[object] = []
            for v, lo, hi in zip(
                operand(batch, candidates),
                low(batch, candidates),
                high(batch, candidates),
            ):
                answer = V.between(v, lo, hi)
                out.append(V.logical_not(answer) if negated else answer)
            return out

        return run_between
    if isinstance(expr, Not):
        operand = compile_batch_scalar(expr.operand, resolver)
        return lambda batch, candidates: [
            V.logical_not(v) for v in operand(batch, candidates)
        ]
    if isinstance(expr, BoolExpr):
        operands = [
            compile_batch_scalar(operand, resolver) for operand in expr.operands
        ]
        combine = (
            V.logical_and if expr.op is BoolConnective.AND else V.logical_or
        )

        def run_bool(batch, candidates: Optional[Sequence[int]]) -> List[object]:
            columns = [operand(batch, candidates) for operand in operands]
            return [combine(list(row)) for row in zip(*columns)]

        return run_bool
    if isinstance(expr, Case):
        whens = [
            (
                compile_batch_scalar(condition, resolver),
                compile_batch_scalar(result, resolver),
            )
            for condition, result in expr.whens
        ]
        default = (
            compile_batch_scalar(expr.default, resolver)
            if expr.default is not None
            else None
        )

        def run_case(batch, candidates: Optional[Sequence[int]]) -> List[object]:
            # All branches are total functions (arithmetic never raises: the
            # zero-divisor case yields NULL), so branches evaluate eagerly
            # column-wise and the output picks per row.
            count = _count(batch, candidates)
            condition_columns = [condition(batch, candidates) for condition, _ in whens]
            result_columns = [result(batch, candidates) for _, result in whens]
            default_column = (
                default(batch, candidates) if default is not None else [None] * count
            )
            out: List[object] = []
            for i in range(count):
                for conditions, results in zip(condition_columns, result_columns):
                    if conditions[i] is True:
                        out.append(results[i])
                        break
                else:
                    out.append(default_column[i])
            return out

        return run_case
    raise ExecutionError(f"unsupported expression type {type(expr).__name__}")


def _count(batch, candidates: Optional[Sequence[int]]) -> int:
    return len(batch) if candidates is None else len(candidates)


# ---------------------------------------------------------------------------
# Fused single-pass kernels (the morsel-parallel engine's scan target)
# ---------------------------------------------------------------------------
#
# The batch compiler above runs one Python pass per tree node: every
# arithmetic or comparison node materializes an intermediate value list over
# the whole candidate set.  The fused compiler instead generates Python
# source for the *entire* filter conjunction — one row loop, one local
# assignment per tree node, short-circuiting between top-level conjuncts —
# and ``compile()``s it once per plan.  On a scan-heavy workload this
# replaces N list materializations and N closure dispatches per batch with a
# single interpreted loop, which is where the parallel engine's speedup over
# the serial vectorized engine comes from.
#
# The generated code implements exactly the three-valued semantics of
# :mod:`repro.sql.values` (the differential fuzzer pins this bit-for-bit);
# any node shape the generator cannot reproduce inline (CASE, parameters,
# non-literal LIKE patterns or IN lists) aborts fusion and the caller falls
# back to the per-node batch compiler.

_COMPARISON_PYTHON = {
    ComparisonOp.EQ: "==",
    ComparisonOp.NE: "!=",
    ComparisonOp.LT: "<",
    ComparisonOp.LE: "<=",
    ComparisonOp.GT: ">",
    ComparisonOp.GE: ">=",
}

_ARITH_PYTHON = {ArithOp.ADD: "+", ArithOp.SUB: "-", ArithOp.MUL: "*"}

#: Compiled-kernel cache keyed by (filter SQL, input column layout); the SQL
#: rendering round-trips the tree exactly, so equal keys mean equal kernels.
_FUSED_CACHE: Dict[Tuple[Tuple[str, ...], Tuple[Tuple[str, str], ...]], Optional[FusedFilter]] = {}
_FUSED_CACHE_LIMIT = 1024


class _FusionUnsupported(Exception):
    """Raised while generating source for a node fusion cannot express."""


class _FusedEmitter:
    """Generates the loop body of a fused filter, one statement per node."""

    def __init__(self, resolver: ColumnResolver) -> None:
        self._resolver = resolver
        self.body: List[str] = []
        self.env: Dict[str, object] = {}
        self.loaded: Dict[int, str] = {}
        self._temps = 0

    def _temp(self) -> str:
        self._temps += 1
        return f"_t{self._temps}"

    def _bind(self, prefix: str, value: object) -> str:
        name = f"_{prefix}{len(self.env)}"
        self.env[name] = value
        return name

    def _load(self, position: int) -> str:
        """Column value local, loaded at first use so conjuncts that were
        short-circuited away never touch their columns."""
        name = self.loaded.get(position)
        if name is None:
            name = f"_v{position}"
            self.loaded[position] = name
            self.body.append(f"{name} = _col{position}[_i]")
        return name

    def _guarded(
        self, t: str, operands: Sequence[Tuple[str, bool]], value: str
    ) -> bool:
        """Emit ``t = value`` guarded by NULL checks on the nullable operands.

        Only operands that can actually be NULL (columns, computed temps) are
        checked — literal operands fold away at generation time, which keeps
        the inner loop tight and avoids ``is`` comparisons against literals.
        Returns whether the result itself can be NULL.
        """
        checks = [src for src, maybe_null in operands if maybe_null]
        if not checks:
            self.body.append(f"{t} = {value}")
            return False
        nullish = " or ".join(f"{src} is None" for src in checks)
        self.body.append(f"{t} = None if {nullish} else {value}")
        return True

    def _inline_div_mod(self, expr: "Arithmetic", a: str) -> Optional[str]:
        """Inline expression for DIV/MOD by a nonzero numeric literal.

        ``V.arith`` is a per-row function call with an enum dispatch — far
        too expensive for the inner loop.  When the divisor is a literal we
        can bake its sign and magnitude into the source and reproduce the
        exact :func:`repro.sql.values.arith` rules inline: integer division
        truncates toward zero, modulo takes the sign of the dividend, and a
        float on either side means true division.  A zero or non-literal
        divisor falls back to the ``_arith`` call.
        """
        if not isinstance(expr.right, Literal):
            return None
        d = expr.right.value
        if type(d) not in (int, float) or d == 0:
            return None
        ad = abs(d)
        if expr.op is ArithOp.MOD:
            # Sign of the dividend; the divisor's sign is irrelevant.
            return f"{a} % {ad!r} if {a} >= 0 else -((-{a}) % {ad!r})"
        if isinstance(d, float):
            return f"{a} / {d!r}"
        if d > 0:
            trunc = f"{a} // {ad!r} if {a} >= 0 else -((-{a}) // {ad!r})"
        else:
            trunc = f"-({a} // {ad!r}) if {a} >= 0 else (-{a}) // {ad!r}"
        return f"({trunc}) if isinstance({a}, int) else {a} / {d!r}"

    def emit(self, expr: Expr) -> Tuple[str, bool]:
        """Emit statements computing ``expr``.

        Returns ``(source, maybe_null)``: the local name (or parenthesized
        literal) holding the value, and whether it can be SQL NULL.
        """
        if isinstance(expr, Literal):
            value = expr.value
            if value is None:
                return "None", True
            if isinstance(value, (bool, int, float, str)):
                return f"({value!r})", False
            raise _FusionUnsupported(f"literal {value!r}")
        if isinstance(expr, Column):
            return self._load(self._resolver.position(expr.alias, expr.column)), True
        if isinstance(expr, Negate):
            operand = self.emit(expr.operand)
            t = self._temp()
            return t, self._guarded(t, [operand], f"-{operand[0]}")
        if isinstance(expr, Arithmetic):
            a = self.emit(expr.left)
            b = self.emit(expr.right)
            t = self._temp()
            symbol = _ARITH_PYTHON.get(expr.op)
            if symbol is not None:
                return t, self._guarded(t, [a, b], f"{a[0]} {symbol} {b[0]}")
            inline = self._inline_div_mod(expr, a[0])
            if inline is not None:
                return t, self._guarded(t, [a], inline)
            # DIV/MOD with a non-literal (or zero) divisor keep the truncation
            # and zero-divisor rules in one place.
            op_name = self._bind("op", expr.op)
            self.env.setdefault("_arith", V.arith)
            self.body.append(f"{t} = _arith({op_name}, {a[0]}, {b[0]})")
            return t, True
        if isinstance(expr, Comparison):
            a = self.emit(expr.left)
            b = self.emit(expr.right)
            t = self._temp()
            symbol = _COMPARISON_PYTHON[expr.op]
            return t, self._guarded(t, [a, b], f"{a[0]} {symbol} {b[0]}")
        if isinstance(expr, IsNull):
            src, maybe_null = self.emit(expr.operand)
            t = self._temp()
            if not maybe_null:
                self.body.append(f"{t} = {expr.negated!r}")
            else:
                check = "is not None" if expr.negated else "is None"
                self.body.append(f"{t} = {src} {check}")
            return t, False
        if isinstance(expr, Between):
            v = self.emit(expr.operand)
            lo = self.emit(expr.low)
            hi = self.emit(expr.high)
            t = self._temp()
            inner = f"{lo[0]} <= {v[0]} <= {hi[0]}"
            if expr.negated:
                inner = f"not ({inner})"
            return t, self._guarded(t, [v, lo, hi], inner)
        if isinstance(expr, InList):
            if not all(isinstance(item, Literal) for item in expr.items):
                raise _FusionUnsupported("non-literal IN list")
            v = self.emit(expr.operand)
            values = [item.value for item in expr.items]
            non_null = self._bind("set", frozenset(x for x in values if x is not None))
            has_null = any(x is None for x in values)
            t = self._temp()
            if expr.negated:
                if has_null:
                    # x NOT IN (..., NULL): False on a match, else unknown.
                    hit = f"(False if {v[0]} in {non_null} else None)"
                else:
                    hit = f"{v[0]} not in {non_null}"
            else:
                if has_null:
                    hit = f"(True if {v[0]} in {non_null} else None)"
                else:
                    hit = f"{v[0]} in {non_null}"
            return t, self._guarded(t, [v], hit) or has_null
        if isinstance(expr, Like):
            is_literal, pattern = _literal_value(expr.pattern)
            if not is_literal:
                raise _FusionUnsupported("non-literal LIKE pattern")
            t = self._temp()
            if pattern is None:
                self.body.append(f"{t} = None")
                return t, True
            v = self.emit(expr.operand)
            match = self._bind("rx", like_pattern_to_regex(str(pattern)).match)
            check = "is None" if expr.negated else "is not None"
            return t, self._guarded(t, [v], f"{match}(str({v[0]})) {check}")
        if isinstance(expr, Not):
            operand = self.emit(expr.operand)
            t = self._temp()
            return t, self._guarded(t, [operand], f"not {operand[0]}")
        if isinstance(expr, BoolExpr):
            operands = [self.emit(operand) for operand in expr.operands]
            t = self._temp()
            names = [src for src, _ in operands]
            nullable = [src for src, maybe_null in operands if maybe_null]
            nullish = " or ".join(f"{src} is None" for src in nullable)
            unknown = f"(None if {nullish} else" if nullable else "("
            if expr.op is BoolConnective.AND:
                falsy = " or ".join(f"{src} is False" for src in names)
                self.body.append(f"{t} = False if {falsy} else {unknown} True)")
            else:
                truthy = " or ".join(f"{src} is True" for src in names)
                self.body.append(f"{t} = True if {truthy} else {unknown} False)")
            return t, bool(nullable)
        # Case, Param and anything new fall back to the per-node compiler.
        raise _FusionUnsupported(type(expr).__name__)


def _generate_fused_filter(
    filters: Sequence[Expr], resolver: ColumnResolver
) -> FusedFilter:
    emitter = _FusedEmitter(resolver)
    for predicate in filters:
        src, _ = emitter.emit(predicate)
        emitter.body.append(f"if {src} is not True: continue")
    lines = ["def _fused(_columns, _start, _end, _cand=None):"]
    for position, name in sorted(emitter.loaded.items()):
        lines.append(f"    _col{position} = _columns[{position}]")
    lines.append("    _out = []")
    lines.append("    _keep = _out.append")
    lines.append("    _it = range(_start, _end) if _cand is None else _cand")
    lines.append("    for _i in _it:")
    for statement in emitter.body:
        lines.append(f"        {statement}")
    lines.append("        _keep(_i)")
    lines.append("    return _out")
    source = "\n".join(lines)
    namespace = dict(emitter.env)
    exec(compile(source, "<fused-filter>", "exec"), namespace)
    kernel = namespace["_fused"]
    kernel._fused_source = source
    return kernel


def compile_fused_filter(
    filters: Sequence[Expr], resolver: ColumnResolver
) -> Optional[FusedFilter]:
    """Fuse a whole filter conjunction into one compiled single-pass kernel.

    Returns ``(columns, start, end) -> kept indices`` — a callable over the
    batch's raw backing column lists, suitable for dispatching disjoint
    ``[start, end)`` morsels to a worker pool — or ``None`` when the
    conjunction is empty or contains a node fusion cannot express (the
    caller then falls back to :func:`compile_batch_conjunction`).  Kernels
    are cached per (filter SQL, column layout), so a plan executed many
    times compiles its filters once.
    """
    if not filters:
        return None
    key = (tuple(f.to_sql() for f in filters), resolver.columns)
    try:
        return _FUSED_CACHE[key]
    except KeyError:
        pass
    try:
        kernel: Optional[FusedFilter] = _generate_fused_filter(filters, resolver)
    except _FusionUnsupported:
        kernel = None
    if len(_FUSED_CACHE) >= _FUSED_CACHE_LIMIT:
        _FUSED_CACHE.clear()
    _FUSED_CACHE[key] = kernel
    return kernel


# ---------------------------------------------------------------------------
# Index probing
# ---------------------------------------------------------------------------


def index_probe_keys(index_filter: Expr) -> List[object]:
    """Keys to probe an equality index with, from the index-driving filter.

    Only the shapes the planner selects as index filters are supported:
    ``column = literal`` (either orientation) and ``column IN (literals)``.
    """
    if isinstance(index_filter, Comparison) and (
        index_filter.op is ComparisonOp.EQ
    ):
        for side in (index_filter.right, index_filter.left):
            if isinstance(side, Literal):
                return [side.value]
    if isinstance(index_filter, InList) and not index_filter.negated:
        if all(isinstance(item, Literal) for item in index_filter.items):
            return [item.value for item in index_filter.items]
    raise ExecutionError(
        f"unsupported index filter {index_filter.to_sql()!r}"
    )
