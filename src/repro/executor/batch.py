"""Columnar result batches.

A :class:`ColumnBatch` is the vectorized executor's intermediate result
representation: a set of qualified columns whose values live in parallel
backing lists, each viewed through an optional *selection vector* (a list of
row indices into the backing list).  Operators never copy payload columns:

* a sequential scan hands the storage layer's raw column lists straight into
  a batch (zero-copy);
* a filter produces a new batch that shares the backing lists and only
  narrows the selection vectors;
* a hash join gathers two index vectors (one per side) and composes them
  with the inputs' selection vectors — the cost of a join is proportional to
  the number of matches, not ``matches x columns``.

Columns coming from the same side of a join share one selection-vector
*object*; :meth:`restrict` preserves that sharing so composition work is paid
once per side, not once per column.

The class is duck-type compatible with the reference engine's
:class:`~repro.executor.reference.ResultSet` (``columns``, ``rows``,
``column_values``, ``column_position``, ``project``, ``__len__``), so every
consumer of execution results — temp-table materialization, the true
cardinality oracle, benchmarks — works with either engine's output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.executor.expressions import ColumnResolver

QualifiedColumn = Tuple[str, str]


class ColumnBatch:
    """A columnar intermediate result with per-column selection vectors."""

    __slots__ = ("columns", "resolver", "_data", "_sels", "_length", "_rows")

    def __init__(
        self,
        columns: Sequence[QualifiedColumn],
        data: Sequence[List[object]],
        sels: Optional[Sequence[Optional[List[int]]]] = None,
        length: Optional[int] = None,
    ) -> None:
        self.columns: Tuple[QualifiedColumn, ...] = tuple(columns)
        self._data: List[List[object]] = list(data)
        if len(self._data) != len(self.columns):
            raise ValueError(
                f"{len(self.columns)} columns but {len(self._data)} data lists"
            )
        self._sels: List[Optional[List[int]]] = (
            list(sels) if sels is not None else [None] * len(self._data)
        )
        if length is None:
            if not self._data:
                length = 0
            else:
                sel = self._sels[0]
                length = len(sel) if sel is not None else len(self._data[0])
        self._length = length
        self.resolver = ColumnResolver(self.columns)
        self._rows: Optional[List[tuple]] = None

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_rows(
        cls, columns: Sequence[QualifiedColumn], rows: Sequence[tuple]
    ) -> "ColumnBatch":
        """Build a batch from row tuples (transposes once)."""
        if rows:
            data = [list(values) for values in zip(*rows)]
        else:
            data = [[] for _ in columns]
        return cls(columns, data, length=len(rows))

    @classmethod
    def from_result(cls, result) -> "ColumnBatch":
        """Coerce any result-set-like object (e.g. a ``ResultSet``) to a batch."""
        if isinstance(result, cls):
            return result
        return cls.from_rows(result.columns, result.rows)

    # -- basic accessors ----------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def column_position(self, alias: str, column: str) -> int:
        """Position of ``alias.column`` among the batch's columns."""
        return self.resolver.position(alias, column)

    def column_storage(self, position: int) -> Tuple[List[object], Optional[List[int]]]:
        """Raw ``(backing list, selection vector)`` of one column.

        The backing list may be longer than the batch when the selection is
        ``None`` and the underlying storage grew after the batch was created;
        callers that iterate it directly must bound the scan by ``len(self)``.
        """
        return self._data[position], self._sels[position]

    def values(self, position: int) -> List[object]:
        """Compacted values of the column at ``position`` (selection applied)."""
        data = self._data[position]
        sel = self._sels[position]
        if sel is None:
            if len(data) != self._length:
                return data[: self._length]
            return data
        return [data[i] for i in sel]

    def column_values(self, alias: str, column: str) -> List[object]:
        """All values of one column (selection applied; may alias storage)."""
        return self.values(self.column_position(alias, column))

    @property
    def rows(self) -> List[tuple]:
        """Row-tuple view of the batch (materialized lazily, then cached)."""
        if self._rows is None:
            if not self._data:
                self._rows = [() for _ in range(self._length)]
            else:
                self._rows = list(
                    zip(*(self.values(p) for p in range(len(self._data))))
                )
        return self._rows

    # -- batch algebra ------------------------------------------------------

    def restrict(self, indices: List[int]) -> "ColumnBatch":
        """Keep only the batch rows at ``indices`` (composes selections).

        Columns sharing a selection-vector object keep sharing the composed
        vector, so the composition cost is paid once per distinct source.
        """
        composed: Dict[int, List[int]] = {}
        new_sels: List[Optional[List[int]]] = []
        for sel in self._sels:
            key = id(sel)
            if key not in composed:
                composed[key] = (
                    indices if sel is None else [sel[i] for i in indices]
                )
            new_sels.append(composed[key])
        return ColumnBatch(self.columns, self._data, new_sels, length=len(indices))

    def with_columns(
        self, columns: Sequence[QualifiedColumn], positions: Sequence[int]
    ) -> "ColumnBatch":
        """Project to ``positions``, renaming the output to ``columns``."""
        return ColumnBatch(
            columns,
            [self._data[p] for p in positions],
            [self._sels[p] for p in positions],
            length=self._length,
        )

    def project(self, columns: Sequence[QualifiedColumn]) -> "ColumnBatch":
        """Return a batch with only the requested columns (zero-copy)."""
        positions = [self.column_position(alias, column) for alias, column in columns]
        return self.with_columns(columns, positions)

    @staticmethod
    def concat(left: "ColumnBatch", right: "ColumnBatch") -> "ColumnBatch":
        """Glue two equal-length batches side by side (zero-copy)."""
        if len(left) != len(right):
            raise ValueError(
                f"cannot concatenate batches of {len(left)} and {len(right)} rows"
            )
        return ColumnBatch(
            left.columns + right.columns,
            left._data + right._data,
            left._sels + right._sels,
            length=len(left),
        )
