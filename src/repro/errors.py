"""Exception hierarchy for the repro query engine.

Every error raised by the library derives from :class:`ReproError` so that
applications embedding the engine can catch a single base class.  The
sub-classes mirror the major subsystems (catalog, SQL front-end, planning,
execution) which makes test assertions and error handling in the benchmark
harness precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class CatalogError(ReproError):
    """Schema or catalog level problem (unknown table, duplicate column...)."""


class TempTableExists(CatalogError):
    """A temporary table with the requested name already exists."""


class StorageError(ReproError):
    """Problem at the storage layer (bad row width, type mismatch on load)."""


class SQLError(ReproError):
    """Base class for SQL front-end errors."""


class LexerError(SQLError):
    """The SQL text contains a character sequence that cannot be tokenized."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SQLError):
    """The token stream does not form a supported SQL statement.

    When the parser can point at the offending token, the rendered message
    carries the flat character offset, the line/column position (1-based,
    computed from the SQL text — what editors and multi-line heredocs need)
    and an excerpt of the SQL around the token, e.g.
    ``... (at offset 42, line 3 column 7, near 'LIMIT 5')``.  ``position``,
    ``line``, ``column`` and ``fragment`` expose the same information
    programmatically.
    """

    def __init__(
        self, message: str, position: "int | None" = None, sql: "str | None" = None
    ) -> None:
        self.position = position
        self.fragment = sql_excerpt(sql, position) if sql is not None else None
        self.line: "int | None" = None
        self.column: "int | None" = None
        if position is not None and sql is not None:
            self.line, self.column = sql_line_column(sql, position)
        if position is not None:
            detail = f"at offset {position}"
            if self.line is not None:
                detail += f", line {self.line} column {self.column}"
            if self.fragment:
                detail += f", near {self.fragment!r}"
            message = f"{message} ({detail})"
        super().__init__(message)


def sql_line_column(sql: str, position: int) -> "tuple[int, int]":
    """1-based ``(line, column)`` of a character offset in SQL text."""
    position = min(max(0, position), len(sql))
    line = sql.count("\n", 0, position) + 1
    last_newline = sql.rfind("\n", 0, position)
    return line, position - last_newline


def sql_excerpt(sql: str, position: "int | None", width: int = 24) -> str:
    """A short single-line excerpt of ``sql`` starting at ``position``."""
    if position is None:
        return ""
    if position >= len(sql):
        return "end of input"
    fragment = " ".join(sql[position : position + width].split())
    if position + width < len(sql):
        fragment += "..."
    return fragment


class BindError(SQLError):
    """A parsed query references tables or columns that do not exist."""


class ParameterError(SQLError):
    """A ``?`` placeholder was bound with the wrong arity or value type."""


class ConfigError(ReproError):
    """Invalid engine configuration (unknown setting, out-of-range value)."""


class InterfaceError(ReproError):
    """Misuse of the Connection/Cursor serving API (e.g. after close())."""


class ServerError(ReproError):
    """Misuse or failure of the threaded serving layer (:mod:`repro.server`)."""


class AdmissionError(ServerError):
    """A statement was shed by admission control (queue full / timed out)."""


class PlanningError(ReproError):
    """The optimizer could not produce a plan for a bound query."""


class CardinalityError(PlanningError):
    """A cardinality estimate was requested for an unknown relation set."""


class ExecutionError(ReproError):
    """Runtime failure while executing a physical plan."""


class ReoptimizationError(ReproError):
    """The re-optimization driver reached an inconsistent state."""


class WorkloadError(ReproError):
    """Workload generation was asked for an impossible configuration."""
