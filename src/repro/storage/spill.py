"""Temp-file primitives for out-of-memory execution (grace hash, external sort).

:class:`~repro.executor.spilling.SpillingOperators` reroutes oversized
pipeline breakers through these helpers: a :class:`SpillDir` is one
operator's scratch directory of *row-index* files — sorted runs for the
external merge sort, per-bucket build/probe index partitions for the grace
hash join.  Indices, not row payloads, spill: the engine's batches already
share column storage zero-copy, so the quantity a memory budget actually
bounds is the per-breaker working state (a hash table, a sort run), which
these files replace.

Everything here is deterministic: runs and buckets are written in ascending
row order, read back in file order, and :class:`Rev` gives descending sort
keys an exact total-order inverse — which is what lets spilled execution
reproduce the in-memory engines bit for bit.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Iterable, Iterator, List

__all__ = ["BucketFiles", "Rev", "SpillDir", "read_run", "write_run"]


class Rev:
    """Order-inverting wrapper: ``Rev(a) < Rev(b)`` iff ``b < a``.

    Wrapping a sort-key component realizes a descending pass inside one
    composite ascending sort — equivalent to Python's stable
    ``sort(reverse=True)`` pass when a later tuple element breaks ties.
    """

    __slots__ = ("inner",)

    def __init__(self, inner: object) -> None:
        self.inner = inner

    def __lt__(self, other: "Rev") -> bool:
        return other.inner < self.inner

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Rev) and self.inner == other.inner


class SpillDir:
    """A private temp directory holding one operator's spill files.

    Use as a context manager: exiting the ``with`` block — normally or via
    an exception raised mid-spill — closes every file handle opened through
    :meth:`open` and removes the directory, so failed operators can never
    leak scratch directories or descriptors.
    """

    def __init__(self, prefix: str = "repro-spill-") -> None:
        self.path = tempfile.mkdtemp(prefix=prefix)
        self._handles: List[object] = []

    def __enter__(self) -> "SpillDir":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cleanup()

    def file(self, name: str) -> str:
        """Absolute path of a spill file inside the directory."""
        return os.path.join(self.path, name)

    def open(self, name: str, mode: str = "w"):
        """Open a spill file, tracking the handle for :meth:`cleanup`."""
        handle = open(self.file(name), mode, encoding="ascii")
        self._handles.append(handle)
        return handle

    def cleanup(self) -> None:
        """Close tracked handles and delete the directory (idempotent)."""
        for handle in self._handles:
            if not handle.closed:
                handle.close()
        self._handles.clear()
        shutil.rmtree(self.path, ignore_errors=True)


def write_run(path: str, indices: Iterable[int]) -> None:
    """Write a run of row indices, one per line, in iteration order."""
    with open(path, "w", encoding="ascii") as handle:
        for index in indices:
            handle.write(f"{index}\n")


def read_run(path: str) -> Iterator[int]:
    """Stream a run file's row indices back in file order."""
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            yield int(line)


class BucketFiles:
    """Per-bucket row-index files of one grace-hash-join side.

    Rows are appended in scan order, so reading a bucket back yields its
    indices ascending — exactly the insertion order the in-memory hash build
    would have used, which preserves the join's deterministic row order.
    """

    def __init__(self, spill: SpillDir, name: str, buckets: int) -> None:
        names = [f"{name}-{bucket}.idx" for bucket in range(buckets)]
        self.paths: List[str] = [spill.file(n) for n in names]
        # Opened through the spill dir so a mid-spill failure closes them.
        self._handles = [spill.open(n) for n in names]

    def write(self, bucket: int, index: int) -> None:
        """Append one row index to a bucket."""
        self._handles[bucket].write(f"{index}\n")

    def close(self) -> None:
        """Flush and close all bucket files (call before reading)."""
        for handle in self._handles:
            handle.close()

    def read(self, bucket: int) -> Iterator[int]:
        """Stream one bucket's row indices in append order."""
        return read_run(self.paths[bucket])
