"""Column-segment compression codecs (dictionary and run-length encoding).

A *segment* is the sealed, immutable storage of one column within one
partition.  Sealing a partition (:meth:`~repro.storage.partition.Partition.
compress`) encodes each column's value list into the cheapest segment
encoding and drops the plain list; scans decode **lazily** — the first
:meth:`Segment.values` call materializes the decoded list once and caches
it, so a compressed partition costs one decode per scan epoch, not one per
query, and the decoded list feeds straight into a
:class:`~repro.executor.batch.ColumnBatch` exactly like plain storage.

Three codecs:

* :class:`PlainSegment` — the values verbatim (fallback, zero decode cost);
* :class:`DictionarySegment` — distinct values in first-appearance order
  plus one small code per row (wins on low-cardinality columns);
* :class:`RLESegment` — ``(value, run_length)`` pairs (wins on sorted or
  clustered columns, e.g. a range-partitioned partition key).

:func:`encode_segment` picks the codec from the data (``codec="auto"``) or
honours an explicit choice.  Encoding is exact: ``segment.values()`` always
round-trips the input list element-for-element (including NULLs), which the
differential fuzzer relies on when it serves the whole query stream from a
compressed database.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = [
    "DictionarySegment",
    "PlainSegment",
    "RLESegment",
    "Segment",
    "encode_segment",
]


class Segment:
    """Base class: immutable encoded storage of one column's values."""

    codec = "plain"

    def __len__(self) -> int:
        raise NotImplementedError

    def values(self) -> List[object]:
        """Decoded value list (lazily materialized, then cached)."""
        raise NotImplementedError

    def encoded_cells(self) -> int:
        """Number of stored cells after encoding (compression accounting)."""
        raise NotImplementedError


class PlainSegment(Segment):
    """Uncompressed segment: the value list verbatim."""

    codec = "plain"
    __slots__ = ("_values",)

    def __init__(self, values: Sequence[object]) -> None:
        self._values = list(values)

    def __len__(self) -> int:
        return len(self._values)

    def values(self) -> List[object]:
        return self._values

    def encoded_cells(self) -> int:
        return len(self._values)


class DictionarySegment(Segment):
    """Dictionary encoding: distinct values + one code per row.

    The dictionary keeps first-appearance order so encoding is deterministic
    for a given input; NULL participates as an ordinary dictionary entry.
    """

    codec = "dictionary"
    __slots__ = ("_dictionary", "_codes", "_decoded")

    def __init__(self, values: Sequence[object]) -> None:
        dictionary: List[object] = []
        code_of = {}
        codes: List[int] = []
        for value in values:
            code = code_of.get(value)
            if code is None:
                code = code_of[value] = len(dictionary)
                dictionary.append(value)
            codes.append(code)
        self._dictionary = dictionary
        self._codes = codes
        self._decoded: Optional[List[object]] = None

    def __len__(self) -> int:
        return len(self._codes)

    @property
    def dictionary_size(self) -> int:
        """Number of distinct values in the dictionary."""
        return len(self._dictionary)

    def values(self) -> List[object]:
        if self._decoded is None:
            dictionary = self._dictionary
            self._decoded = [dictionary[code] for code in self._codes]
        return self._decoded

    def encoded_cells(self) -> int:
        # Codes are narrow integers, not full values; count them as packed
        # four to a cell so low-cardinality columns actually beat plain.
        return len(self._dictionary) + (len(self._codes) + 3) // 4


class RLESegment(Segment):
    """Run-length encoding: ``(value, run_length)`` pairs."""

    codec = "rle"
    __slots__ = ("_runs", "_length", "_decoded")

    def __init__(self, values: Sequence[object]) -> None:
        runs: List[Tuple[object, int]] = []
        for value in values:
            if runs and runs[-1][0] == value and _same_kind(runs[-1][0], value):
                runs[-1] = (value, runs[-1][1] + 1)
            else:
                runs.append((value, 1))
        self._runs = runs
        self._length = len(values)
        self._decoded: Optional[List[object]] = None

    def __len__(self) -> int:
        return self._length

    @property
    def run_count(self) -> int:
        """Number of stored runs."""
        return len(self._runs)

    def values(self) -> List[object]:
        if self._decoded is None:
            decoded: List[object] = []
            for value, count in self._runs:
                decoded.extend([value] * count)
            self._decoded = decoded
        return self._decoded

    def encoded_cells(self) -> int:
        return 2 * len(self._runs)


def _same_kind(a: object, b: object) -> bool:
    # 1 == 1.0 and True == 1 under ==; keep runs type-faithful so decoding
    # reproduces the exact input objects.
    return type(a) is type(b)


def encode_segment(values: Sequence[object], codec: str = "auto") -> Segment:
    """Encode a value list into a segment.

    ``codec`` is one of ``"plain"``, ``"dictionary"``, ``"rle"`` or
    ``"auto"``.  Auto picks the encoding with the fewest stored cells and
    falls back to plain unless a codec actually shrinks the data, so
    pathological inputs (all-distinct, alternating) never pay decode cost
    for nothing.
    """
    values = list(values)
    if codec == "plain":
        return PlainSegment(values)
    if codec == "dictionary":
        return DictionarySegment(values)
    if codec == "rle":
        return RLESegment(values)
    if codec != "auto":
        raise ValueError(f"unknown compression codec {codec!r}")
    if not values:
        return PlainSegment(values)
    candidates: List[Segment] = [RLESegment(values), DictionarySegment(values)]
    best = min(candidates, key=lambda segment: segment.encoded_cells())
    if best.encoded_cells() < len(values):
        return best
    return PlainSegment(values)
