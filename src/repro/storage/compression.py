"""Column-segment compression codecs (dictionary and run-length encoding).

A *segment* is the sealed, immutable storage of one column within one
partition.  Sealing a partition (:meth:`~repro.storage.partition.Partition.
compress`) encodes each column's value list into the cheapest segment
encoding and drops the plain list; scans decode **lazily** — the first
:meth:`Segment.values` call materializes the decoded list once and caches
it, so a compressed partition costs one decode per scan epoch, not one per
query, and the decoded list feeds straight into a
:class:`~repro.executor.batch.ColumnBatch` exactly like plain storage.

Three codecs:

* :class:`PlainSegment` — the values verbatim (fallback, zero decode cost);
* :class:`DictionarySegment` — distinct values in first-appearance order
  plus one small code per row (wins on low-cardinality columns);
* :class:`RLESegment` — ``(value, run_length)`` pairs (wins on sorted or
  clustered columns, e.g. a range-partitioned partition key).

:func:`encode_segment` picks the codec from the data (``codec="auto"``) or
honours an explicit choice.  Encoding is exact: ``segment.values()`` always
round-trips the input list element-for-element (including NULLs), which the
differential fuzzer relies on when it serves the whole query stream from a
compressed database.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = [
    "BLOCK_ROWS",
    "DictionarySegment",
    "PlainSegment",
    "RLESegment",
    "Segment",
    "encode_segment",
]

#: Rows per statistics block.  Segment-skipping refutes filters one block at
#: a time, so this is the granularity at which a scan can avoid decoding;
#: finer than the parallel engine's default morsel (4096) so even a single
#: mid-sized shard yields several skippable units.
BLOCK_ROWS = 1024

#: Per-block synopsis: ``(minimum, maximum, null_count)`` over the block's
#: rows, with ``minimum``/``maximum`` ``None`` when the block holds no
#: non-NULL value.  A block whose values are mutually incomparable (mixed
#: types) stores ``None`` instead of a tuple — "no statistics, never skip".
BlockStats = Optional[Tuple[Optional[object], Optional[object], int]]


def compute_block_stats(values: Sequence[object]) -> List[BlockStats]:
    """Min/max/null-count synopses of ``values`` in :data:`BLOCK_ROWS` blocks."""
    stats: List[BlockStats] = []
    for start in range(0, len(values), BLOCK_ROWS):
        block = values[start : start + BLOCK_ROWS]
        minimum: Optional[object] = None
        maximum: Optional[object] = None
        nulls = 0
        try:
            for value in block:
                if value is None:
                    nulls += 1
                    continue
                if minimum is None or value < minimum:
                    minimum = value
                if maximum is None or value > maximum:
                    maximum = value
        except TypeError:
            # Incomparable mix of types: record "no stats" for the block so
            # the skipping logic conservatively keeps it.
            stats.append(None)
            continue
        stats.append((minimum, maximum, nulls))
    return stats


class Segment:
    """Base class: immutable encoded storage of one column's values."""

    codec = "plain"

    def __len__(self) -> int:
        raise NotImplementedError

    def values(self) -> List[object]:
        """Decoded value list (lazily materialized, then cached)."""
        raise NotImplementedError

    def gather(self, indices: Sequence[int]) -> List[object]:
        """Decoded values at the given row positions (late materialization)."""
        values = self.values()
        return [values[i] for i in indices]

    def encoded_cells(self) -> int:
        """Number of stored cells after encoding (compression accounting)."""
        raise NotImplementedError

    def block_stats(self) -> List[BlockStats]:
        """Per-:data:`BLOCK_ROWS`-block min/max/null-count synopses.

        Sealed at encode time from the original values (no decode); segments
        constructed directly compute them lazily on first use and cache.
        """
        stats = self._block_stats
        if stats is None:
            stats = self._block_stats = compute_block_stats(self.values())
        return stats

    def seal_block_stats(self, stats: List[BlockStats]) -> None:
        """Attach precomputed block synopses (called by :func:`encode_segment`)."""
        self._block_stats = stats


class PlainSegment(Segment):
    """Uncompressed segment: the value list verbatim."""

    codec = "plain"
    __slots__ = ("_values", "_block_stats")

    def __init__(self, values: Sequence[object]) -> None:
        self._values = list(values)
        self._block_stats: Optional[List[BlockStats]] = None

    def __len__(self) -> int:
        return len(self._values)

    def values(self) -> List[object]:
        return self._values

    def encoded_cells(self) -> int:
        return len(self._values)


class DictionarySegment(Segment):
    """Dictionary encoding: distinct values + one code per row.

    The dictionary keeps first-appearance order so encoding is deterministic
    for a given input; NULL participates as an ordinary dictionary entry.
    """

    codec = "dictionary"
    __slots__ = ("_dictionary", "_codes", "_decoded", "_block_stats")

    def __init__(self, values: Sequence[object]) -> None:
        dictionary: List[object] = []
        code_of = {}
        codes: List[int] = []
        for value in values:
            code = code_of.get(value)
            if code is None:
                code = code_of[value] = len(dictionary)
                dictionary.append(value)
            codes.append(code)
        self._dictionary = dictionary
        self._codes = codes
        self._decoded: Optional[List[object]] = None
        self._block_stats: Optional[List[BlockStats]] = None

    def __len__(self) -> int:
        return len(self._codes)

    @property
    def dictionary_size(self) -> int:
        """Number of distinct values in the dictionary."""
        return len(self._dictionary)

    @property
    def dictionary(self) -> List[object]:
        """Distinct values in first-appearance order (read-only)."""
        return self._dictionary

    @property
    def codes(self) -> List[int]:
        """Per-row dictionary codes (read-only)."""
        return self._codes

    def values(self) -> List[object]:
        if self._decoded is None:
            dictionary = self._dictionary
            self._decoded = [dictionary[code] for code in self._codes]
        return self._decoded

    def gather(self, indices: Sequence[int]) -> List[object]:
        # Decode only the requested rows straight off the codes; a full
        # decode (and its cache) is never forced by a selective gather.
        decoded = self._decoded
        if decoded is not None:
            return [decoded[i] for i in indices]
        dictionary = self._dictionary
        codes = self._codes
        return [dictionary[codes[i]] for i in indices]

    def encoded_cells(self) -> int:
        # Codes are narrow integers, not full values; count them as packed
        # four to a cell so low-cardinality columns actually beat plain.
        return len(self._dictionary) + (len(self._codes) + 3) // 4


class RLESegment(Segment):
    """Run-length encoding: ``(value, run_length)`` pairs."""

    codec = "rle"
    __slots__ = ("_runs", "_length", "_decoded", "_block_stats")

    def __init__(self, values: Sequence[object]) -> None:
        runs: List[Tuple[object, int]] = []
        for value in values:
            if runs and runs[-1][0] == value and _same_kind(runs[-1][0], value):
                runs[-1] = (value, runs[-1][1] + 1)
            else:
                runs.append((value, 1))
        self._runs = runs
        self._length = len(values)
        self._decoded: Optional[List[object]] = None
        self._block_stats: Optional[List[BlockStats]] = None

    def __len__(self) -> int:
        return self._length

    @property
    def run_count(self) -> int:
        """Number of stored runs."""
        return len(self._runs)

    @property
    def runs(self) -> List[Tuple[object, int]]:
        """``(value, run_length)`` pairs in row order (read-only)."""
        return self._runs

    def values(self) -> List[object]:
        if self._decoded is None:
            decoded: List[object] = []
            for value, count in self._runs:
                decoded.extend([value] * count)
            self._decoded = decoded
        return self._decoded

    def encoded_cells(self) -> int:
        return 2 * len(self._runs)


def _same_kind(a: object, b: object) -> bool:
    # 1 == 1.0 and True == 1 under ==; keep runs type-faithful so decoding
    # reproduces the exact input objects.
    return type(a) is type(b)


def encode_segment(values: Sequence[object], codec: str = "auto") -> Segment:
    """Encode a value list into a segment.

    ``codec`` is one of ``"plain"``, ``"dictionary"``, ``"rle"`` or
    ``"auto"``.  Auto picks the encoding with the fewest stored cells and
    falls back to plain unless a codec actually shrinks the data, so
    pathological inputs (all-distinct, alternating) never pay decode cost
    for nothing.
    """
    values = list(values)
    segment: Segment
    if codec == "plain":
        segment = PlainSegment(values)
    elif codec == "dictionary":
        segment = DictionarySegment(values)
    elif codec == "rle":
        segment = RLESegment(values)
    elif codec != "auto":
        raise ValueError(f"unknown compression codec {codec!r}")
    elif not values:
        segment = PlainSegment(values)
    else:
        candidates: List[Segment] = [
            RLESegment(values),
            DictionarySegment(values),
        ]
        best = min(candidates, key=lambda candidate: candidate.encoded_cells())
        segment = best if best.encoded_cells() < len(values) else PlainSegment(values)
    # Sealed at encode time from the still-plain input: segment-skipping
    # never has to decode a column just to learn its block min/max.
    segment.seal_block_stats(compute_block_stats(values))
    return segment
