"""Copy-on-write snapshot views over tables (the storage half of MVCC).

The serving layer (:mod:`repro.server`) pins a snapshot of every base table
at statement start so readers never block — and are never torn by — a
concurrent ANALYZE, bulk load or DDL running on the shared
:class:`~repro.engine.database.Database`.  A snapshot captures two things
under the catalog lock:

* the **row count** at pin time, and
* references to the backing column lists.

Nothing is copied up front.  Because the storage layer only ever *appends*
(the sole truncation path is the bulk-load rollback, which restores a
pre-load length that is necessarily >= any pinned count), the first
``row_count`` elements of every captured list are immutable.  The snapshot
therefore materializes exact pinned-length lists lazily — one slice per
column on the first read — and serves them from then on.  The slice is
mandatory, not an optimization detail: scan consumers such as the
partitioned gather extend the returned lists without a length bound, so
handing out a still-growing shared list would leak rows appended after the
pin into a reader's result.

Snapshots are read-only: every mutator raises
:class:`~repro.errors.StorageError`.  Statement-local writable state (the
re-optimizer's temporary tables) is created as fresh ordinary tables on the
session's catalog snapshot instead.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.partition import (
    ColumnZone,
    Partition,
    PartitionedTable,
    ZoneMap,
)
from repro.storage.table import Table

__all__ = [
    "PartitionSnapshot",
    "PartitionedTableSnapshot",
    "TableSnapshot",
    "take_snapshot",
]


def _read_only(name: str) -> StorageError:
    return StorageError(
        f"table {name!r} is a pinned snapshot and cannot be written; "
        "mutations go through the shared database"
    )


def _pin_columns(
    source: List[List[object]], row_count: int
) -> List[List[object]]:
    """Exact pinned-length copies of the captured backing lists.

    ``list[:n]`` is atomic under the GIL and the captured lists never shrink
    below ``row_count``, so this is safe against a concurrently appending
    writer without taking any lock.
    """
    return [values[:row_count] for values in source]


def _copy_zone_map(zone_map: ZoneMap, row_count: int) -> ZoneMap:
    """A private zone-map copy, detached from the writer's in-place updates."""
    return ZoneMap(
        row_count=row_count,
        columns={
            name: ColumnZone(zone.minimum, zone.maximum, zone.null_count)
            for name, zone in zone_map.columns.items()
        },
    )


class TableSnapshot:
    """Read-only view of a :class:`~repro.storage.table.Table` at pin time.

    Duck-type compatible with the ``Table`` read surface the binder,
    statistics and all three execution engines use.
    """

    def __init__(self, base: Table) -> None:
        self.schema = base.schema
        # Pin the count before touching the columns: Table appends extend
        # the columns first and bump the count last, so a count captured
        # here can never cover a torn row.
        self._row_count = base.row_count
        self._source = base.column_data()
        self._pinned: Optional[List[List[object]]] = None

    @property
    def name(self) -> str:
        """Table name (from the schema)."""
        return self.schema.name

    @property
    def row_count(self) -> int:
        """Number of rows visible to this snapshot."""
        return self._row_count

    def __len__(self) -> int:
        return self._row_count

    def column_data(self) -> List[List[object]]:
        """Pinned-length value lists of all columns, in schema order.

        Materialized lazily on first read (outside the catalog lock) and
        cached; concurrent first readers may both build the copy, which is
        benign because the results are identical.
        """
        pinned = self._pinned
        if pinned is None:
            pinned = self._pinned = _pin_columns(self._source, self._row_count)
        return pinned

    def column_values(self, name: str) -> List[object]:
        """A fresh copy of one column's pinned values (safe to mutate)."""
        return list(self.column_data()[self.schema.column_index(name)])

    def row(self, row_id: int) -> Tuple[object, ...]:
        """Return the packed tuple of values for ``row_id``."""
        if not 0 <= row_id < self._row_count:
            raise StorageError(
                f"row id {row_id} out of range for table {self.name!r}"
            )
        return tuple(column[row_id] for column in self.column_data())

    def value(self, row_id: int, column: str) -> object:
        """Return a single cell value."""
        return self.row(row_id)[self.schema.column_index(column)]

    def iter_rows(self) -> Iterator[Tuple[object, ...]]:
        """Iterate over the pinned rows as packed tuples."""
        data = self.column_data()
        for row_id in range(self._row_count):
            yield tuple(column[row_id] for column in data)

    def iter_row_ids(self) -> Iterator[int]:
        """Iterate over the pinned row ids in storage order."""
        return iter(range(self._row_count))

    def estimated_pages(self, rows_per_page: int = 100) -> int:
        """Crude page-count estimate used by the cost model."""
        if self._row_count == 0:
            return 1
        return (self._row_count + rows_per_page - 1) // rows_per_page

    # -- mutators (rejected) -------------------------------------------------

    def insert_row(self, values) -> int:
        raise _read_only(self.name)

    def insert_rows(self, rows) -> int:
        raise _read_only(self.name)

    def insert_dicts(self, rows) -> int:
        raise _read_only(self.name)

    def load_columns(self, columns) -> int:
        raise _read_only(self.name)


class PartitionSnapshot(Partition):
    """Read-only view of one shard at pin time.

    Subclasses :class:`Partition` so the shard-level scan paths (pruned
    gathers, the reference engine's per-partition iteration) work unchanged;
    ``column_data`` always returns exact pinned-length lists because the
    gather extends them without a length bound.
    """

    def __init__(self, base: Partition) -> None:
        self.schema = base.schema
        self.index = base.index
        self._row_count = base.row_count
        self._source = base.column_data()
        self._pinned: Optional[List[List[object]]] = None
        # Inherited read surface expects these; a snapshot is never sealed.
        self._plain = [None] * len(base.schema.columns)
        self._segments = [None] * len(base.schema.columns)
        # Writers update zones in place on every append, so pin a copy.
        self.zone_map = _copy_zone_map(base.zone_map, self._row_count)

    def column_data(self) -> List[List[object]]:
        """Pinned-length value lists of the shard (lazily materialized)."""
        pinned = self._pinned
        if pinned is None:
            pinned = self._pinned = _pin_columns(self._source, self._row_count)
        return pinned

    # -- mutators (rejected) -------------------------------------------------

    def append_row(self, values) -> None:
        raise _read_only(self.schema.name)

    def truncate(self, length: int) -> None:
        raise _read_only(self.schema.name)

    def compress(self, codec: str = "auto") -> None:
        raise _read_only(self.schema.name)

    def refresh_zone_map(self) -> ZoneMap:
        raise _read_only(self.schema.name)


class PartitionedTableSnapshot(PartitionedTable):
    """Read-only view of a :class:`PartitionedTable` at pin time.

    Subclasses the real table because the executor dispatches partition
    pruning on ``isinstance(storage, PartitionedTable)``; every inherited
    read path (gathered ``column_data``, ``row``, zone maps, routing) works
    on the pinned shard snapshots.
    """

    def __init__(self, base: PartitionedTable) -> None:
        # Deliberately not calling super().__init__: it would allocate empty
        # shards. The snapshot wraps pinned views of the existing ones.
        self.schema = base.schema
        self.spec = base.spec
        self._key_position = base._key_position
        self._partitions = [
            PartitionSnapshot(partition) for partition in base.partitions()
        ]
        self._row_count = sum(p.row_count for p in self._partitions)
        self._offsets = None
        self._gathered = None
        self._gathered_cols = {}

    # -- mutators (rejected) -------------------------------------------------

    def insert_row(self, values) -> int:
        raise _read_only(self.name)

    def load_columns(self, columns) -> int:
        raise _read_only(self.name)

    def compress(self, codec: str = "auto") -> None:
        raise _read_only(self.name)

    def refresh_zone_maps(self) -> None:
        raise _read_only(self.name)


def take_snapshot(table):
    """Pin a read-only snapshot of any storage object.

    Must be called with the owning catalog's lock held so the captured
    row counts, column lists and zone maps are mutually consistent.
    """
    if isinstance(table, PartitionedTable):
        return PartitionedTableSnapshot(table)
    return TableSnapshot(table)
