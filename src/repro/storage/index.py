"""Secondary indexes.

Two index flavours are provided:

* :class:`HashIndex` — equality lookups, used by index-nested-loop joins and
  equality predicates.  This models PostgreSQL's btree-for-equality usage
  without the ordering machinery.
* :class:`SortedIndex` — a sorted ``(key, row_id)`` list supporting range
  lookups, used for range predicates on indexed columns.

Both are built eagerly from a :class:`~repro.storage.table.Table` and are
read-only afterwards; the workloads in this repository load data once and
then query it, matching the paper's analytic setting.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.table import Table


class Index:
    """Common interface for secondary indexes."""

    kind = "index"

    def __init__(self, table: Table, column: str) -> None:
        if not table.schema.has_column(column):
            raise StorageError(
                f"cannot index unknown column {column!r} of table {table.name!r}"
            )
        self.table = table
        self.column = column
        self.name = f"{table.name}_{column}_{self.kind}"

    def lookup(self, key: object) -> List[int]:
        """Return row ids whose indexed column equals ``key``."""
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError


class HashIndex(Index):
    """Equality index: maps key value to the list of row ids holding it."""

    kind = "hash"

    def __init__(self, table: Table, column: str) -> None:
        super().__init__(table, column)
        self._buckets: Dict[object, List[int]] = {}
        values = table.column_values(column)
        for row_id, value in enumerate(values):
            if value is None:
                continue
            self._buckets.setdefault(value, []).append(row_id)

    def lookup(self, key: object) -> List[int]:
        """Row ids with ``column == key`` (NULL never matches)."""
        if key is None:
            return []
        return self._buckets.get(key, [])

    def distinct_keys(self) -> int:
        """Number of distinct keys in the index."""
        return len(self._buckets)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._buckets.values())


class SortedIndex(Index):
    """Ordered index supporting equality and range lookups."""

    kind = "sorted"

    def __init__(self, table: Table, column: str) -> None:
        super().__init__(table, column)
        pairs: List[Tuple[object, int]] = [
            (value, row_id)
            for row_id, value in enumerate(table.column_values(column))
            if value is not None
        ]
        pairs.sort(key=lambda pair: pair[0])
        self._keys: List[object] = [key for key, _ in pairs]
        self._row_ids: List[int] = [row_id for _, row_id in pairs]

    def lookup(self, key: object) -> List[int]:
        """Row ids with ``column == key``."""
        if key is None:
            return []
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return self._row_ids[lo:hi]

    def range_lookup(
        self,
        low: Optional[object] = None,
        high: Optional[object] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> List[int]:
        """Row ids whose key falls in the requested (possibly open) range."""
        lo = 0
        hi = len(self._keys)
        if low is not None:
            lo = (
                bisect.bisect_left(self._keys, low)
                if include_low
                else bisect.bisect_right(self._keys, low)
            )
        if high is not None:
            hi = (
                bisect.bisect_right(self._keys, high)
                if include_high
                else bisect.bisect_left(self._keys, high)
            )
        if hi < lo:
            return []
        return self._row_ids[lo:hi]

    def __len__(self) -> int:
        return len(self._keys)


def build_foreign_key_indexes(table: Table) -> List[Index]:
    """Build hash indexes for the primary key and every foreign-key column.

    This mirrors the paper's setup, which adds foreign-key indexes to make
    access-path selection harder (nested-loop-with-index plans become
    attractive when cardinalities are underestimated).
    """
    indexes: List[Index] = []
    schema = table.schema
    indexed = set()
    if schema.primary_key is not None:
        indexes.append(HashIndex(table, schema.primary_key))
        indexed.add(schema.primary_key)
    for fk in schema.foreign_keys:
        if fk.column not in indexed:
            indexes.append(HashIndex(table, fk.column))
            indexed.add(fk.column)
    return indexes
