"""Columnar storage for a single column.

A :class:`Column` is a thin wrapper around a Python list holding one value
per row.  It knows its :class:`~repro.catalog.schema.ColumnType` and performs
coercion on append, so that everything downstream (statistics, predicate
evaluation, hash joins) can rely on values being either ``None`` or the
declared Python type.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.catalog.schema import ColumnDef
from repro.errors import StorageError


class Column:
    """In-memory storage for one column of a table."""

    def __init__(self, definition: ColumnDef) -> None:
        self.definition = definition
        self._values: List[object] = []

    @property
    def name(self) -> str:
        """Column name."""
        return self.definition.name

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[object]:
        return iter(self._values)

    def __getitem__(self, row_id: int) -> object:
        return self._values[row_id]

    def append(self, value: object) -> None:
        """Append a value, coercing it to the declared type.

        Raises:
            StorageError: if a NULL is appended to a non-nullable column.
        """
        if value is None and not self.definition.nullable:
            raise StorageError(
                f"column {self.name!r} is not nullable but received NULL"
            )
        self._values.append(self.definition.col_type.coerce(value))

    def extend(self, values: Iterable[object]) -> None:
        """Append many values."""
        for value in values:
            self.append(value)

    def truncate(self, length: int) -> None:
        """Discard values beyond ``length`` (bulk-load rollback support)."""
        del self._values[length:]

    def values(self) -> List[object]:
        """Return the underlying value list (not a copy; treat as read-only).

        This is the zero-copy handle the vectorized executor wraps into a
        :class:`~repro.executor.batch.ColumnBatch` — scans never copy column
        payloads.
        """
        return self._values

    def non_null_values(self) -> List[object]:
        """Return all non-NULL values (a new list)."""
        return [v for v in self._values if v is not None]

    def null_count(self) -> int:
        """Number of NULL values stored."""
        return sum(1 for v in self._values if v is None)

    def distinct_count(self) -> int:
        """Number of distinct non-NULL values."""
        return len(set(self.non_null_values()))

    def min_max(self) -> Optional[tuple]:
        """Return ``(min, max)`` over non-NULL values, or ``None`` if empty."""
        values = self.non_null_values()
        if not values:
            return None
        return min(values), max(values)
