"""Storage subsystem: columnar tables and secondary indexes."""

from repro.storage.column import Column
from repro.storage.index import HashIndex, Index, SortedIndex, build_foreign_key_indexes
from repro.storage.intermediate import IntermediateTable
from repro.storage.table import Table

__all__ = [
    "Column",
    "HashIndex",
    "Index",
    "IntermediateTable",
    "SortedIndex",
    "Table",
    "build_foreign_key_indexes",
]
