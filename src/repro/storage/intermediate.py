"""In-memory pseudo-tables backing adaptive re-optimization handovers.

When the adaptive executor re-plans the remainder of a query it must hand the
already-computed intermediate result to the new plan *without* re-scanning —
the whole point of operator-level (Kabra & DeWitt-style) re-optimization.

:class:`IntermediateTable` wraps the intermediate's column value lists
directly (no per-value copy, no type coercion pass, no DDL) while exposing
the read surface both execution engines use on a
:class:`~repro.storage.table.Table`:

* the vectorized engine wraps :meth:`column_data` straight into a scan batch;
* the reference oracle iterates :meth:`iter_rows` / fetches :meth:`row`;
* the cost model asks for :meth:`estimated_pages` and ``row_count``.

Instances are registered in the catalog via
:meth:`~repro.catalog.catalog.Catalog.register_transient`, which does not
bump the plan-cache epoch: the pseudo-table is invisible to every other
statement and is dropped before the adaptive query returns.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.errors import StorageError


class IntermediateTable:
    """A read-only, columnar pseudo-table over in-memory result columns."""

    def __init__(
        self, schema: TableSchema, columns: Sequence[List[object]]
    ) -> None:
        if len(columns) != len(schema.columns):
            raise StorageError(
                f"intermediate table {schema.name!r} expects "
                f"{len(schema.columns)} columns, got {len(columns)}"
            )
        lengths = {len(values) for values in columns}
        if len(lengths) > 1:
            raise StorageError(
                f"intermediate table {schema.name!r} got ragged columns "
                f"of lengths {sorted(lengths)}"
            )
        self.schema = schema
        self._columns: List[List[object]] = list(columns)
        self._row_count = lengths.pop() if lengths else 0

    @property
    def name(self) -> str:
        """Table name (from the schema)."""
        return self.schema.name

    @property
    def row_count(self) -> int:
        """Number of rows in the intermediate."""
        return self._row_count

    def __len__(self) -> int:
        return self._row_count

    def column_values(self, name: str) -> List[object]:
        """Raw value list of column ``name`` (callers must not mutate it)."""
        try:
            position = self.schema.column_names.index(name)
        except ValueError:
            raise StorageError(
                f"intermediate table {self.name!r} has no column {name!r}"
            ) from None
        return self._columns[position]

    def column_data(self) -> List[List[object]]:
        """Backing value lists of all columns, in schema order (zero-copy)."""
        return list(self._columns)

    def row(self, row_id: int) -> Tuple[object, ...]:
        """Packed tuple of values for ``row_id``."""
        if not 0 <= row_id < self._row_count:
            raise StorageError(
                f"row id {row_id} out of range for intermediate {self.name!r}"
            )
        return tuple(column[row_id] for column in self._columns)

    def iter_rows(self) -> Iterator[Tuple[object, ...]]:
        """Iterate over all rows as packed tuples (sequential scan order)."""
        for row_id in range(self._row_count):
            yield tuple(column[row_id] for column in self._columns)

    def iter_row_ids(self) -> Iterator[int]:
        """Iterate over all row ids in storage order."""
        return iter(range(self._row_count))

    def estimated_pages(self, rows_per_page: int = 100) -> int:
        """Page-count estimate matching :meth:`Table.estimated_pages`."""
        if self._row_count == 0:
            return 1
        return (self._row_count + rows_per_page - 1) // rows_per_page
