"""In-memory columnar tables.

A :class:`Table` stores rows column-wise.  The executor works with row ids
(positions) and asks the table for individual column values or packed row
tuples.  The storage model intentionally mirrors what the cost model
assumes: a sequential scan touches every row, an index lookup touches only
matching rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.errors import ReproError, StorageError
from repro.storage.column import Column


class Table:
    """Columnar storage for one table."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._columns: Dict[str, Column] = {
            col.name: Column(col) for col in schema.columns
        }
        self._row_count = 0

    @property
    def name(self) -> str:
        """Table name (from the schema)."""
        return self.schema.name

    @property
    def row_count(self) -> int:
        """Number of rows currently stored."""
        return self._row_count

    def __len__(self) -> int:
        return self._row_count

    def column(self, name: str) -> Column:
        """Return the :class:`Column` named ``name``.

        Raises:
            StorageError: if the column does not exist.
        """
        try:
            return self._columns[name]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def column_values(self, name: str) -> List[object]:
        """Return a copy of column ``name``'s values.

        A copy, not the backing list: handing out live storage lets caller
        mutations silently corrupt the table (and any statistics or indexes
        built over it).  Engines needing zero-copy reads use
        :meth:`column_data` and treat the lists as read-only.
        """
        return list(self.column(name).values())

    def insert_row(self, values: Sequence[object]) -> int:
        """Insert one row given positionally ordered values.

        Returns:
            The row id of the inserted row.

        Raises:
            StorageError: if the value count does not match the schema.
        """
        if len(values) != len(self.schema.columns):
            raise StorageError(
                f"table {self.name!r} expects {len(self.schema.columns)} values, "
                f"got {len(values)}"
            )
        for col_def, value in zip(self.schema.columns, values):
            self._columns[col_def.name].append(value)
        self._row_count += 1
        return self._row_count - 1

    def column_data(self) -> List[List[object]]:
        """Backing value lists of all columns, in schema order (zero-copy).

        The vectorized executor wraps these directly into a scan batch;
        callers must treat the lists as read-only.
        """
        return [self._columns[name].values() for name in self.schema.column_names]

    def load_columns(self, columns: Sequence[Sequence[object]]) -> int:
        """Append rows given column-wise (one value sequence per schema column).

        This is the bulk-load path used when materializing a columnar result
        into a table (temporary tables during re-optimization): values are
        appended column by column, skipping per-row tuple packing.

        Returns:
            The number of rows appended.

        Raises:
            StorageError: if the column count or lengths are inconsistent.
        """
        if len(columns) != len(self.schema.columns):
            raise StorageError(
                f"table {self.name!r} expects {len(self.schema.columns)} columns, "
                f"got {len(columns)}"
            )
        lengths = {len(values) for values in columns}
        if len(lengths) > 1:
            raise StorageError(
                f"column-wise load into {self.name!r} got ragged columns "
                f"of lengths {sorted(lengths)}"
            )
        count = lengths.pop() if lengths else 0
        loaded = []
        try:
            for col_def, values in zip(self.schema.columns, columns):
                column = self._columns[col_def.name]
                loaded.append(column)
                column.extend(values)
        except ReproError:
            # Roll back so a mid-load failure (StorageError for NULL into a
            # non-nullable column, CatalogError for a failed type coercion)
            # cannot leave ragged columns behind.
            for column in loaded:
                column.truncate(self._row_count)
            raise
        self._row_count += count
        return count

    def insert_rows(self, rows: Iterable[Sequence[object]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert_row(row)
            count += 1
        return count

    def row_values_from_dict(self, row: Dict[str, object]) -> List[object]:
        """Order a ``{column: value}`` dict into schema order (missing → NULL).

        Raises:
            StorageError: if the dict names columns the schema lacks.
        """
        names = self.schema.column_names
        unknown = set(row) - set(names)
        if unknown:
            raise StorageError(
                f"unknown columns {sorted(unknown)} for table {self.name!r}"
            )
        return [row.get(name) for name in names]

    def insert_dicts(self, rows: Iterable[Dict[str, object]]) -> int:
        """Insert rows given as ``{column: value}`` dictionaries.

        Missing columns are stored as NULL.
        """
        count = 0
        for row in rows:
            self.insert_row(self.row_values_from_dict(row))
            count += 1
        return count

    def row(self, row_id: int) -> Tuple[object, ...]:
        """Return the packed tuple of values for ``row_id``."""
        if not 0 <= row_id < self._row_count:
            raise StorageError(
                f"row id {row_id} out of range for table {self.name!r}"
            )
        return tuple(self._columns[c].values()[row_id] for c in self.schema.column_names)

    def value(self, row_id: int, column: str) -> object:
        """Return a single cell value."""
        return self.column(column)[row_id]

    def iter_rows(self) -> Iterator[Tuple[object, ...]]:
        """Iterate over all rows as packed tuples (sequential scan order)."""
        columns = [self._columns[c].values() for c in self.schema.column_names]
        for row_id in range(self._row_count):
            yield tuple(col[row_id] for col in columns)

    def iter_row_ids(self) -> Iterator[int]:
        """Iterate over all row ids in storage order."""
        return iter(range(self._row_count))

    def estimated_pages(self, rows_per_page: int = 100) -> int:
        """Crude page-count estimate used by the cost model."""
        if self._row_count == 0:
            return 1
        return (self._row_count + rows_per_page - 1) // rows_per_page
