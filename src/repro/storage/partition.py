"""Partitioned columnar tables: hash/range shards, zone maps, compression.

A :class:`PartitionedTable` stores a table whose schema carries a
:class:`~repro.catalog.schema.PartitionSpec` as a list of
:class:`Partition` shards.  Each shard is itself columnar (one value list —
or one sealed compressed :class:`~repro.storage.compression.Segment` — per
column) and maintains a :class:`ZoneMap` (per-column min/max/null-count
plus the shard row count) incrementally on every append; ANALYZE refreshes
the maps from scratch.

The class exposes the full read surface of
:class:`~repro.storage.table.Table` — ``column_data``, ``column_values``,
``row``, ``iter_rows``, ``estimated_pages`` — so the catalog, statistics,
indexes and all three execution engines work unchanged.  **Global row ids
are partition-gather order**: partition 0's rows first, then partition 1's,
and so on.  Every gathering accessor uses that same order, so hash indexes
built from :meth:`column_values` resolve through :meth:`row` consistently,
and a scan that concatenates unpruned partitions in partition order is
deterministic for every engine.

Routing is deterministic across processes: :func:`stable_hash` avoids
Python's per-process string-hash randomization, and NULL partition keys
always route to partition 0.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import PartitionSpec, TableSchema
from repro.errors import ReproError, StorageError
from repro.storage.compression import Segment, encode_segment

__all__ = [
    "ColumnZone",
    "Partition",
    "PartitionedTable",
    "ZoneMap",
    "stable_hash",
]


def stable_hash(value: object) -> int:
    """A deterministic, process-stable hash for partition routing.

    Python's built-in ``hash`` of strings is randomized per process, which
    would make partition contents (and thus row order) irreproducible.
    Integers map through a simple mask; everything else (strings, floats,
    composite keys) hashes the CRC32 of its ``repr``.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return value & 0xFFFFFFFF
    return zlib.crc32(repr(value).encode("utf-8"))


@dataclass
class ColumnZone:
    """Zone-map entry for one column of one partition.

    ``minimum``/``maximum`` cover the non-NULL values only and are ``None``
    when the partition holds no non-NULL value for the column.
    """

    minimum: Optional[object] = None
    maximum: Optional[object] = None
    null_count: int = 0

    def note(self, value: object) -> None:
        """Fold one appended value into the zone."""
        if value is None:
            self.null_count += 1
            return
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value


@dataclass
class ZoneMap:
    """Per-partition synopsis: row count plus one :class:`ColumnZone` each.

    Maintained incrementally on load and recomputed on ANALYZE; the planner
    prunes partitions whose zones contradict pushed-down filters, and the
    selectivity estimator uses the surviving row counts as a hard upper
    bound on scan cardinality.
    """

    row_count: int = 0
    columns: Dict[str, ColumnZone] = field(default_factory=dict)

    def zone(self, column: str) -> ColumnZone:
        """The zone of ``column`` (empty zones for untracked columns)."""
        existing = self.columns.get(column)
        if existing is None:
            existing = self.columns[column] = ColumnZone()
        return existing

    def non_null_count(self, column: str) -> int:
        """Rows of the partition whose ``column`` value is non-NULL."""
        return self.row_count - self.zone(column).null_count


class Partition:
    """One columnar shard of a partitioned table.

    Columns live either as plain value lists (the open, appendable state)
    or as sealed compressed segments after :meth:`compress`.  Appending to
    a sealed column transparently decodes it back to plain storage first.
    """

    def __init__(self, schema: TableSchema, index: int) -> None:
        self.schema = schema
        self.index = index
        self._plain: List[Optional[List[object]]] = [[] for _ in schema.columns]
        self._segments: List[Optional[Segment]] = [None] * len(schema.columns)
        self._row_count = 0
        self.zone_map = ZoneMap(row_count=0)
        for col in schema.columns:
            self.zone_map.columns[col.name] = ColumnZone()

    @property
    def row_count(self) -> int:
        """Number of rows stored in this shard."""
        return self._row_count

    def __len__(self) -> int:
        return self._row_count

    @property
    def compressed(self) -> bool:
        """Whether any column of the shard is currently segment-encoded."""
        return any(segment is not None for segment in self._segments)

    def codecs(self) -> Tuple[str, ...]:
        """Per-column codec names (``"plain"`` for open columns)."""
        return tuple(
            segment.codec if segment is not None else "plain"
            for segment in self._segments
        )

    def _writable(self, position: int) -> List[object]:
        values = self._plain[position]
        if values is None:
            # Decompress-on-write: appends after sealing reopen the column.
            segment = self._segments[position]
            values = self._plain[position] = list(segment.values())
            self._segments[position] = None
        return values

    def append_row(self, values: Sequence[object]) -> None:
        """Append one coerced row (values already validated by the table)."""
        for position, value in enumerate(values):
            self._writable(position).append(value)
            self.zone_map.columns[self.schema.columns[position].name].note(value)
        self._row_count += 1
        self.zone_map.row_count = self._row_count

    def truncate(self, length: int) -> None:
        """Roll the shard back to ``length`` rows (bulk-load rollback)."""
        for position in range(len(self.schema.columns)):
            del self._writable(position)[length:]
        self._row_count = length
        self.refresh_zone_map()

    def column_data(self) -> List[List[object]]:
        """Decoded value lists of all columns, in schema order.

        Sealed columns decode lazily (cached inside the segment); open
        columns hand out their backing list.  Treat as read-only.
        """
        out: List[List[object]] = []
        for position in range(len(self.schema.columns)):
            segment = self._segments[position]
            if segment is not None:
                out.append(segment.values())
            else:
                out.append(self._plain[position])
        return out

    def segment_at(self, position: int) -> Optional[Segment]:
        """The sealed segment of one column, or ``None`` while it is open."""
        return self._segments[position]

    def column_at(self, position: int) -> List[object]:
        """Decoded values of one column by schema position (read-only view).

        Touches only the requested column: a sealed column decodes through
        its (cached) segment, an open column hands out its backing list.
        Snapshot subclasses that store neither fall back to the full
        ``column_data`` pin.
        """
        segment = self._segments[position]
        if segment is not None:
            return segment.values()
        values = self._plain[position]
        if values is not None:
            return values
        return self.column_data()[position]

    def column_values(self, name: str) -> List[object]:
        """Decoded values of one column (read-only view)."""
        return self.column_at(self.schema.column_index(name))

    def iter_rows(self) -> Iterator[Tuple[object, ...]]:
        """Iterate the shard's rows as packed tuples, in storage order."""
        data = self.column_data()
        for row_id in range(self._row_count):
            yield tuple(column[row_id] for column in data)

    def compress(self, codec: str = "auto") -> None:
        """Seal every column into a compressed segment."""
        for position in range(len(self.schema.columns)):
            if self._segments[position] is None:
                self._segments[position] = encode_segment(
                    self._plain[position], codec=codec
                )
                self._plain[position] = None

    def refresh_zone_map(self) -> ZoneMap:
        """Recompute the zone map exactly from the stored values (ANALYZE)."""
        zone_map = ZoneMap(row_count=self._row_count)
        for col, values in zip(self.schema.columns, self.column_data()):
            zone = ColumnZone()
            for value in values:
                zone.note(value)
            zone_map.columns[col.name] = zone
        self.zone_map = zone_map
        return zone_map


class PartitionedTable:
    """Columnar storage split into hash- or range-partitioned shards.

    Duck-type compatible with :class:`~repro.storage.table.Table` for every
    read path the engine uses; see the module docstring for the global
    row-id convention.
    """

    def __init__(self, schema: TableSchema) -> None:
        if schema.partition_spec is None:
            raise StorageError(
                f"table {schema.name!r} has no partition spec; use Table instead"
            )
        self.schema = schema
        self.spec: PartitionSpec = schema.partition_spec
        self._partitions = [
            Partition(schema, i) for i in range(self.spec.num_partitions)
        ]
        self._key_position = schema.column_index(self.spec.column)
        self._row_count = 0
        self._offsets: Optional[List[int]] = None
        self._gathered: Optional[List[List[object]]] = None
        self._gathered_cols: Dict[int, List[object]] = {}

    # -- basic surface -------------------------------------------------------

    @property
    def name(self) -> str:
        """Table name (from the schema)."""
        return self.schema.name

    @property
    def row_count(self) -> int:
        """Number of rows across all partitions."""
        return self._row_count

    def __len__(self) -> int:
        return self._row_count

    def partitions(self) -> List[Partition]:
        """All shards, in partition order (read-only)."""
        return self._partitions

    @property
    def num_partitions(self) -> int:
        """Number of shards."""
        return len(self._partitions)

    def zone_map(self, index: int) -> ZoneMap:
        """The zone map of partition ``index``."""
        return self._partitions[index].zone_map

    def scanned_rows(self, pruned: Sequence[int] = ()) -> int:
        """Rows a scan skipping the ``pruned`` partitions reads from storage."""
        skip = set(pruned)
        return sum(
            partition.row_count
            for i, partition in enumerate(self._partitions)
            if i not in skip
        )

    # -- routing -------------------------------------------------------------

    def route(self, key: object) -> int:
        """Partition index a (coerced) partition-key value belongs to."""
        if key is None:
            return 0
        if self.spec.method == "hash":
            return stable_hash(key) % len(self._partitions)
        try:
            return bisect_right(list(self.spec.bounds), key)
        except TypeError as exc:
            raise StorageError(
                f"partition key {key!r} is not comparable with the range "
                f"bounds of table {self.name!r}"
            ) from exc

    # -- mutation ------------------------------------------------------------

    def _invalidate(self) -> None:
        self._offsets = None
        self._gathered = None
        self._gathered_cols = {}

    def _coerce_row(self, values: Sequence[object]) -> List[object]:
        if len(values) != len(self.schema.columns):
            raise StorageError(
                f"table {self.name!r} expects {len(self.schema.columns)} values, "
                f"got {len(values)}"
            )
        coerced: List[object] = []
        for col_def, value in zip(self.schema.columns, values):
            if value is None and not col_def.nullable:
                raise StorageError(
                    f"column {col_def.name!r} is not nullable but received NULL"
                )
            coerced.append(col_def.col_type.coerce(value))
        return coerced

    def insert_row(self, values: Sequence[object]) -> int:
        """Insert one row, returning its current global row id.

        Global ids are partition-gather positions, so ids of rows in later
        partitions shift when earlier partitions grow; build indexes only
        after loading (``finalize_load`` order), as the engine does.
        """
        coerced = self._coerce_row(values)
        target = self.route(coerced[self._key_position])
        partition = self._partitions[target]
        partition.append_row(coerced)
        self._row_count += 1
        self._invalidate()
        offset = sum(p.row_count for p in self._partitions[:target])
        return offset + partition.row_count - 1

    def insert_rows(self, rows) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert_row(row)
            count += 1
        return count

    def row_values_from_dict(self, row: Dict[str, object]) -> List[object]:
        """Order a ``{column: value}`` dict into schema order (missing → NULL)."""
        names = self.schema.column_names
        unknown = set(row) - set(names)
        if unknown:
            raise StorageError(
                f"unknown columns {sorted(unknown)} for table {self.name!r}"
            )
        return [row.get(name) for name in names]

    def insert_dicts(self, rows) -> int:
        """Insert rows given as ``{column: value}`` dictionaries."""
        count = 0
        for row in rows:
            self.insert_row(self.row_values_from_dict(row))
            count += 1
        return count

    def load_columns(self, columns: Sequence[Sequence[object]]) -> int:
        """Append rows given column-wise, routing each row to its shard.

        Atomic like :meth:`Table.load_columns`: a failed coercion rolls all
        partitions back to their pre-load lengths.
        """
        if len(columns) != len(self.schema.columns):
            raise StorageError(
                f"table {self.name!r} expects {len(self.schema.columns)} columns, "
                f"got {len(columns)}"
            )
        lengths = {len(values) for values in columns}
        if len(lengths) > 1:
            raise StorageError(
                f"column-wise load into {self.name!r} got ragged columns "
                f"of lengths {sorted(lengths)}"
            )
        count = lengths.pop() if lengths else 0
        before = [partition.row_count for partition in self._partitions]
        try:
            for row_id in range(count):
                coerced = self._coerce_row(
                    [values[row_id] for values in columns]
                )
                self._partitions[
                    self.route(coerced[self._key_position])
                ].append_row(coerced)
        except ReproError:
            for partition, length in zip(self._partitions, before):
                partition.truncate(length)
            self._invalidate()
            raise
        self._row_count += count
        self._invalidate()
        return count

    # -- gathered reads (global row-id order) --------------------------------

    def _partition_offsets(self) -> List[int]:
        """Prefix row offsets of each partition (gather order)."""
        if self._offsets is None:
            offsets: List[int] = []
            total = 0
            for partition in self._partitions:
                offsets.append(total)
                total += partition.row_count
            self._offsets = offsets
        return self._offsets

    def column_data(self) -> List[List[object]]:
        """Gathered value lists of all columns, in schema order.

        The gather (partition order) is materialized once and cached until
        the next mutation; callers must treat the lists as read-only, like
        :meth:`Table.column_data`.
        """
        if self._gathered is None:
            gathered: List[List[object]] = [[] for _ in self.schema.columns]
            for partition in self._partitions:
                for position, values in enumerate(partition.column_data()):
                    gathered[position].extend(values)
            self._gathered = gathered
        return self._gathered

    def gathered_column(self, position: int) -> List[object]:
        """One column's gathered values by schema position (read-only view).

        Unlike :meth:`column_data`, this gathers — and caches — only the
        requested column, so a projection-pushed scan of two columns never
        pays for a full-width gather.  The full-gather cache is reused when
        it already exists.
        """
        gathered = self._gathered
        if gathered is not None:
            return gathered[position]
        cached = self._gathered_cols.get(position)
        if cached is None:
            cached = []
            for partition in self._partitions:
                cached.extend(partition.column_at(position))
            self._gathered_cols[position] = cached
        return cached

    def column_values(self, name: str) -> List[object]:
        """Gathered values of one column (a fresh list, safe to mutate)."""
        return list(self.gathered_column(self.schema.column_index(name)))

    def row(self, row_id: int) -> Tuple[object, ...]:
        """The packed tuple at a global (partition-gather order) row id."""
        if not 0 <= row_id < self._row_count:
            raise StorageError(
                f"row id {row_id} out of range for table {self.name!r}"
            )
        offsets = self._partition_offsets()
        index = bisect_right(offsets, row_id) - 1
        partition = self._partitions[index]
        local = row_id - offsets[index]
        data = partition.column_data()
        return tuple(column[local] for column in data)

    def value(self, row_id: int, column: str) -> object:
        """Return a single cell value at a global row id."""
        return self.row(row_id)[self.schema.column_index(column)]

    def iter_rows(self) -> Iterator[Tuple[object, ...]]:
        """Iterate all rows as packed tuples, partition by partition."""
        for partition in self._partitions:
            yield from partition.iter_rows()

    def iter_row_ids(self) -> Iterator[int]:
        """Iterate all global row ids in gather order."""
        return iter(range(self._row_count))

    def estimated_pages(self, rows_per_page: int = 100) -> int:
        """Crude page-count estimate used by the cost model."""
        if self._row_count == 0:
            return 1
        return (self._row_count + rows_per_page - 1) // rows_per_page

    # -- maintenance ---------------------------------------------------------

    def compress(self, codec: str = "auto") -> None:
        """Seal every partition's columns into compressed segments."""
        for partition in self._partitions:
            partition.compress(codec=codec)
        # Decoded reads still flow through the cached segment decode; drop
        # the gather caches so they rebuild from the segments.
        self._gathered = None
        self._gathered_cols = {}

    def refresh_zone_maps(self) -> None:
        """Recompute every partition's zone map exactly (ANALYZE hook)."""
        for partition in self._partitions:
            partition.refresh_zone_map()
