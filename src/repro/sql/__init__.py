"""SQL front-end: lexer, parser, AST, binder and programmatic query builder."""

from repro.sql.ast import (
    AggregateFunc,
    BetweenPredicate,
    ColumnRef,
    ComparisonOp,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    LikePredicate,
    NullPredicate,
    OrPredicate,
    Parameter,
    Predicate,
    SelectItem,
    SelectQuery,
    TableRef,
)
from repro.sql.binder import Binder, BoundJoin, BoundQuery
from repro.sql.builder import QueryBuilder, collapse_aliases, referenced_columns
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.params import bind_parameters, parameterize
from repro.sql.parser import parse_select

__all__ = [
    "AggregateFunc",
    "BetweenPredicate",
    "Binder",
    "BoundJoin",
    "BoundQuery",
    "ColumnRef",
    "ComparisonOp",
    "ComparisonPredicate",
    "InPredicate",
    "JoinPredicate",
    "LikePredicate",
    "NullPredicate",
    "OrPredicate",
    "Parameter",
    "Predicate",
    "QueryBuilder",
    "SelectItem",
    "SelectQuery",
    "TableRef",
    "Token",
    "TokenType",
    "bind_parameters",
    "collapse_aliases",
    "parameterize",
    "parse_select",
    "referenced_columns",
    "tokenize",
]
