"""SQL front-end: lexer, parser, AST, binder and programmatic query builder."""

from repro.sql.ast import (
    AggregateFunc,
    BetweenPredicate,
    ColumnRef,
    ComparisonOp,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    LikePredicate,
    NullPredicate,
    OrderItem,
    OrPredicate,
    Parameter,
    Predicate,
    SelectItem,
    SelectQuery,
    TableRef,
)
from repro.sql.binder import (
    Binder,
    BoundJoin,
    BoundQuery,
    BoundSortKey,
    output_column_name,
)
from repro.sql.builder import QueryBuilder, collapse_aliases, referenced_columns
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.params import bind_parameters, parameterize
from repro.sql.parser import parse_select

__all__ = [
    "AggregateFunc",
    "BetweenPredicate",
    "Binder",
    "BoundJoin",
    "BoundQuery",
    "BoundSortKey",
    "ColumnRef",
    "ComparisonOp",
    "ComparisonPredicate",
    "InPredicate",
    "JoinPredicate",
    "LikePredicate",
    "NullPredicate",
    "OrPredicate",
    "OrderItem",
    "Parameter",
    "Predicate",
    "QueryBuilder",
    "SelectItem",
    "SelectQuery",
    "TableRef",
    "Token",
    "TokenType",
    "bind_parameters",
    "collapse_aliases",
    "output_column_name",
    "parameterize",
    "parse_select",
    "referenced_columns",
    "tokenize",
]
