"""Programmatic construction and rewriting of bound queries.

Two users of this module:

* Workload generators build queries directly without going through SQL text
  (although :mod:`repro.workloads.job` emits SQL text so that the parser is
  exercised end to end).
* The re-optimization driver (:mod:`repro.core.reoptimizer`) rewrites a bound
  query by *collapsing* a set of aliases into a materialized temporary table,
  exactly as the paper's Figure 6 rewrite does.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import BindError
from repro.sql.ast import (
    AggregateFunc,
    Column,
    ColumnRef,
    Expr,
    SelectItem,
    transform_expr,
)
from repro.sql.binder import BoundJoin, BoundQuery, BoundSortKey


class QueryBuilder:
    """Fluent builder for :class:`~repro.sql.binder.BoundQuery` objects.

    The builder performs only structural checks (duplicate aliases, joins
    over unknown aliases); full catalog validation still belongs to the
    binder.  It is nonetheless convenient for tests and for programmatic
    query rewriting where the catalog is known to contain the tables.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self._name = name
        self._aliases: List[str] = []
        self._alias_tables: Dict[str, str] = {}
        self._select_items: List[SelectItem] = []
        self._filters: Dict[str, List[Expr]] = {}
        self._joins: List[BoundJoin] = []
        self._residuals: List[Expr] = []
        self._distinct = False
        self._group_by: List[ColumnRef] = []
        self._order_by: List[BoundSortKey] = []
        self._limit: Optional[int] = None
        self._offset: Optional[int] = None

    def add_table(self, table: str, alias: Optional[str] = None) -> "QueryBuilder":
        """Add a FROM-clause table with an optional alias."""
        alias = alias or table
        if alias in self._alias_tables:
            raise BindError(f"duplicate alias {alias!r}")
        self._aliases.append(alias)
        self._alias_tables[alias] = table
        return self

    def add_select(
        self,
        alias: str,
        column: str,
        aggregate: Optional[AggregateFunc] = None,
        output_name: Optional[str] = None,
    ) -> "QueryBuilder":
        """Add an output column (optionally aggregated)."""
        self._require_alias(alias)
        self._select_items.append(
            SelectItem(
                expr=Column(ColumnRef(alias=alias, column=column)),
                aggregate=aggregate,
                output_name=output_name,
            )
        )
        return self

    def add_select_expr(
        self,
        expr: Expr,
        aggregate: Optional[AggregateFunc] = None,
        output_name: Optional[str] = None,
    ) -> "QueryBuilder":
        """Add a computed output column (optionally aggregated)."""
        for ref in expr.referenced_columns():
            if ref.alias is not None:
                self._require_alias(ref.alias)
        self._select_items.append(
            SelectItem(expr=expr, aggregate=aggregate, output_name=output_name)
        )
        return self

    def add_count_star(self, output_name: Optional[str] = None) -> "QueryBuilder":
        """Add a ``COUNT(*)`` output column."""
        self._select_items.append(
            SelectItem(
                expr=None, aggregate=AggregateFunc.COUNT, output_name=output_name
            )
        )
        return self

    def add_filter(self, alias: str, predicate: Expr) -> "QueryBuilder":
        """Attach a single-table filter expression to ``alias``."""
        self._require_alias(alias)
        self._filters.setdefault(alias, []).append(predicate)
        return self

    def add_residual(self, predicate: Expr) -> "QueryBuilder":
        """Attach a multi-table residual join filter."""
        for ref in predicate.referenced_columns():
            if ref.alias is not None:
                self._require_alias(ref.alias)
        self._residuals.append(predicate)
        return self

    def add_join(
        self, left_alias: str, left_column: str, right_alias: str, right_column: str
    ) -> "QueryBuilder":
        """Add an equi-join predicate between two aliases."""
        self._require_alias(left_alias)
        self._require_alias(right_alias)
        if left_alias == right_alias:
            raise BindError("a join must connect two different aliases")
        self._joins.append(
            BoundJoin(
                left_alias=left_alias,
                left_column=left_column,
                right_alias=right_alias,
                right_column=right_column,
            )
        )
        return self

    def set_distinct(self, distinct: bool = True) -> "QueryBuilder":
        """Toggle DISTINCT on the output."""
        self._distinct = distinct
        return self

    def add_group_by(self, alias: str, column: str) -> "QueryBuilder":
        """Add a GROUP BY key."""
        self._require_alias(alias)
        self._group_by.append(ColumnRef(alias=alias, column=column))
        return self

    def add_order_by(
        self, alias: str, column: str, ascending: bool = True
    ) -> "QueryBuilder":
        """Add an ORDER BY key (``alias=""`` sorts on an output column name)."""
        if alias:
            self._require_alias(alias)
        self._order_by.append(
            BoundSortKey(alias=alias, column=column, ascending=ascending)
        )
        return self

    def set_limit(self, limit: int, offset: Optional[int] = None) -> "QueryBuilder":
        """Set LIMIT (and optionally OFFSET) on the output."""
        self._limit = limit
        self._offset = offset
        return self

    def build(self) -> BoundQuery:
        """Produce the bound query."""
        return BoundQuery(
            name=self._name,
            aliases=list(self._aliases),
            alias_tables=dict(self._alias_tables),
            select_items=list(self._select_items),
            filters={alias: list(preds) for alias, preds in self._filters.items()},
            joins=list(self._joins),
            residuals=list(self._residuals),
            distinct=self._distinct,
            group_by=list(self._group_by),
            order_by=list(self._order_by),
            limit=self._limit,
            offset=self._offset,
        )

    def _require_alias(self, alias: str) -> None:
        if alias not in self._alias_tables:
            raise BindError(f"unknown alias {alias!r}; call add_table first")


def collapse_aliases(
    query: BoundQuery,
    collapsed: Sequence[str],
    temp_table: str,
    temp_alias: str,
    column_mapping: Dict[Tuple[str, str], str],
) -> BoundQuery:
    """Rewrite ``query`` replacing the aliases in ``collapsed`` with a temp table.

    This is the paper's re-optimization rewrite (Figure 6): the sub-join over
    ``collapsed`` has been materialized into ``temp_table``; the remainder of
    the query refers to the temp table instead of the original tables.

    Args:
        query: the bound query to rewrite.
        collapsed: aliases that were materialized.
        temp_table: catalog name of the temporary table.
        temp_alias: alias to use for the temporary table in the rewritten query.
        column_mapping: maps ``(original_alias, original_column)`` to the name
            of the corresponding column in the temporary table.  Every column
            of a collapsed alias still referenced by the remainder of the
            query (select list, joins to non-collapsed tables) must appear.

    Returns:
        A new :class:`BoundQuery`; the input query is left untouched.

    Raises:
        BindError: if a still-needed column of a collapsed alias is missing
            from ``column_mapping``.
    """
    collapsed_set = set(collapsed)
    unknown = collapsed_set - set(query.aliases)
    if unknown:
        raise BindError(f"cannot collapse unknown aliases {sorted(unknown)}")

    def remap(alias: str, column: str) -> Tuple[str, str]:
        if alias not in collapsed_set:
            return alias, column
        try:
            return temp_alias, column_mapping[(alias, column)]
        except KeyError:
            raise BindError(
                f"column {alias}.{column} is required by the rewritten query but "
                "is not exposed by the materialized temporary table"
            ) from None

    new_aliases = [a for a in query.aliases if a not in collapsed_set] + [temp_alias]
    new_alias_tables = {
        alias: table
        for alias, table in query.alias_tables.items()
        if alias not in collapsed_set
    }
    new_alias_tables[temp_alias] = temp_table

    def remap_expr(expr: Expr) -> Expr:
        def remap_node(node: Expr) -> Expr:
            if isinstance(node, Column):
                alias, column = remap(node.ref.alias, node.ref.column)
                if (alias, column) != (node.ref.alias, node.ref.column):
                    return Column(ColumnRef(alias=alias, column=column))
            return node

        return transform_expr(expr, remap_node)

    new_select: List[SelectItem] = []
    for item in query.select_items:
        if item.expr is None:  # COUNT(*) references no specific column
            new_select.append(item)
            continue
        new_select.append(
            SelectItem(
                expr=remap_expr(item.expr),
                aggregate=item.aggregate,
                output_name=item.output_name,
                result_type=item.result_type,
            )
        )

    new_group_by: List[ColumnRef] = []
    for ref in query.group_by:
        alias, column = remap(ref.alias, ref.column)
        new_group_by.append(ColumnRef(alias=alias, column=column))

    # Output-column keys (alias "") are untouched; base-table keys follow
    # the same remap rule as every other column reference.
    new_order_by = []
    for key in query.order_by:
        if key.alias:
            alias, column = remap(key.alias, key.column)
            key = BoundSortKey(alias=alias, column=column, ascending=key.ascending)
        new_order_by.append(key)

    new_filters: Dict[str, List[Expr]] = {
        alias: list(preds)
        for alias, preds in query.filters.items()
        if alias not in collapsed_set
    }

    # Residual join filters fully inside the collapsed set were already
    # applied while materializing the sub-join; partially overlapping ones
    # are remapped onto the temp table's columns and kept.
    new_residuals: List[Expr] = []
    for residual in query.residuals:
        aliases = set(residual.referenced_aliases())
        if aliases <= collapsed_set:
            continue
        if aliases & collapsed_set:
            new_residuals.append(remap_expr(residual))
        else:
            new_residuals.append(residual)

    new_joins: List[BoundJoin] = []
    seen: set = set()
    for join in query.joins:
        left_in = join.left_alias in collapsed_set
        right_in = join.right_alias in collapsed_set
        if left_in and right_in:
            # Fully absorbed into the materialized sub-join.
            continue
        left_alias, left_column = remap(join.left_alias, join.left_column)
        right_alias, right_column = remap(join.right_alias, join.right_column)
        key = frozenset(
            ((left_alias, left_column), (right_alias, right_column))
        )
        if key in seen:
            # Two original join predicates can collapse into the same predicate
            # against the temp table (transitive equalities); keep one.
            continue
        seen.add(key)
        new_joins.append(
            BoundJoin(
                left_alias=left_alias,
                left_column=left_column,
                right_alias=right_alias,
                right_column=right_column,
            )
        )

    return BoundQuery(
        name=query.name,
        aliases=new_aliases,
        alias_tables=new_alias_tables,
        select_items=new_select,
        filters=new_filters,
        joins=new_joins,
        residuals=new_residuals,
        constant_filters=list(query.constant_filters),
        distinct=query.distinct,
        group_by=new_group_by,
        order_by=new_order_by,
        limit=query.limit,
        offset=query.offset,
    )


def referenced_columns(query: BoundQuery, aliases: Iterable[str]) -> List[Tuple[str, str]]:
    """Columns of ``aliases`` referenced outside the group or in the select list.

    Used by the re-optimization driver to decide which columns the
    materialized temporary table must expose.  Select-list expressions are
    walked for every column they touch; grouping keys, (for ``SELECT *``
    queries) base-table sort keys, joins to non-collapsed tables and
    residual join filters straddling the group boundary count as referenced
    too.
    """
    alias_set = set(aliases)
    needed: List[Tuple[str, str]] = []

    def add(alias: str, column: str) -> None:
        if alias in alias_set and (alias, column) not in needed:
            needed.append((alias, column))

    for item in query.select_items:
        if item.expr is not None:
            for ref in item.expr.referenced_columns():
                add(ref.alias, ref.column)
    for ref in query.group_by:
        add(ref.alias, ref.column)
    for key in query.order_by:
        if key.alias:
            add(key.alias, key.column)
    for join in query.joins:
        left_in = join.left_alias in alias_set
        right_in = join.right_alias in alias_set
        if left_in and not right_in:
            add(join.left_alias, join.left_column)
        elif right_in and not left_in:
            add(join.right_alias, join.right_column)
    for residual in query.residuals:
        referenced = set(residual.referenced_aliases())
        if referenced & alias_set and not referenced <= alias_set:
            # The filter straddles the boundary: the remainder of the query
            # still evaluates it, so the collapsed side's columns ride along.
            for ref in residual.referenced_columns():
                add(ref.alias, ref.column)
    return needed


def scan_referenced_columns(query: BoundQuery, alias: str) -> Optional[FrozenSet[str]]:
    """Every column of ``alias`` the rest of the query can touch.

    The planner attaches this set to the alias's scan node so the execution
    engines gather and decode only referenced columns (late materialization).
    The union is deliberately complete — select expressions, the alias's own
    pushed-down filters (the scan batch must carry its filter inputs), join
    keys on either side, residual join filters, grouping keys and sort keys —
    so everything downstream of the scan resolves against the narrowed batch.

    Returns ``None`` for ``SELECT *`` queries (empty ``select_items`` means
    the scan's full width *is* the output) — the scan then stays full-width.
    """
    if not query.select_items:
        return None
    needed = set()
    for item in query.select_items:
        if item.expr is None:
            continue
        for ref in item.expr.referenced_columns():
            if ref.alias == alias:
                needed.add(ref.column)
    for predicate in query.filters_for(alias):
        for ref in predicate.referenced_columns():
            if ref.alias == alias:
                needed.add(ref.column)
    for join in query.joins:
        if join.left_alias == alias:
            needed.add(join.left_column)
        if join.right_alias == alias:
            needed.add(join.right_column)
    for residual in query.residuals:
        for ref in residual.referenced_columns():
            if ref.alias == alias:
                needed.add(ref.column)
    for ref in query.group_by:
        if ref.alias == alias:
            needed.add(ref.column)
    for key in query.order_by:
        if key.alias == alias:
            needed.add(key.column)
    return frozenset(needed)
