"""Tokenizer for the supported SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import LexerError

KEYWORDS = {
    "select",
    "from",
    "where",
    "and",
    "or",
    "not",
    "in",
    "like",
    "between",
    "is",
    "null",
    "as",
    "min",
    "max",
    "count",
    "sum",
    "avg",
    "group",
    "order",
    "by",
    "asc",
    "desc",
    "limit",
    "offset",
    "create",
    "temp",
    "temporary",
    "table",
    "distinct",
    "case",
    "when",
    "then",
    "else",
    "end",
    "true",
    "false",
}


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    SEMICOLON = "semicolon"
    PARAMETER = "parameter"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    type: TokenType
    value: str
    position: int

    def matches_keyword(self, keyword: str) -> bool:
        """True if this token is the given keyword (case-insensitive)."""
        return self.type is TokenType.KEYWORD and self.value == keyword.lower()


_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "/", "%")


def tokenize(sql: str) -> List[Token]:
    """Tokenize SQL text into a list of tokens ending with an EOF token.

    Raises:
        LexerError: on characters that cannot start any token or on an
            unterminated string literal.
    """
    return list(_iter_tokens(sql))


def _iter_tokens(sql: str) -> Iterator[Token]:
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = length if newline == -1 else newline + 1
            continue
        if ch == "'":
            value, i = _read_string(sql, i)
            yield Token(TokenType.STRING, value, i)
            continue
        # A leading ``-`` is always the operator token; the parser folds
        # unary minus over number literals itself, so ``x-3`` and ``x - 3``
        # tokenize identically.
        if ch.isdigit():
            start = i
            i += 1
            while i < length and (sql[i].isdigit() or sql[i] == "."):
                i += 1
            yield Token(TokenType.NUMBER, sql[start:i], start)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                yield Token(TokenType.KEYWORD, lowered, start)
            else:
                yield Token(TokenType.IDENTIFIER, word, start)
            continue
        matched_operator = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                canonical = "<>" if op == "!=" else op
                yield Token(TokenType.OPERATOR, canonical, i)
                i += len(op)
                matched_operator = True
                break
        if matched_operator:
            continue
        if ch == ",":
            yield Token(TokenType.COMMA, ch, i)
        elif ch == ".":
            yield Token(TokenType.DOT, ch, i)
        elif ch == "(":
            yield Token(TokenType.LPAREN, ch, i)
        elif ch == ")":
            yield Token(TokenType.RPAREN, ch, i)
        elif ch == "*":
            yield Token(TokenType.STAR, ch, i)
        elif ch == ";":
            yield Token(TokenType.SEMICOLON, ch, i)
        elif ch == "?":
            yield Token(TokenType.PARAMETER, ch, i)
        else:
            raise LexerError(f"unexpected character {ch!r}", i)
        i += 1
    yield Token(TokenType.EOF, "", length)


def _read_string(sql: str, start: int) -> tuple:
    """Read a single-quoted string starting at ``start``; '' escapes a quote."""
    i = start + 1
    chars: List[str] = []
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch == "'":
            if i + 1 < length and sql[i + 1] == "'":
                chars.append("'")
                i += 2
                continue
            return "".join(chars), i + 1
        chars.append(ch)
        i += 1
    raise LexerError("unterminated string literal", start)
