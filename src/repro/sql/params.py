"""Positional query parameters (``?`` placeholders).

Prepared statements parse and bind SQL containing ``?`` placeholders once;
each execution substitutes concrete values into the bound template with
:func:`bind_parameters`.  :func:`parameterize` is the inverse: it lifts every
filter literal of a bound query out into a parameter list, which is how the
test suite checks that the prepared path returns exactly the rows of the
literal SQL for every workload query.

Parameters only ever appear in filter predicates: join predicates are
column-to-column and the select list carries no literals in this dialect.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ParameterError
from repro.sql.ast import (
    BetweenPredicate,
    ComparisonPredicate,
    InPredicate,
    LikePredicate,
    NullPredicate,
    OrPredicate,
    Parameter,
    Predicate,
)
from repro.sql.binder import BoundQuery


def bind_parameters(query: BoundQuery, params: Sequence[object]) -> BoundQuery:
    """Substitute positional values for every ``?`` in a bound query.

    Returns a new :class:`BoundQuery` with ``param_count`` 0; the template
    query is left untouched so a prepared statement can be executed many
    times.

    Raises:
        ParameterError: if the number of values does not match the number of
            placeholders, or a LIKE pattern is bound to a non-string.
    """
    values = tuple(params)
    if len(values) != query.param_count:
        raise ParameterError(
            f"query {query.name!r} takes {query.param_count} parameter(s), "
            f"got {len(values)}"
        )
    if query.param_count == 0:
        return query

    def lookup(value: object) -> object:
        if isinstance(value, Parameter):
            return values[value.index]
        return value

    filters = {
        alias: [_map_predicate(predicate, lookup) for predicate in predicates]
        for alias, predicates in query.filters.items()
    }
    return BoundQuery(
        name=query.name,
        aliases=list(query.aliases),
        alias_tables=dict(query.alias_tables),
        select_items=list(query.select_items),
        filters=filters,
        joins=list(query.joins),
        param_count=0,
        distinct=query.distinct,
        group_by=list(query.group_by),
        order_by=list(query.order_by),
        limit=query.limit,
        offset=query.offset,
    )


def parameterize(query: BoundQuery) -> Tuple[BoundQuery, List[object]]:
    """Replace every filter literal with a ``?`` and return the values.

    The parameters are numbered in the order ``BoundQuery.to_sql`` renders
    the predicates (per-alias filters in FROM order, then joins), so the
    returned values line up with the placeholders of the re-parsed SQL text.
    """
    values: List[object] = []

    def lift(value: object) -> Parameter:
        values.append(value)
        return Parameter(len(values) - 1)

    filters: Dict[str, List[Predicate]] = {}
    for alias in query.aliases:
        predicates = query.filters_for(alias)
        if predicates:
            filters[alias] = [_map_predicate(p, lift) for p in predicates]
    parameterized = BoundQuery(
        name=query.name,
        aliases=list(query.aliases),
        alias_tables=dict(query.alias_tables),
        select_items=list(query.select_items),
        filters=filters,
        joins=list(query.joins),
        param_count=len(values),
        distinct=query.distinct,
        group_by=list(query.group_by),
        order_by=list(query.order_by),
        limit=query.limit,
        offset=query.offset,
    )
    return parameterized, values


def _map_predicate(
    predicate: Predicate, transform: Callable[[object], object]
) -> Predicate:
    """Rebuild a filter predicate with every literal slot transformed."""
    if isinstance(predicate, ComparisonPredicate):
        return ComparisonPredicate(
            predicate.column, predicate.op, transform(predicate.value)
        )
    if isinstance(predicate, InPredicate):
        return InPredicate(
            predicate.column, tuple(transform(v) for v in predicate.values)
        )
    if isinstance(predicate, LikePredicate):
        pattern = transform(predicate.pattern)
        if not isinstance(pattern, (str, Parameter)):
            raise ParameterError(
                f"LIKE pattern parameter must be a string, got {pattern!r}"
            )
        return LikePredicate(predicate.column, pattern, predicate.negated)
    if isinstance(predicate, BetweenPredicate):
        return BetweenPredicate(
            predicate.column, transform(predicate.low), transform(predicate.high)
        )
    if isinstance(predicate, NullPredicate):
        return predicate
    if isinstance(predicate, OrPredicate):
        return OrPredicate(
            tuple(_map_predicate(op, transform) for op in predicate.operands)
        )
    raise ParameterError(
        f"unsupported predicate type {type(predicate).__name__} for parameters"
    )
