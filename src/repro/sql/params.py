"""Positional query parameters (``?`` placeholders).

Prepared statements parse and bind SQL containing ``?`` placeholders once;
each execution substitutes concrete values into the bound template with
:func:`bind_parameters`.  :func:`parameterize` is the inverse: it lifts every
literal of the filter and residual expressions out into a parameter list,
which is how the test suite checks that the prepared path returns exactly the
rows of the literal SQL for every workload query.

Parameters appear anywhere an expression does inside WHERE predicates; join
predicates are column-to-column and constant filters fold away their
literals at bind time, so neither carries parameters.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ParameterError
from repro.sql.ast import (
    Expr,
    Like,
    Literal,
    Param,
    Parameter,
    transform_expr,
)
from repro.sql.binder import BoundQuery


def bind_parameters(query: BoundQuery, params: Sequence[object]) -> BoundQuery:
    """Substitute positional values for every ``?`` in a bound query.

    Returns a new :class:`BoundQuery` with ``param_count`` 0; the template
    query is left untouched so a prepared statement can be executed many
    times.

    Raises:
        ParameterError: if the number of values does not match the number of
            placeholders, or a LIKE pattern is bound to a non-string.
    """
    values = tuple(params)
    if len(values) != query.param_count:
        raise ParameterError(
            f"query {query.name!r} takes {query.param_count} parameter(s), "
            f"got {len(values)}"
        )
    if query.param_count == 0:
        return query

    def substitute(node: Expr) -> Expr:
        if isinstance(node, Param):
            return Literal(values[node.index])
        if isinstance(node, Like):
            pattern = node.pattern
            if isinstance(pattern, Literal) and not isinstance(
                pattern.value, str
            ):
                raise ParameterError(
                    f"LIKE pattern parameter must be a string, got "
                    f"{pattern.value!r}"
                )
        return node

    filters = {
        alias: [transform_expr(predicate, substitute) for predicate in predicates]
        for alias, predicates in query.filters.items()
    }
    residuals = [
        transform_expr(predicate, substitute) for predicate in query.residuals
    ]
    return BoundQuery(
        name=query.name,
        aliases=list(query.aliases),
        alias_tables=dict(query.alias_tables),
        select_items=list(query.select_items),
        filters=filters,
        joins=list(query.joins),
        residuals=residuals,
        constant_filters=list(query.constant_filters),
        param_count=0,
        distinct=query.distinct,
        group_by=list(query.group_by),
        order_by=list(query.order_by),
        limit=query.limit,
        offset=query.offset,
    )


def parameterize(query: BoundQuery) -> Tuple[BoundQuery, List[object]]:
    """Replace every filter literal with a ``?`` and return the values.

    The parameters are numbered in the order ``BoundQuery.to_sql`` renders
    the predicates (per-alias filters in FROM order, then joins — which
    carry no literals — then residual join filters), so the returned values
    line up with the placeholders of the re-parsed SQL text.
    """
    values: List[object] = []

    def lift(node: Expr) -> Expr:
        if isinstance(node, Literal):
            values.append(node.value)
            return Param(Parameter(len(values) - 1))
        return node

    filters: Dict[str, List[Expr]] = {}
    for alias in query.aliases:
        predicates = query.filters_for(alias)
        if predicates:
            filters[alias] = [transform_expr(p, lift) for p in predicates]
    residuals = [transform_expr(p, lift) for p in query.residuals]
    parameterized = BoundQuery(
        name=query.name,
        aliases=list(query.aliases),
        alias_tables=dict(query.alias_tables),
        select_items=list(query.select_items),
        filters=filters,
        joins=list(query.joins),
        residuals=residuals,
        constant_filters=list(query.constant_filters),
        param_count=len(values),
        distinct=query.distinct,
        group_by=list(query.group_by),
        order_by=list(query.order_by),
        limit=query.limit,
        offset=query.offset,
    )
    return parameterized, values
