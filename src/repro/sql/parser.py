"""Recursive-descent parser for the supported SQL dialect.

Grammar (informal)::

    create     := CREATE TABLE ident '(' column_def (',' column_def)* ')'
                  [partition_by] [';']
    column_def := ident type [NOT NULL] [PRIMARY KEY]
                  [REFERENCES ident '(' ident ')']
    type       := INT | INTEGER | FLOAT | DOUBLE | REAL
                | TEXT | VARCHAR | STRING
    partition_by := PARTITION BY HASH '(' ident ')' PARTITIONS number
                  | PARTITION BY RANGE '(' ident ')'
                    VALUES '(' bound (',' bound)* ')'

    query      := SELECT [DISTINCT] select_list FROM table_list
                  [WHERE expr] [GROUP BY column_list]
                  [ORDER BY order_list] [LIMIT number [OFFSET number]] [';']
    select_list:= select_item (',' select_item)* | '*'
    select_item:= agg '(' expr ')' [AS ident] | COUNT '(' '*' ')' [AS ident]
                | expr [AS ident]
    agg        := MIN | MAX | COUNT | SUM | AVG
    table_list := table_ref (',' table_ref)*
    table_ref  := ident [AS ident | ident]

    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | predicate
    predicate  := additive [cmp_op additive]
                | additive IS [NOT] NULL
                | additive [NOT] IN '(' additive (',' additive)* ')'
                | additive [NOT] LIKE additive
                | additive [NOT] BETWEEN additive AND additive
    cmp_op     := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
    additive   := multiplicative (('+' | '-') multiplicative)*
    multiplicative := unary (('*' | '/' | '%') unary)*
    unary      := '-' unary | primary
    primary    := NUMBER | STRING | NULL | TRUE | FALSE | '?'
                | CASE (WHEN expr THEN expr)+ [ELSE expr] END
                | '(' expr ')' | column
    column_list:= column (',' column)*
    order_list := column [ASC|DESC] (',' column [ASC|DESC])*
    column     := ident ['.' ident]

Operators bind in the usual order (tightest first): unary ``-``;
``* / %``; ``+ -``; comparisons / ``IS NULL`` / ``IN`` / ``LIKE`` /
``BETWEEN``; ``NOT``; ``AND``; ``OR``.  All binary operators are
left-associative.  The parser produces one unified :class:`~repro.sql.ast.Expr`
tree; classifying predicates into single-table filters, equi-joins and
residual join filters is the binder's job.

Parse errors carry the character offset, line/column and an excerpt of the
SQL around the offending token, so messages read like
``LIMIT must come after FROM/WHERE (at offset 12, line 1 column 13, near
'LIMIT 5 FROM t')``.
"""

from __future__ import annotations

from typing import List, NoReturn, Optional, Tuple

from repro.catalog.schema import (
    ColumnDef,
    ColumnType,
    ForeignKey,
    PartitionSpec,
    TableSchema,
)
from repro.errors import ParseError
from repro.sql.ast import (
    AggregateFunc,
    ArithOp,
    Arithmetic,
    Between,
    Case,
    Column,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    OrderItem,
    Param,
    Parameter,
    SelectItem,
    SelectQuery,
    TableRef,
    conjunction,
    disjunction,
    split_conjuncts,
)
from repro.sql.lexer import Token, TokenType, tokenize

_AGGREGATE_KEYWORDS = tuple(func.value for func in AggregateFunc)

#: Clause keywords that can only appear after the select list; seeing one in
#: place of FROM gets a dedicated "misplaced clause" error.
_TRAILING_CLAUSE_KEYWORDS = ("where", "group", "order", "limit", "offset")

_ADDITIVE_OPS = {"+": ArithOp.ADD, "-": ArithOp.SUB}
_MULTIPLICATIVE_OPS = {"/": ArithOp.DIV, "%": ArithOp.MOD}

#: DDL type names → engine column types.  DDL words are matched as *words*
#: (keyword or identifier tokens) because the SELECT-oriented lexer only
#: reserves a handful of them.
_DDL_TYPES = {
    "int": ColumnType.INT,
    "integer": ColumnType.INT,
    "float": ColumnType.FLOAT,
    "double": ColumnType.FLOAT,
    "real": ColumnType.FLOAT,
    "text": ColumnType.TEXT,
    "varchar": ColumnType.TEXT,
    "string": ColumnType.TEXT,
}


def parse_select(sql: str, name: Optional[str] = None) -> SelectQuery:
    """Parse SQL text into a :class:`~repro.sql.ast.SelectQuery`.

    Args:
        sql: the SQL text of a single SELECT statement.
        name: optional query name attached to the AST (used by workloads).

    Raises:
        ParseError: if the text is not a supported SELECT statement.
        LexerError: if the text cannot be tokenized.
    """
    parser = _Parser(tokenize(sql), sql)
    query = parser.parse_query()
    query.name = name
    return query


def parse_expression(sql: str) -> Expr:
    """Parse a standalone scalar/boolean expression (for tests and tools)."""
    parser = _Parser(tokenize(sql), sql)
    expr = parser.parse_expr()
    token = parser._peek()
    if token.type is not TokenType.EOF:
        parser._fail(f"unexpected trailing input {token.value!r}", token)
    return expr


def parse_create_table(sql: str) -> TableSchema:
    """Parse ``CREATE TABLE`` text into a :class:`~repro.catalog.schema.TableSchema`.

    Supports column types (``INT``/``INTEGER``, ``FLOAT``/``DOUBLE``/``REAL``,
    ``TEXT``/``VARCHAR``/``STRING``), ``NOT NULL``, ``PRIMARY KEY``,
    ``REFERENCES table (column)`` foreign keys, and the partitioning clauses
    ``PARTITION BY HASH (col) PARTITIONS n`` and
    ``PARTITION BY RANGE (col) VALUES (b1, b2, ...)`` (strictly ascending
    inclusive lower bounds of partitions 1..n-1).

    Raises:
        ParseError: if the text is not a supported CREATE TABLE statement.
        LexerError: if the text cannot be tokenized.
        CatalogError: if the parsed schema is inconsistent (duplicate
            columns, bad partition bounds, ...).
    """
    parser = _Parser(tokenize(sql), sql)
    return parser.parse_create_table()


class _Parser:
    """Token-stream cursor with the recursive-descent productions."""

    def __init__(self, tokens: List[Token], sql: str = "") -> None:
        self._tokens = tokens
        self._sql = sql
        self._pos = 0
        self._param_count = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _fail(self, message: str, token: Optional[Token] = None) -> NoReturn:
        token = token if token is not None else self._peek()
        raise ParseError(message, position=token.position, sql=self._sql)

    def _expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        token = self._peek()
        if token.type is not token_type or (value is not None and token.value != value):
            expected = value or token_type.value
            self._fail(f"expected {expected!r} but found {token.value!r}", token)
        return self._advance()

    def _accept_keyword(self, keyword: str) -> bool:
        if self._peek().matches_keyword(keyword):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            token = self._peek()
            if keyword == "from" and token.type is TokenType.KEYWORD and (
                token.value in _TRAILING_CLAUSE_KEYWORDS
            ):
                if token.value == "offset":
                    self._fail("OFFSET is only valid directly after LIMIT", token)
                self._fail(
                    f"{token.value.upper()} must come after the FROM clause",
                    token,
                )
            self._fail(
                f"expected keyword {keyword.upper()!r} but found {token.value!r}",
                token,
            )

    def _word(self) -> Optional[str]:
        """The next token lowered to a word, if it is keyword- or identifier-like.

        DDL words (``hash``, ``partitions``, ``references``, type names, ...)
        are not reserved by the SELECT-oriented lexer, so they arrive as
        IDENTIFIER tokens while ``create``/``table``/``by``/``not``/``null``
        are KEYWORDs; DDL productions match both uniformly.
        """
        token = self._peek()
        if token.type is TokenType.KEYWORD or token.type is TokenType.IDENTIFIER:
            return token.value.lower()
        return None

    def _accept_word(self, word: str) -> bool:
        if self._word() == word:
            self._advance()
            return True
        return False

    def _expect_word(self, word: str) -> Token:
        if self._word() != word:
            token = self._peek()
            self._fail(
                f"expected {word.upper()!r} but found {token.value!r}", token
            )
        return self._advance()

    # -- statement productions -------------------------------------------

    def parse_create_table(self) -> TableSchema:
        """Parse a full CREATE TABLE statement into a schema."""
        self._expect_word("create")
        self._expect_word("table")
        name = self._expect(TokenType.IDENTIFIER).value
        self._expect(TokenType.LPAREN)
        columns: List[ColumnDef] = []
        foreign_keys: List[ForeignKey] = []
        primary_key: Optional[str] = None
        while True:
            column, is_primary, foreign = self._parse_column_def()
            columns.append(column)
            if is_primary:
                if primary_key is not None:
                    self._fail(
                        f"table {name!r} declares more than one PRIMARY KEY"
                    )
                primary_key = column.name
            if foreign is not None:
                foreign_keys.append(foreign)
            if self._peek().type is TokenType.COMMA:
                self._advance()
                continue
            self._expect(TokenType.RPAREN)
            break
        spec = self._parse_partition_by()
        if self._peek().type is TokenType.SEMICOLON:
            self._advance()
        token = self._peek()
        if token.type is not TokenType.EOF:
            self._fail(f"unexpected trailing input {token.value!r}", token)
        return TableSchema(
            name=name,
            columns=tuple(columns),
            primary_key=primary_key,
            foreign_keys=tuple(foreign_keys),
            partition_spec=spec,
        )

    def _parse_column_def(
        self,
    ) -> Tuple[ColumnDef, bool, Optional[ForeignKey]]:
        name = self._expect(TokenType.IDENTIFIER).value
        type_token = self._peek()
        type_word = self._word()
        if type_word not in _DDL_TYPES:
            self._fail(
                f"unknown column type {type_token.value!r}", type_token
            )
        self._advance()
        nullable = True
        is_primary = False
        foreign: Optional[ForeignKey] = None
        while True:
            if self._accept_word("not"):
                self._expect_word("null")
                nullable = False
            elif self._accept_word("primary"):
                self._expect_word("key")
                is_primary = True
            elif self._accept_word("references"):
                ref_table = self._expect(TokenType.IDENTIFIER).value
                self._expect(TokenType.LPAREN)
                ref_column = self._expect(TokenType.IDENTIFIER).value
                self._expect(TokenType.RPAREN)
                foreign = ForeignKey(name, ref_table, ref_column)
            else:
                break
        return ColumnDef(name, _DDL_TYPES[type_word], nullable=nullable), (
            is_primary
        ), foreign

    def _parse_partition_by(self) -> Optional[PartitionSpec]:
        if not self._accept_word("partition"):
            return None
        self._expect_word("by")
        if self._accept_word("hash"):
            self._expect(TokenType.LPAREN)
            column = self._expect(TokenType.IDENTIFIER).value
            self._expect(TokenType.RPAREN)
            self._expect_word("partitions")
            count_token = self._expect(TokenType.NUMBER)
            if "." in count_token.value:
                self._fail(
                    "PARTITIONS takes an integer count", count_token
                )
            return PartitionSpec(
                method="hash", column=column, partitions=int(count_token.value)
            )
        if self._accept_word("range"):
            self._expect(TokenType.LPAREN)
            column = self._expect(TokenType.IDENTIFIER).value
            self._expect(TokenType.RPAREN)
            self._expect_word("values")
            self._expect(TokenType.LPAREN)
            bounds = [self._parse_bound()]
            while self._peek().type is TokenType.COMMA:
                self._advance()
                bounds.append(self._parse_bound())
            self._expect(TokenType.RPAREN)
            return PartitionSpec(
                method="range", column=column, bounds=tuple(bounds)
            )
        token = self._peek()
        self._fail(
            f"expected HASH or RANGE after PARTITION BY, found {token.value!r}",
            token,
        )

    def _parse_bound(self) -> object:
        """One range-partition bound: a (possibly negated) number or a string."""
        token = self._peek()
        negate = False
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            negate = True
            token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return -value if negate else value
        if token.type is TokenType.STRING and not negate:
            self._advance()
            return token.value
        self._fail(
            f"expected a literal partition bound, found {token.value!r}", token
        )

    def parse_query(self) -> SelectQuery:
        """Parse a full SELECT statement."""
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        select_items, item_tokens = self._parse_select_list()
        self._expect_keyword("from")
        tables = self._parse_table_list()
        predicates: List[Expr] = []
        if self._accept_keyword("where"):
            predicates = self._parse_where()
        group_by = self._parse_group_by()
        self._check_bare_columns(select_items, item_tokens, group_by)
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit()
        if self._peek().type is TokenType.SEMICOLON:
            self._advance()
        if self._peek().type is not TokenType.EOF:
            token = self._peek()
            if token.type is TokenType.KEYWORD and (
                token.value in _TRAILING_CLAUSE_KEYWORDS
            ):
                # A clause keyword left over after all clauses were consumed
                # means it appeared after a later clause.
                if token.value == "offset":
                    self._fail("OFFSET is only valid directly after LIMIT", token)
                self._fail(
                    f"{token.value.upper()} is out of order; clauses must "
                    "appear as WHERE, GROUP BY, ORDER BY, LIMIT",
                    token,
                )
            self._fail(f"unexpected trailing input {token.value!r}", token)
        return SelectQuery(
            select_items=select_items,
            tables=tables,
            predicates=predicates,
            param_count=self._param_count,
            distinct=distinct,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _parse_select_list(self) -> Tuple[List[SelectItem], List[Token]]:
        if self._peek().type is TokenType.STAR:
            self._advance()
            return [], []
        tokens = [self._peek()]
        items = [self._parse_select_item()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            tokens.append(self._peek())
            items.append(self._parse_select_item())
        return items, tokens

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        aggregate: Optional[AggregateFunc] = None
        expr: Optional[Expr]
        if (
            token.type is TokenType.KEYWORD
            and token.value in _AGGREGATE_KEYWORDS
            and self._peek(1).type is TokenType.LPAREN
        ):
            aggregate = AggregateFunc(token.value)
            self._advance()
            self._expect(TokenType.LPAREN)
            if self._peek().type is TokenType.STAR:
                star_token = self._advance()
                if aggregate is not AggregateFunc.COUNT:
                    self._fail(
                        f"'*' is only allowed inside COUNT, not "
                        f"{aggregate.value.upper()}",
                        star_token,
                    )
                expr = None
            else:
                expr = self.parse_expr()
            self._expect(TokenType.RPAREN)
        else:
            expr = self.parse_expr()
        output_name = None
        if self._accept_keyword("as"):
            output_name = self._expect(TokenType.IDENTIFIER).value
        elif self._peek().type is TokenType.IDENTIFIER:
            output_name = self._advance().value
        return SelectItem(expr=expr, aggregate=aggregate, output_name=output_name)

    def _check_bare_columns(
        self,
        select_items: List[SelectItem],
        item_tokens: List[Token],
        group_by: List[ColumnRef],
    ) -> None:
        """Reject non-aggregate items mixed with aggregates unless grouped."""
        if group_by or not any(item.aggregate is not None for item in select_items):
            return
        for item, token in zip(select_items, item_tokens):
            if item.aggregate is None:
                self._fail(
                    f"bare column {item.expr} cannot be mixed with aggregates "
                    "without GROUP BY",
                    token,
                )

    def _parse_group_by(self) -> List[ColumnRef]:
        if not self._accept_keyword("group"):
            return []
        self._expect_keyword("by")
        columns = [self._parse_column_ref()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            columns.append(self._parse_column_ref())
        return columns

    def _parse_order_by(self) -> List[OrderItem]:
        if not self._accept_keyword("order"):
            return []
        self._expect_keyword("by")
        items = [self._parse_order_item()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        column = self._parse_column_ref()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return OrderItem(column=column, ascending=ascending)

    def _parse_limit(self) -> Tuple[Optional[int], Optional[int]]:
        if not self._accept_keyword("limit"):
            return None, None
        limit = self._parse_count("LIMIT")
        offset: Optional[int] = None
        if self._accept_keyword("offset"):
            offset = self._parse_count("OFFSET")
        return limit, offset

    def _parse_count(self, clause: str) -> int:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "-":
            number = self._peek(1)
            self._fail(
                f"{clause} takes a non-negative integer, "
                f"found '-{number.value}'",
                token,
            )
        if token.type is not TokenType.NUMBER or "." in token.value:
            self._fail(
                f"{clause} takes a non-negative integer, found {token.value!r}",
                token,
            )
        return int(self._advance().value)

    def _parse_table_list(self) -> List[TableRef]:
        tables = [self._parse_table_ref()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            tables.append(self._parse_table_ref())
        return tables

    def _parse_table_ref(self) -> TableRef:
        name = self._expect(TokenType.IDENTIFIER).value
        alias = name
        if self._accept_keyword("as"):
            alias = self._expect(TokenType.IDENTIFIER).value
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return TableRef(table=name, alias=alias)

    # -- expression productions ------------------------------------------

    def _parse_where(self) -> List[Expr]:
        """Parse the WHERE clause, split at its top-level ANDs."""
        return split_conjuncts(self.parse_expr())

    def parse_expr(self) -> Expr:
        """Parse one full expression (entry point: OR level)."""
        operands = [self._parse_and()]
        while self._accept_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return disjunction(operands)

    def _parse_and(self) -> Expr:
        operands = [self._parse_not()]
        while self._accept_keyword("and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return conjunction(operands)

    def _parse_not(self) -> Expr:
        if self._accept_keyword("not"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.matches_keyword("is"):
            self._advance()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNull(left, negated=negated)
        negated = False
        if token.matches_keyword("not"):
            follower = self._peek(1)
            if not (
                follower.matches_keyword("in")
                or follower.matches_keyword("like")
                or follower.matches_keyword("between")
            ):
                self._fail(
                    "expected IN, LIKE or BETWEEN after NOT", follower
                )
            self._advance()
            negated = True
            token = self._peek()
        if token.matches_keyword("in"):
            self._advance()
            return InList(left, self._parse_expr_list(), negated=negated)
        if token.matches_keyword("like"):
            self._advance()
            return Like(left, self._parse_additive(), negated=negated)
        if token.matches_keyword("between"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)
        if negated:  # pragma: no cover - unreachable (checked above)
            self._fail("expected IN, LIKE or BETWEEN after NOT", token)
        if token.type is TokenType.OPERATOR and token.value in (
            "=",
            "<>",
            "<",
            "<=",
            ">",
            ">=",
        ):
            op = ComparisonOp(self._advance().value)
            right = self._parse_additive()
            return Comparison(op, left, right)
        return left

    def _parse_additive(self) -> Expr:
        expr = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in _ADDITIVE_OPS:
                self._advance()
                right = self._parse_multiplicative()
                expr = Arithmetic(_ADDITIVE_OPS[token.value], expr, right)
            else:
                return expr

    def _parse_multiplicative(self) -> Expr:
        expr = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is TokenType.STAR:
                self._advance()
                expr = Arithmetic(ArithOp.MUL, expr, self._parse_unary())
            elif token.type is TokenType.OPERATOR and (
                token.value in _MULTIPLICATIVE_OPS
            ):
                self._advance()
                expr = Arithmetic(
                    _MULTIPLICATIVE_OPS[token.value], expr, self._parse_unary()
                )
            else:
                return expr

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            operand = self._parse_unary()
            # Fold unary minus over a plain number so ``x = -3`` carries the
            # literal -3, exactly as the pre-expression dialect did.
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ):
                return Literal(-operand.value)
            return Negate(operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.PARAMETER:
            self._advance()
            return Param(self._next_parameter())
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.matches_keyword("null"):
            self._advance()
            return Literal(None)
        if token.matches_keyword("true"):
            self._advance()
            return Literal(True)
        if token.matches_keyword("false"):
            self._advance()
            return Literal(False)
        if token.matches_keyword("case"):
            return self._parse_case()
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self.parse_expr()
            self._expect(TokenType.RPAREN)
            return expr
        if token.type is TokenType.IDENTIFIER:
            return Column(self._parse_column_ref())
        self._fail(f"expected an expression but found {token.value!r}", token)

    def _parse_case(self) -> Expr:
        self._expect_keyword("case")
        whens: List[Tuple[Expr, Expr]] = []
        while self._accept_keyword("when"):
            condition = self.parse_expr()
            self._expect_keyword("then")
            result = self.parse_expr()
            whens.append((condition, result))
        if not whens:
            self._fail("CASE requires at least one WHEN branch")
        default: Optional[Expr] = None
        if self._accept_keyword("else"):
            default = self.parse_expr()
        self._expect_keyword("end")
        return Case(whens=tuple(whens), default=default)

    def _parse_column_ref(self) -> ColumnRef:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._peek().type is TokenType.DOT:
            self._advance()
            # After ``alias.`` a keyword is unambiguous, so columns named
            # like keywords (``t.sum``, ``t.order``) stay addressable.
            token = self._peek()
            if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                second = self._advance().value
            else:
                self._fail(
                    f"expected a column name but found {token.value!r}", token
                )
            return ColumnRef(alias=first, column=second)
        return ColumnRef(alias=None, column=first)

    def _parse_expr_list(self) -> Tuple[Expr, ...]:
        self._expect(TokenType.LPAREN)
        values = [self._parse_additive()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            values.append(self._parse_additive())
        self._expect(TokenType.RPAREN)
        return tuple(values)

    def _next_parameter(self) -> Parameter:
        parameter = Parameter(self._param_count)
        self._param_count += 1
        return parameter
