"""Recursive-descent parser for the supported SQL dialect.

Grammar (informal)::

    query      := SELECT [DISTINCT] select_list FROM table_list
                  [WHERE conjunction] [GROUP BY column_list]
                  [ORDER BY order_list] [LIMIT number [OFFSET number]] [';']
    select_list:= select_item (',' select_item)* | '*'
    select_item:= agg '(' column ')' [AS ident] | COUNT '(' '*' ')' [AS ident]
                | column [AS ident]
    agg        := MIN | MAX | COUNT | SUM | AVG
    table_list := table_ref (',' table_ref)*
    table_ref  := ident [AS ident | ident]
    conjunction:= condition (AND condition)*
    condition  := '(' disjunction ')' | simple
    disjunction:= simple (OR simple)*
    simple     := column op literal | column op column
                | column [NOT] IN '(' literal (',' literal)* ')'
                | column [NOT] LIKE string
                | column BETWEEN literal AND literal
                | column IS [NOT] NULL
    column_list:= column (',' column)*
    order_list := column [ASC|DESC] (',' column [ASC|DESC])*
    column     := ident ['.' ident]

A ``column op column`` condition with ``=`` over two different aliases is a
join predicate; anything else is a filter predicate.

Parse errors carry the character offset of the offending token and an
excerpt of the SQL around it, so messages read like
``LIMIT must come after FROM/WHERE (at offset 12, near 'LIMIT 5 FROM t')``.
"""

from __future__ import annotations

from typing import List, NoReturn, Optional, Tuple

from repro.errors import ParseError
from repro.sql.ast import (
    AggregateFunc,
    BetweenPredicate,
    ColumnRef,
    ComparisonOp,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    LikePredicate,
    NullPredicate,
    OrderItem,
    OrPredicate,
    Parameter,
    Predicate,
    SelectItem,
    SelectQuery,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize

_AGGREGATE_KEYWORDS = tuple(func.value for func in AggregateFunc)

#: Clause keywords that can only appear after the select list; seeing one in
#: place of FROM gets a dedicated "misplaced clause" error.
_TRAILING_CLAUSE_KEYWORDS = ("where", "group", "order", "limit", "offset")


def parse_select(sql: str, name: Optional[str] = None) -> SelectQuery:
    """Parse SQL text into a :class:`~repro.sql.ast.SelectQuery`.

    Args:
        sql: the SQL text of a single SELECT statement.
        name: optional query name attached to the AST (used by workloads).

    Raises:
        ParseError: if the text is not a supported SELECT statement.
        LexerError: if the text cannot be tokenized.
    """
    parser = _Parser(tokenize(sql), sql)
    query = parser.parse_query()
    query.name = name
    return query


class _Parser:
    """Token-stream cursor with the recursive-descent productions."""

    def __init__(self, tokens: List[Token], sql: str = "") -> None:
        self._tokens = tokens
        self._sql = sql
        self._pos = 0
        self._param_count = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _fail(self, message: str, token: Optional[Token] = None) -> NoReturn:
        token = token if token is not None else self._peek()
        raise ParseError(message, position=token.position, sql=self._sql)

    def _expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        token = self._peek()
        if token.type is not token_type or (value is not None and token.value != value):
            expected = value or token_type.value
            self._fail(f"expected {expected!r} but found {token.value!r}", token)
        return self._advance()

    def _accept_keyword(self, keyword: str) -> bool:
        if self._peek().matches_keyword(keyword):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            token = self._peek()
            if keyword == "from" and token.type is TokenType.KEYWORD and (
                token.value in _TRAILING_CLAUSE_KEYWORDS
            ):
                if token.value == "offset":
                    self._fail("OFFSET is only valid directly after LIMIT", token)
                self._fail(
                    f"{token.value.upper()} must come after the FROM clause",
                    token,
                )
            self._fail(
                f"expected keyword {keyword.upper()!r} but found {token.value!r}",
                token,
            )

    # -- productions -----------------------------------------------------

    def parse_query(self) -> SelectQuery:
        """Parse a full SELECT statement."""
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        select_items, item_tokens = self._parse_select_list()
        self._expect_keyword("from")
        tables = self._parse_table_list()
        predicates: List[Predicate] = []
        if self._accept_keyword("where"):
            predicates = self._parse_conjunction()
        group_by = self._parse_group_by()
        self._check_bare_columns(select_items, item_tokens, group_by)
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit()
        if self._peek().type is TokenType.SEMICOLON:
            self._advance()
        if self._peek().type is not TokenType.EOF:
            token = self._peek()
            if token.type is TokenType.KEYWORD and (
                token.value in _TRAILING_CLAUSE_KEYWORDS
            ):
                # A clause keyword left over after all clauses were consumed
                # means it appeared after a later clause.
                if token.value == "offset":
                    self._fail("OFFSET is only valid directly after LIMIT", token)
                self._fail(
                    f"{token.value.upper()} is out of order; clauses must "
                    "appear as WHERE, GROUP BY, ORDER BY, LIMIT",
                    token,
                )
            self._fail(f"unexpected trailing input {token.value!r}", token)
        return SelectQuery(
            select_items=select_items,
            tables=tables,
            predicates=predicates,
            param_count=self._param_count,
            distinct=distinct,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _parse_select_list(self) -> Tuple[List[SelectItem], List[Token]]:
        if self._peek().type is TokenType.STAR:
            self._advance()
            return [], []
        tokens = [self._peek()]
        items = [self._parse_select_item()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            tokens.append(self._peek())
            items.append(self._parse_select_item())
        return items, tokens

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        aggregate: Optional[AggregateFunc] = None
        column: Optional[ColumnRef]
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATE_KEYWORDS:
            aggregate = AggregateFunc(token.value)
            self._advance()
            self._expect(TokenType.LPAREN)
            if self._peek().type is TokenType.STAR:
                star_token = self._advance()
                if aggregate is not AggregateFunc.COUNT:
                    self._fail(
                        f"'*' is only allowed inside COUNT, not "
                        f"{aggregate.value.upper()}",
                        star_token,
                    )
                column = None
            else:
                column = self._parse_column_ref()
            self._expect(TokenType.RPAREN)
        else:
            column = self._parse_column_ref()
        output_name = None
        if self._accept_keyword("as"):
            output_name = self._expect(TokenType.IDENTIFIER).value
        elif self._peek().type is TokenType.IDENTIFIER:
            output_name = self._advance().value
        return SelectItem(column=column, aggregate=aggregate, output_name=output_name)

    def _check_bare_columns(
        self,
        select_items: List[SelectItem],
        item_tokens: List[Token],
        group_by: List[ColumnRef],
    ) -> None:
        """Reject bare columns mixed with aggregates unless the query is grouped."""
        if group_by or not any(item.aggregate is not None for item in select_items):
            return
        for item, token in zip(select_items, item_tokens):
            if item.aggregate is None:
                self._fail(
                    f"bare column {item.column} cannot be mixed with aggregates "
                    "without GROUP BY",
                    token,
                )

    def _parse_group_by(self) -> List[ColumnRef]:
        if not self._accept_keyword("group"):
            return []
        self._expect_keyword("by")
        columns = [self._parse_column_ref()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            columns.append(self._parse_column_ref())
        return columns

    def _parse_order_by(self) -> List[OrderItem]:
        if not self._accept_keyword("order"):
            return []
        self._expect_keyword("by")
        items = [self._parse_order_item()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        column = self._parse_column_ref()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return OrderItem(column=column, ascending=ascending)

    def _parse_limit(self) -> Tuple[Optional[int], Optional[int]]:
        if not self._accept_keyword("limit"):
            return None, None
        limit = self._parse_count("LIMIT")
        offset: Optional[int] = None
        if self._accept_keyword("offset"):
            offset = self._parse_count("OFFSET")
        return limit, offset

    def _parse_count(self, clause: str) -> int:
        token = self._peek()
        if token.type is not TokenType.NUMBER or "." in token.value:
            self._fail(
                f"{clause} takes a non-negative integer, found {token.value!r}",
                token,
            )
        value = int(self._advance().value)
        if value < 0:
            self._fail(f"{clause} takes a non-negative integer, found {value}", token)
        return value

    def _parse_table_list(self) -> List[TableRef]:
        tables = [self._parse_table_ref()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            tables.append(self._parse_table_ref())
        return tables

    def _parse_table_ref(self) -> TableRef:
        name = self._expect(TokenType.IDENTIFIER).value
        alias = name
        if self._accept_keyword("as"):
            alias = self._expect(TokenType.IDENTIFIER).value
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return TableRef(table=name, alias=alias)

    def _parse_conjunction(self) -> List[Predicate]:
        predicates = [self._parse_condition()]
        while self._accept_keyword("and"):
            predicates.append(self._parse_condition())
        return predicates

    def _parse_condition(self) -> Predicate:
        if self._peek().type is TokenType.LPAREN:
            self._advance()
            predicate = self._parse_disjunction()
            self._expect(TokenType.RPAREN)
            return predicate
        return self._parse_simple()

    def _parse_disjunction(self) -> Predicate:
        operands = [self._parse_condition()]
        while self._accept_keyword("or"):
            operands.append(self._parse_condition())
        if len(operands) == 1:
            return operands[0]
        flattened: List[Predicate] = []
        for operand in operands:
            if isinstance(operand, OrPredicate):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        return OrPredicate(tuple(flattened))

    def _parse_simple(self) -> Predicate:
        column = self._parse_column_ref()
        token = self._peek()
        if token.matches_keyword("not"):
            self._advance()
            if self._accept_keyword("in"):
                return InPredicate(column, self._parse_literal_list())
            self._expect_keyword("like")
            return LikePredicate(column, self._parse_like_pattern(), negated=True)
        if token.matches_keyword("in"):
            self._advance()
            return InPredicate(column, self._parse_literal_list())
        if token.matches_keyword("like"):
            self._advance()
            return LikePredicate(column, self._parse_like_pattern())
        if token.matches_keyword("between"):
            self._advance()
            low = self._parse_literal()
            self._expect_keyword("and")
            high = self._parse_literal()
            return BetweenPredicate(column, low, high)
        if token.matches_keyword("is"):
            self._advance()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return NullPredicate(column, negated=negated)
        if token.type is TokenType.OPERATOR:
            op = ComparisonOp(self._advance().value)
            right_token = self._peek()
            if right_token.type is TokenType.IDENTIFIER:
                right = self._parse_column_ref()
                if op is ComparisonOp.EQ and right.alias != column.alias:
                    return JoinPredicate(column, right)
                self._fail(
                    "column-to-column comparisons are only supported as equi-joins "
                    "between different tables",
                    right_token,
                )
            value = self._parse_literal()
            return ComparisonPredicate(column, op, value)
        self._fail(f"unsupported condition near {token.value!r}", token)

    def _parse_column_ref(self) -> ColumnRef:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._peek().type is TokenType.DOT:
            self._advance()
            # After ``alias.`` a keyword is unambiguous, so columns named
            # like keywords (``t.sum``, ``t.order``) stay addressable.
            token = self._peek()
            if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                second = self._advance().value
            else:
                self._fail(
                    f"expected a column name but found {token.value!r}", token
                )
            return ColumnRef(alias=first, column=second)
        return ColumnRef(alias=None, column=first)

    def _parse_literal_list(self) -> Tuple[object, ...]:
        self._expect(TokenType.LPAREN)
        values = [self._parse_literal()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            values.append(self._parse_literal())
        self._expect(TokenType.RPAREN)
        return tuple(values)

    def _parse_literal(self) -> object:
        token = self._peek()
        if token.type is TokenType.PARAMETER:
            self._advance()
            return self._next_parameter()
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.value:
                return float(token.value)
            return int(token.value)
        if token.matches_keyword("null"):
            self._advance()
            return None
        self._fail(f"expected a literal but found {token.value!r}", token)

    def _parse_like_pattern(self) -> object:
        if self._peek().type is TokenType.PARAMETER:
            self._advance()
            return self._next_parameter()
        return self._expect(TokenType.STRING).value

    def _next_parameter(self) -> Parameter:
        parameter = Parameter(self._param_count)
        self._param_count += 1
        return parameter
