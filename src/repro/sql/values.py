"""Value-level SQL semantics shared by the binder and both engines.

Every function in this module operates on plain Python values under SQL's
three-valued logic: ``None`` is SQL ``NULL``, booleans are the third truth
value's carriers (``True``/``False``/``None``).  The binder uses these
helpers to constant-fold literal-only expressions, and the expression
compiler in :mod:`repro.executor.expressions` uses the *same* helpers in
both of its targets (row closures and batch evaluators), which is what makes
bind-time folding, the reference oracle and the vectorized engine agree
bit-for-bit on every float and every NULL.

The semantics, pinned by the differential fuzzer:

* arithmetic propagates NULL (any NULL operand makes the result NULL);
* division and modulo by zero yield NULL (SQLite's choice; friendlier to a
  fuzzer than an error, and it keeps filters total functions);
* integer division truncates toward zero and integer modulo takes the sign
  of the dividend (PostgreSQL/C semantics, *not* Python's floor rules);
* comparisons with a NULL operand are NULL (unknown), never False;
* ``AND``/``OR`` follow Kleene logic, ``NOT NULL`` is NULL;
* ``x [NOT] IN (list)`` is NULL when no element matches but some element
  (or ``x`` itself) is NULL;
* ``LIKE`` on a NULL operand or NULL pattern is NULL.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import List, Optional

from repro.sql.ast import ArithOp, ComparisonOp


def arith(op: ArithOp, left: object, right: object) -> object:
    """Apply one arithmetic operator with SQL NULL/zero-division semantics."""
    if left is None or right is None:
        return None
    if op is ArithOp.ADD:
        return left + right
    if op is ArithOp.SUB:
        return left - right
    if op is ArithOp.MUL:
        return left * right
    if right == 0:
        return None
    if op is ArithOp.DIV:
        if isinstance(left, int) and isinstance(right, int):
            # Truncate toward zero (PostgreSQL), not Python's floor.
            quotient = abs(left) // abs(right)
            return quotient if (left < 0) == (right < 0) else -quotient
        return left / right
    # MOD: result takes the sign of the dividend (C semantics).
    remainder = abs(left) % abs(right)
    return remainder if left >= 0 else -remainder


def negate(value: object) -> object:
    """Unary minus with NULL propagation."""
    if value is None:
        return None
    return -value


def compare(op: "ComparisonOp", left: object, right: object) -> Optional[bool]:
    """Three-valued comparison: NULL operands make the answer unknown."""
    if left is None or right is None:
        return None
    return op.apply(left, right)


def logical_and(values: List[Optional[bool]]) -> Optional[bool]:
    """Kleene AND over a list of three-valued operands."""
    saw_null = False
    for value in values:
        if value is False:
            return False
        if value is None:
            saw_null = True
    return None if saw_null else True


def logical_or(values: List[Optional[bool]]) -> Optional[bool]:
    """Kleene OR over a list of three-valued operands."""
    saw_null = False
    for value in values:
        if value is True:
            return True
        if value is None:
            saw_null = True
    return None if saw_null else False


def logical_not(value: Optional[bool]) -> Optional[bool]:
    """Kleene NOT."""
    if value is None:
        return None
    return not value


def in_list(value: object, items: List[object]) -> Optional[bool]:
    """``value IN (items)`` under three-valued logic."""
    if value is None:
        return None
    saw_null = False
    for item in items:
        if item is None:
            saw_null = True
        elif item == value:
            return True
    return None if saw_null else False


def between(value: object, low: object, high: object) -> Optional[bool]:
    """``value BETWEEN low AND high`` (inclusive), three-valued."""
    if value is None or low is None or high is None:
        return None
    return low <= value <= high


@lru_cache(maxsize=4096)
def like_pattern_to_regex(pattern: str) -> "re.Pattern":
    """Translate a SQL LIKE pattern into an anchored regular expression."""
    parts: List[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


def like(value: object, pattern: object) -> Optional[bool]:
    """``value LIKE pattern``, three-valued."""
    if value is None or pattern is None:
        return None
    return like_pattern_to_regex(str(pattern)).match(str(value)) is not None


def is_truthy(value: object) -> bool:
    """Whether a three-valued predicate result keeps a row (only True does)."""
    return value is True
