"""Name resolution, type inference and constant folding.

The binder turns a parsed query into a bound query: it resolves table
aliases against the catalog, resolves and type-checks every expression,
constant-folds literal-only subtrees, and classifies the WHERE clause's
conjuncts — after CNF normalization by :mod:`repro.optimizer.rewrite` — into

* **per-alias filter expressions** (pushed down to the scans),
* **equi-join predicates** (``a.x = b.y`` across two aliases, the edges the
  join-order enumerator works on),
* **residual join filters** (any other multi-table predicate — non-equi
  comparisons, cross-table ``OR`` trees — applied at the first join that
  covers their tables), and
* **constant filters** (conjuncts that folded to a literal: ``WHERE 1 = 1``
  is recorded and dropped, ``WHERE 2 < 1`` additionally marks the whole
  query ``always_false`` so the planner prunes execution).

Result shaping is validated here too:

* ``GROUP BY`` keys are resolved against the catalog, and every
  non-aggregate select item may only reference group-key columns (the
  standard grouped-select rule);
* ``ORDER BY`` keys are resolved against the *output* of the query: for a
  projected/aggregated select list they become references to output columns
  (by ``AS`` name or by matching a select item), for ``SELECT *`` they stay
  qualified base-table columns;
* ``LIMIT``/``OFFSET``/``DISTINCT`` are carried through unchanged.

Every bound select item carries its inferred
:class:`~repro.catalog.schema.ColumnType` (``result_type``): arithmetic
follows numeric widening (INT op INT -> INT, anything FLOAT -> FLOAT),
comparisons and boolean trees are BOOL (surfaced as INT, SQLite-style),
``CASE`` takes the common type of its branches, ``COUNT`` is INT and ``AVG``
FLOAT.  ``Cursor.description`` reads these type codes directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.schema import ColumnType
from repro.errors import BindError
from repro.sql import values
from repro.sql.ast import (
    AggregateFunc,
    Arithmetic,
    Between,
    BoolConnective,
    BoolExpr,
    Case,
    Column,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    OrderItem,
    Param,
    SelectItem,
    SelectQuery,
    render_conjunct,
    transform_expr,
)


def output_column_name(item: SelectItem, position: int) -> str:
    """Output column name of one select item (``AS`` name or ``colN``).

    This is the naming rule shared by the binder (ORDER BY key resolution)
    and both executor engines.  ``Cursor.description`` deliberately renders
    friendlier display names (``count(c.id)``, ``c.symbol``) for unnamed
    items; give an item an ``AS`` name to make its display name ORDER
    BY-addressable.
    """
    return item.output_name or f"col{position}"


class ExprType(enum.Enum):
    """Inferred static type of an expression."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"
    #: The type of a bare ``NULL`` literal (compatible with everything).
    NULL = "null"
    #: The type of an unbound ``?`` parameter (compatible with everything).
    ANY = "any"

    def is_numeric(self) -> bool:
        """Usable as an arithmetic operand."""
        return self in (ExprType.INT, ExprType.FLOAT, ExprType.NULL, ExprType.ANY)

    def is_textual(self) -> bool:
        """Usable as a LIKE operand/pattern."""
        return self in (ExprType.TEXT, ExprType.NULL, ExprType.ANY)

    def is_boolean(self) -> bool:
        """Usable as a predicate / boolean-connective operand."""
        return self in (ExprType.BOOL, ExprType.NULL, ExprType.ANY)

    def column_type(self) -> Optional[ColumnType]:
        """The :class:`ColumnType` surfaced by ``Cursor.description``.

        BOOL maps to INT (the engines store Python booleans, SQLite-style);
        NULL/ANY carry no type code.
        """
        if self is ExprType.INT:
            return ColumnType.INT
        if self is ExprType.FLOAT:
            return ColumnType.FLOAT
        if self is ExprType.TEXT:
            return ColumnType.TEXT
        if self is ExprType.BOOL:
            return ColumnType.INT
        return None


_COLUMN_TO_EXPR_TYPE = {
    ColumnType.INT: ExprType.INT,
    ColumnType.FLOAT: ExprType.FLOAT,
    ColumnType.TEXT: ExprType.TEXT,
}


def _widen(left: ExprType, right: ExprType) -> ExprType:
    """Numeric widening: FLOAT wins, NULL/ANY defer to the other side."""
    if ExprType.FLOAT in (left, right):
        return ExprType.FLOAT
    if left in (ExprType.NULL, ExprType.ANY):
        return right if right is ExprType.INT else left
    return left


def _comparable(left: ExprType, right: ExprType) -> bool:
    """Whether two operand types may meet in a comparison/IN/BETWEEN."""
    if left in (ExprType.NULL, ExprType.ANY) or right in (
        ExprType.NULL,
        ExprType.ANY,
    ):
        return True
    if left.is_numeric() and right.is_numeric():
        return True
    return left is right


def _common_type(left: ExprType, right: ExprType, context: str) -> ExprType:
    """Common result type of two CASE branches (numeric widening applies)."""
    if left in (ExprType.NULL, ExprType.ANY):
        return right
    if right in (ExprType.NULL, ExprType.ANY):
        return left
    if left is right:
        return left
    if left.is_numeric() and right.is_numeric():
        return _widen(left, right)
    raise BindError(
        f"{context} mixes incompatible result types "
        f"{left.value} and {right.value}"
    )


@dataclass(frozen=True)
class ConstantFilter:
    """A WHERE conjunct that folded to a constant at bind time.

    ``expr`` is the original (bound) expression, kept for EXPLAIN and SQL
    rendering; ``value`` is the folded three-valued result.  A value other
    than ``True`` makes the whole query return no rows.
    """

    expr: Expr
    value: object

    @property
    def passes(self) -> bool:
        """Whether the constant filter keeps rows."""
        return values.is_truthy(self.value)

    def to_sql(self) -> str:
        """Render the original predicate text."""
        return self.expr.to_sql()

    def __str__(self) -> str:
        return self.to_sql()


@dataclass(frozen=True)
class BoundSortKey:
    """A resolved ``ORDER BY`` key.

    ``alias`` is ``""`` when the key refers to an output column of the
    projected/aggregated result (named per :func:`output_column_name`), and a
    FROM-clause alias when the query is ``SELECT *`` and the key refers to a
    base-table column.  The executor resolves the pair against the final
    result's columns at runtime.
    """

    alias: str
    column: str
    ascending: bool = True

    def to_sql(self) -> str:
        """Render back to SQL."""
        name = f"{self.alias}.{self.column}" if self.alias else self.column
        return name if self.ascending else f"{name} DESC"

    def __str__(self) -> str:
        return self.to_sql()


@dataclass(frozen=True)
class BoundJoin:
    """A bound equi-join predicate between two aliases."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def aliases(self) -> Tuple[str, str]:
        """The two aliases this join connects."""
        return self.left_alias, self.right_alias

    def touches(self, alias: str) -> bool:
        """True if the join references ``alias`` on either side."""
        return alias in (self.left_alias, self.right_alias)

    def column_for(self, alias: str) -> str:
        """Return the join column on the side belonging to ``alias``."""
        if alias == self.left_alias:
            return self.left_column
        if alias == self.right_alias:
            return self.right_column
        raise BindError(f"join {self} does not reference alias {alias!r}")

    def other(self, alias: str) -> Tuple[str, str]:
        """Return ``(alias, column)`` of the side opposite to ``alias``."""
        if alias == self.left_alias:
            return self.right_alias, self.right_column
        if alias == self.right_alias:
            return self.left_alias, self.left_column
        raise BindError(f"join {self} does not reference alias {alias!r}")

    def to_sql(self) -> str:
        """Render back to SQL."""
        return (
            f"{self.left_alias}.{self.left_column} = "
            f"{self.right_alias}.{self.right_column}"
        )

    def __str__(self) -> str:
        return self.to_sql()


@dataclass
class BoundQuery:
    """A name-resolved select-project-join query.

    Attributes:
        name: optional workload-level query name (e.g. ``"q07a"``).
        aliases: FROM-clause aliases in declaration order.
        alias_tables: mapping of alias to catalog table name.
        select_items: bound output columns (with inferred ``result_type``).
        filters: per-alias single-table filter expressions.
        joins: equi-join predicates.
        residuals: multi-table non-equi-join filter expressions, applied at
            the first join covering their aliases.
        constant_filters: conjuncts that folded to a constant at bind time.
        param_count: number of unbound ``?`` placeholders still present in
            the filter expressions (0 once parameters are substituted).
        distinct: drop duplicate output rows.
        group_by: fully qualified grouping keys (empty when ungrouped).
        order_by: resolved sort keys over the query output.
        limit: maximum output rows (``None`` for no limit).
        offset: output rows skipped before the limit applies.
    """

    name: Optional[str]
    aliases: List[str]
    alias_tables: Dict[str, str]
    select_items: List[SelectItem]
    filters: Dict[str, List[Expr]] = field(default_factory=dict)
    joins: List[BoundJoin] = field(default_factory=list)
    residuals: List[Expr] = field(default_factory=list)
    constant_filters: List[ConstantFilter] = field(default_factory=list)
    param_count: int = 0
    distinct: bool = False
    group_by: List[ColumnRef] = field(default_factory=list)
    order_by: List[BoundSortKey] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None

    @property
    def always_false(self) -> bool:
        """True when a constant filter makes the query return no rows."""
        return any(not constant.passes for constant in self.constant_filters)

    def table_for(self, alias: str) -> str:
        """Catalog table name for ``alias``."""
        try:
            return self.alias_tables[alias]
        except KeyError:
            raise BindError(f"unknown alias {alias!r} in query {self.name!r}") from None

    def filters_for(self, alias: str) -> List[Expr]:
        """Filter expressions that apply to ``alias`` (possibly empty)."""
        return self.filters.get(alias, [])

    def joins_between(self, left_aliases, right_aliases) -> List[BoundJoin]:
        """Joins with one side in ``left_aliases`` and the other in ``right_aliases``."""
        left = set(left_aliases)
        right = set(right_aliases)
        matched = []
        for join in self.joins:
            a, b = join.aliases()
            if (a in left and b in right) or (a in right and b in left):
                matched.append(join)
        return matched

    def num_tables(self) -> int:
        """Number of FROM-clause tables."""
        return len(self.aliases)

    def to_sql(self) -> str:
        """Render the bound query back to SQL text."""
        select_items = self.select_items
        if select_items:
            select = ",\n       ".join(str(item) for item in select_items)
        else:
            select = "*"
        tables = ",\n     ".join(
            alias if alias == self.alias_tables[alias] else f"{self.alias_tables[alias]} AS {alias}"
            for alias in self.aliases
        )
        clauses: List[str] = []
        for alias in self.aliases:
            clauses.extend(render_conjunct(p) for p in self.filters_for(alias))
        clauses.extend(j.to_sql() for j in self.joins)
        clauses.extend(render_conjunct(p) for p in self.residuals)
        clauses.extend(render_conjunct(c.expr) for c in self.constant_filters)
        prefix = "SELECT DISTINCT" if self.distinct else "SELECT"
        text = f"{prefix} {select}\nFROM {tables}"
        if clauses:
            text += "\nWHERE " + "\n  AND ".join(clauses)
        if self.group_by:
            text += "\nGROUP BY " + ", ".join(str(c) for c in self.group_by)
        if self.order_by:
            text += "\nORDER BY " + ", ".join(k.to_sql() for k in self.order_by)
        if self.limit is not None:
            text += f"\nLIMIT {self.limit}"
            if self.offset is not None:
                text += f" OFFSET {self.offset}"
        return text + ";"


def fold_constants(expr: Expr) -> Expr:
    """Fold literal-only subtrees bottom-up into :class:`Literal` nodes.

    Expressions must already be bound and type-checked; evaluation uses the
    exact value semantics of :mod:`repro.sql.values`, so a folded result is
    bit-identical to what either engine would compute at runtime
    (``1/0`` folds to NULL, ``1 = NULL`` to NULL, ...).
    """

    def fold(node: Expr) -> Expr:
        if isinstance(node, Negate) and isinstance(node.operand, Literal):
            return Literal(values.negate(node.operand.value))
        if isinstance(node, Arithmetic):
            if isinstance(node.left, Literal) and isinstance(node.right, Literal):
                return Literal(
                    values.arith(node.op, node.left.value, node.right.value)
                )
        elif isinstance(node, Comparison):
            if isinstance(node.left, Literal) and isinstance(node.right, Literal):
                return Literal(
                    values.compare(node.op, node.left.value, node.right.value)
                )
        elif isinstance(node, IsNull):
            if isinstance(node.operand, Literal):
                answer = node.operand.value is None
                return Literal(not answer if node.negated else answer)
        elif isinstance(node, InList):
            if isinstance(node.operand, Literal) and all(
                isinstance(item, Literal) for item in node.items
            ):
                answer = values.in_list(
                    node.operand.value, [item.value for item in node.items]
                )
                return Literal(
                    values.logical_not(answer) if node.negated else answer
                )
        elif isinstance(node, Like):
            if isinstance(node.operand, Literal) and isinstance(
                node.pattern, Literal
            ):
                answer = values.like(node.operand.value, node.pattern.value)
                return Literal(
                    values.logical_not(answer) if node.negated else answer
                )
        elif isinstance(node, Between):
            if (
                isinstance(node.operand, Literal)
                and isinstance(node.low, Literal)
                and isinstance(node.high, Literal)
            ):
                answer = values.between(
                    node.operand.value, node.low.value, node.high.value
                )
                return Literal(
                    values.logical_not(answer) if node.negated else answer
                )
        elif isinstance(node, Not):
            if isinstance(node.operand, Literal):
                return Literal(values.logical_not(node.operand.value))
        elif isinstance(node, BoolExpr):
            if all(isinstance(operand, Literal) for operand in node.operands):
                operand_values = [operand.value for operand in node.operands]
                if node.op is BoolConnective.AND:
                    return Literal(values.logical_and(operand_values))
                return Literal(values.logical_or(operand_values))
        elif isinstance(node, Case):
            if all(
                isinstance(condition, Literal) and isinstance(result, Literal)
                for condition, result in node.whens
            ) and (node.default is None or isinstance(node.default, Literal)):
                for condition, result in node.whens:
                    if values.is_truthy(condition.value):
                        return result
                return node.default if node.default is not None else Literal(None)
        return node

    return transform_expr(expr, fold)


class Binder:
    """Resolves parsed queries against a :class:`~repro.catalog.catalog.Catalog`."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def bind(self, query: SelectQuery) -> BoundQuery:
        """Bind a parsed query.

        Raises:
            BindError: on unknown tables/columns, ambiguous references, type
                errors inside expressions, or select lists violating the
                grouping rules.
        """
        # Imported here: repro.optimizer.rewrite depends only on the AST, but
        # a top-level import would make sql <-> optimizer circular.
        from repro.optimizer.rewrite import to_cnf

        alias_tables: Dict[str, str] = {}
        for table_ref in query.tables:
            if table_ref.alias in alias_tables:
                raise BindError(f"duplicate alias {table_ref.alias!r}")
            if table_ref.table not in self._catalog:
                raise BindError(f"unknown table {table_ref.table!r}")
            alias_tables[table_ref.alias] = table_ref.table

        aliases = list(alias_tables)
        bound = BoundQuery(
            name=query.name,
            aliases=aliases,
            alias_tables=alias_tables,
            select_items=[],
            param_count=query.param_count,
            distinct=query.distinct,
            limit=query.limit,
            offset=query.offset,
        )
        bound.select_items = [
            self._bind_select_item(item, bound) for item in query.select_items
        ]
        bound.group_by = [self._resolve_column(ref, bound) for ref in query.group_by]
        self._check_grouping_rules(bound)
        bound.order_by = self._bind_order_by(query.order_by, bound)

        for predicate in query.predicates:
            resolved, expr_type = self._bind_expr(predicate, bound)
            if not expr_type.is_boolean():
                raise BindError(
                    f"WHERE clause term {predicate.to_sql()!r} is not a "
                    f"boolean expression (it has type {expr_type.value})"
                )
            folded = fold_constants(resolved)
            if isinstance(folded, Literal):
                bound.constant_filters.append(
                    ConstantFilter(expr=resolved, value=folded.value)
                )
                continue
            for clause in to_cnf(folded):
                self._classify_conjunct(clause, bound)
        return bound

    # -- predicate classification -----------------------------------------

    def _classify_conjunct(self, clause: Expr, bound: BoundQuery) -> None:
        """File one CNF clause as a filter, equi-join or residual."""
        clause = fold_constants(clause)
        if isinstance(clause, Literal):
            bound.constant_filters.append(
                ConstantFilter(expr=clause, value=clause.value)
            )
            return
        aliases = clause.referenced_aliases()
        if not aliases:
            raise BindError(
                f"predicate {clause.to_sql()!r} references no FROM-clause "
                "column and does not fold to a constant"
            )
        join = self._as_equi_join(clause)
        if join is not None:
            bound.joins.append(join)
            return
        if len(aliases) == 1:
            bound.filters.setdefault(aliases[0], []).append(clause)
            return
        bound.residuals.append(clause)

    @staticmethod
    def _as_equi_join(clause: Expr) -> Optional[BoundJoin]:
        """Match the canonical equi-join shape ``a.x = b.y`` (two aliases)."""
        if not isinstance(clause, Comparison) or clause.op is not ComparisonOp.EQ:
            return None
        if not isinstance(clause.left, Column) or not isinstance(
            clause.right, Column
        ):
            return None
        left, right = clause.left.ref, clause.right.ref
        if left.alias == right.alias:
            return None
        return BoundJoin(
            left_alias=left.alias,
            left_column=left.column,
            right_alias=right.alias,
            right_column=right.column,
        )

    # -- expression binding ------------------------------------------------

    def _resolve_column(self, ref: ColumnRef, bound: BoundQuery) -> ColumnRef:
        """Return a fully qualified column reference, validating existence."""
        if ref.alias is not None:
            table = bound.table_for(ref.alias)
            schema = self._catalog.schema(table)
            if not schema.has_column(ref.column):
                raise BindError(
                    f"table {table!r} (alias {ref.alias!r}) has no column {ref.column!r}"
                )
            return ref
        candidates = [
            alias
            for alias in bound.aliases
            if self._catalog.schema(bound.table_for(alias)).has_column(ref.column)
        ]
        if not candidates:
            raise BindError(f"column {ref.column!r} not found in any FROM table")
        if len(candidates) > 1:
            raise BindError(
                f"column {ref.column!r} is ambiguous between aliases {candidates}"
            )
        return ColumnRef(alias=candidates[0], column=ref.column)

    def _column_expr_type(self, ref: ColumnRef, bound: BoundQuery) -> ExprType:
        table = bound.table_for(ref.alias)
        col_type = self._catalog.schema(table).column(ref.column).col_type
        return _COLUMN_TO_EXPR_TYPE[col_type]

    def _bind_expr(
        self, expr: Expr, bound: BoundQuery
    ) -> Tuple[Expr, ExprType]:
        """Resolve, type-check and rebuild one expression tree."""
        if isinstance(expr, Literal):
            return expr, self._literal_type(expr.value)
        if isinstance(expr, Param):
            return expr, ExprType.ANY
        if isinstance(expr, Column):
            ref = self._resolve_column(expr.ref, bound)
            return Column(ref), self._column_expr_type(ref, bound)
        if isinstance(expr, Negate):
            operand, operand_type = self._bind_expr(expr.operand, bound)
            if not operand_type.is_numeric():
                raise BindError(
                    f"unary minus needs a numeric operand, got "
                    f"{operand_type.value} in {expr.to_sql()!r}"
                )
            return Negate(operand), operand_type
        if isinstance(expr, Arithmetic):
            left, left_type = self._bind_expr(expr.left, bound)
            right, right_type = self._bind_expr(expr.right, bound)
            if not left_type.is_numeric() or not right_type.is_numeric():
                raise BindError(
                    f"arithmetic {expr.op.value!r} needs numeric operands, got "
                    f"{left_type.value} and {right_type.value} in "
                    f"{expr.to_sql()!r}"
                )
            return Arithmetic(expr.op, left, right), _widen(left_type, right_type)
        if isinstance(expr, Comparison):
            left, left_type = self._bind_expr(expr.left, bound)
            right, right_type = self._bind_expr(expr.right, bound)
            if not _comparable(left_type, right_type):
                raise BindError(
                    f"cannot compare {left_type.value} with {right_type.value} "
                    f"in {expr.to_sql()!r}"
                )
            return Comparison(expr.op, left, right), ExprType.BOOL
        if isinstance(expr, IsNull):
            operand, _ = self._bind_expr(expr.operand, bound)
            return IsNull(operand, negated=expr.negated), ExprType.BOOL
        if isinstance(expr, InList):
            operand, operand_type = self._bind_expr(expr.operand, bound)
            items: List[Expr] = []
            for item in expr.items:
                bound_item, item_type = self._bind_expr(item, bound)
                if not _comparable(operand_type, item_type):
                    raise BindError(
                        f"IN list item {item.to_sql()!r} has type "
                        f"{item_type.value}, incompatible with "
                        f"{operand_type.value} operand {expr.operand.to_sql()!r}"
                    )
                items.append(bound_item)
            return (
                InList(operand, tuple(items), negated=expr.negated),
                ExprType.BOOL,
            )
        if isinstance(expr, Like):
            operand, operand_type = self._bind_expr(expr.operand, bound)
            pattern, pattern_type = self._bind_expr(expr.pattern, bound)
            if not operand_type.is_textual() or not pattern_type.is_textual():
                raise BindError(
                    f"LIKE needs text operands, got {operand_type.value} and "
                    f"{pattern_type.value} in {expr.to_sql()!r}"
                )
            return Like(operand, pattern, negated=expr.negated), ExprType.BOOL
        if isinstance(expr, Between):
            operand, operand_type = self._bind_expr(expr.operand, bound)
            low, low_type = self._bind_expr(expr.low, bound)
            high, high_type = self._bind_expr(expr.high, bound)
            if not _comparable(operand_type, low_type) or not _comparable(
                operand_type, high_type
            ):
                raise BindError(
                    f"BETWEEN bounds must be comparable with the operand in "
                    f"{expr.to_sql()!r}"
                )
            return (
                Between(operand, low, high, negated=expr.negated),
                ExprType.BOOL,
            )
        if isinstance(expr, Not):
            operand, operand_type = self._bind_expr(expr.operand, bound)
            if not operand_type.is_boolean():
                raise BindError(
                    f"NOT needs a boolean operand, got {operand_type.value} "
                    f"in {expr.to_sql()!r}"
                )
            return Not(operand), ExprType.BOOL
        if isinstance(expr, BoolExpr):
            operands: List[Expr] = []
            for operand in expr.operands:
                bound_operand, operand_type = self._bind_expr(operand, bound)
                if not operand_type.is_boolean():
                    raise BindError(
                        f"argument of {expr.op.value} must be a boolean "
                        f"expression, got {operand_type.value} in "
                        f"{operand.to_sql()!r}"
                    )
                operands.append(bound_operand)
            return BoolExpr(expr.op, tuple(operands)), ExprType.BOOL
        if isinstance(expr, Case):
            whens: List[Tuple[Expr, Expr]] = []
            result_type: Optional[ExprType] = None
            for condition, result in expr.whens:
                bound_condition, condition_type = self._bind_expr(condition, bound)
                if not condition_type.is_boolean():
                    raise BindError(
                        f"CASE WHEN condition must be boolean, got "
                        f"{condition_type.value} in {condition.to_sql()!r}"
                    )
                bound_result, branch_type = self._bind_expr(result, bound)
                result_type = (
                    branch_type
                    if result_type is None
                    else _common_type(result_type, branch_type, "CASE expression")
                )
                whens.append((bound_condition, bound_result))
            default: Optional[Expr] = None
            if expr.default is not None:
                default, default_type = self._bind_expr(expr.default, bound)
                result_type = _common_type(
                    result_type, default_type, "CASE expression"
                )
            return Case(whens=tuple(whens), default=default), (
                result_type or ExprType.NULL
            )
        raise BindError(f"unsupported expression type {type(expr).__name__}")

    @staticmethod
    def _literal_type(value: object) -> ExprType:
        if value is None:
            return ExprType.NULL
        if isinstance(value, bool):
            return ExprType.BOOL
        if isinstance(value, int):
            return ExprType.INT
        if isinstance(value, float):
            return ExprType.FLOAT
        return ExprType.TEXT

    # -- select list -------------------------------------------------------

    def _bind_select_item(self, item: SelectItem, bound: BoundQuery) -> SelectItem:
        if item.expr is None:  # COUNT(*)
            return SelectItem(
                expr=None,
                aggregate=item.aggregate,
                output_name=item.output_name,
                result_type=ColumnType.INT,
            )
        expr, expr_type = self._bind_expr(item.expr, bound)
        expr = fold_constants(expr)
        if item.aggregate in (AggregateFunc.SUM, AggregateFunc.AVG):
            if not expr_type.is_numeric():
                ref = item.column
                if ref is not None and ref.alias is not None:
                    # Keep the precise message for the common bare-column case.
                    resolved = self._resolve_column(ref, bound)
                    table = bound.table_for(resolved.alias)
                    raise BindError(
                        f"{item.aggregate.value.upper()}({resolved}) is not "
                        f"defined for text column {table}.{resolved.column}"
                    )
                raise BindError(
                    f"{item.aggregate.value.upper()}({expr.to_sql()}) needs a "
                    f"numeric argument, got {expr_type.value}"
                )
        result_type = self._aggregate_result_type(item.aggregate, expr_type)
        return SelectItem(
            expr=expr,
            aggregate=item.aggregate,
            output_name=item.output_name,
            result_type=result_type,
        )

    @staticmethod
    def _aggregate_result_type(
        aggregate: Optional[AggregateFunc], operand: ExprType
    ) -> Optional[ColumnType]:
        """Output type code of a select item (numeric widening rules)."""
        if aggregate is AggregateFunc.COUNT:
            return ColumnType.INT
        if aggregate is AggregateFunc.AVG:
            return ColumnType.FLOAT
        # MIN/MAX/SUM and plain expressions keep the operand's type.
        return operand.column_type()

    def _check_grouping_rules(self, bound: BoundQuery) -> None:
        """Enforce the standard grouped-select rules on the bound select list."""
        has_aggregate = any(
            item.aggregate is not None for item in bound.select_items
        )
        if bound.group_by:
            if not bound.select_items:
                raise BindError("SELECT * cannot be combined with GROUP BY")
            keys = {(ref.alias, ref.column) for ref in bound.group_by}
            for item in bound.select_items:
                if item.aggregate is not None or item.expr is None:
                    continue
                for ref in item.expr.referenced_columns():
                    if (ref.alias, ref.column) not in keys:
                        raise BindError(
                            f"column {ref} must appear in the GROUP BY "
                            "clause or be used in an aggregate function"
                        )
        elif has_aggregate:
            # The parser enforces the same rule with token positions for SQL
            # text (_check_bare_columns); this branch covers queries bound
            # from hand-built SelectQuery ASTs.
            for item in bound.select_items:
                if item.aggregate is None:
                    raise BindError(
                        f"bare column {item.expr} cannot be mixed with "
                        "aggregates without GROUP BY"
                    )

    # -- ORDER BY ----------------------------------------------------------

    def _bind_order_by(
        self, order_by: List[OrderItem], bound: BoundQuery
    ) -> List[BoundSortKey]:
        """Resolve ORDER BY keys against the query output.

        Keys normally resolve to *output* columns (``alias=""``), which the
        optimizer sorts above the projection.  An ungrouped, aggregate-free
        query may also order by columns it does not project; then every key
        is resolved against the base tables (``alias`` set) and the sort is
        planned below the projection.  ``SELECT DISTINCT`` requires every
        sort key in the select list (PostgreSQL's rule), since sorting
        non-projected columns of de-duplicated rows is meaningless.
        """
        if not order_by:
            return []
        if not bound.select_items:
            # SELECT *: the output keeps qualified base-table columns.
            return [
                BoundSortKey(
                    alias=(resolved := self._resolve_column(item.column, bound)).alias,
                    column=resolved.column,
                    ascending=item.ascending,
                )
                for item in order_by
            ]
        plain_query = not bound.group_by and all(
            select_item.aggregate is None for select_item in bound.select_items
        )
        can_sort_below = (
            plain_query
            and not bound.distinct
            and all(item.column is not None for item in bound.select_items)
        )
        matches = [self._match_output(item, bound) for item in order_by]
        if all(match is not None for match in matches):
            # The executor resolves output columns *by name*; a duplicate of
            # a matched name (repeated AS alias, or an alias colliding with
            # another item's synthetic positional ``colN``) would silently
            # address the wrong column at runtime.  Queries that can sort
            # below the projection fall through to base columns instead,
            # where output names are never consulted; everything else must
            # reject the ambiguity.
            names = [
                output_column_name(select_item, position)
                for position, select_item in enumerate(bound.select_items)
            ]
            conflicted = next(
                (
                    names[position]
                    for position in matches
                    if names.count(names[position]) > 1
                ),
                None,
            )
            if conflicted is None:
                return [
                    BoundSortKey(
                        alias="",
                        column=names[position],
                        ascending=item.ascending,
                    )
                    for item, position in zip(order_by, matches)
                ]
            if not can_sort_below:
                raise BindError(
                    f"ORDER BY resolves to output name {conflicted!r}, which "
                    "names more than one select item"
                )
        unmatched = next(
            (item for item, match in zip(order_by, matches) if match is None),
            None,
        )
        if unmatched is None:
            # Every key matched but an output name was conflicted: sort on
            # the matched items' base columns below the projection.
            return [
                BoundSortKey(
                    alias=bound.select_items[position].column.alias,
                    column=bound.select_items[position].column.column,
                    ascending=item.ascending,
                )
                for item, position in zip(order_by, matches)
            ]
        if not plain_query:
            # A typo'd column should report "no such column", not steer the
            # user toward projecting a column that does not exist.
            self._resolve_column(unmatched.column, bound)
            raise BindError(
                f"ORDER BY column {unmatched.column} must appear in the select "
                "list (order by an output name to sort on an aggregate)"
            )
        if bound.distinct:
            # As above: a typo'd column reports "no such column" first.
            self._resolve_column(unmatched.column, bound)
            raise BindError(
                f"for SELECT DISTINCT, ORDER BY column {unmatched.column} must "
                "appear in the select list"
            )
        if not can_sort_below:
            # Computed select items exist: the sort must happen above the
            # projection, so every key has to name an output column.
            self._resolve_column(unmatched.column, bound)
            raise BindError(
                f"ORDER BY column {unmatched.column} must appear in the select "
                "list when the select list contains computed expressions"
            )
        # Sort below the projection: keys that matched an output column keep
        # pointing at that select item's *base* column (so an AS alias still
        # wins even when it shadows a real column name); the rest resolve
        # against the base tables directly.
        keys: List[BoundSortKey] = []
        for item, match in zip(order_by, matches):
            if match is not None:
                base = bound.select_items[match].column
            else:
                base = self._resolve_column(item.column, bound)
            keys.append(
                BoundSortKey(
                    alias=base.alias, column=base.column, ascending=item.ascending
                )
            )
        return keys

    def _match_output(self, item: OrderItem, bound: BoundQuery) -> Optional[int]:
        """Match one ORDER BY key to a select-list position, if possible.

        Whether the matched item is then addressed by output name (sort
        above the projection) or by its base column (sort below) is the
        caller's decision.
        """
        ref = item.column
        # A bare name matching an explicit AS output name wins over column
        # resolution.  Two select items sharing the AS name make the
        # reference ambiguous (PostgreSQL's rule) — there is no position to
        # pick, not even for a below-projection sort.
        if ref.alias is None:
            positions = [
                position
                for position, select_item in enumerate(bound.select_items)
                if select_item.output_name == ref.column
            ]
            if len(positions) > 1:
                raise BindError(f"ORDER BY {ref.column!r} is ambiguous")
            if positions:
                return positions[0]
        try:
            resolved = self._resolve_column(ref, bound)
        except BindError:
            # Not a real column either: accept the synthetic positional
            # ``colN`` name (how BoundQuery.to_sql renders unnamed outputs).
            # Real columns take precedence over the fallback, so a table
            # column literally named ``col0`` is never shadowed by it.
            if ref.alias is None:
                for position, select_item in enumerate(bound.select_items):
                    if (
                        select_item.output_name is None
                        and f"col{position}" == ref.column
                    ):
                        return position
            return None
        for position, select_item in enumerate(bound.select_items):
            if select_item.aggregate is None and select_item.column == resolved:
                return position
        return None
