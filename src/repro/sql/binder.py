"""Name resolution: turn a parsed query into a bound query.

The binder resolves table aliases against the catalog, checks that every
referenced column exists, qualifies unqualified column references when they
are unambiguous, and splits the WHERE clause into per-alias filter
predicates and equi-join predicates.  The optimizer and the re-optimization
driver work exclusively on :class:`BoundQuery` objects.

Result shaping is validated here too:

* ``GROUP BY`` keys are resolved against the catalog, and every
  non-aggregate select item must be one of the group keys (the standard
  grouped-select rule);
* ``ORDER BY`` keys are resolved against the *output* of the query: for a
  projected/aggregated select list they become references to output columns
  (by ``AS`` name or by matching a select item), for ``SELECT *`` they stay
  qualified base-table columns;
* ``LIMIT``/``OFFSET``/``DISTINCT`` are carried through unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.schema import ColumnType
from repro.errors import BindError
from repro.sql.ast import (
    AggregateFunc,
    BetweenPredicate,
    ColumnRef,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    LikePredicate,
    NullPredicate,
    OrderItem,
    OrPredicate,
    Predicate,
    SelectItem,
    SelectQuery,
)


def output_column_name(item: SelectItem, position: int) -> str:
    """Output column name of one select item (``AS`` name or ``colN``).

    This is the naming rule shared by the binder (ORDER BY key resolution)
    and both executor engines.  ``Cursor.description`` deliberately renders
    friendlier display names (``count(c.id)``, ``c.symbol``) for unnamed
    items; give an item an ``AS`` name to make its display name ORDER
    BY-addressable.
    """
    return item.output_name or f"col{position}"


@dataclass(frozen=True)
class BoundSortKey:
    """A resolved ``ORDER BY`` key.

    ``alias`` is ``""`` when the key refers to an output column of the
    projected/aggregated result (named per :func:`output_column_name`), and a
    FROM-clause alias when the query is ``SELECT *`` and the key refers to a
    base-table column.  The executor resolves the pair against the final
    result's columns at runtime.
    """

    alias: str
    column: str
    ascending: bool = True

    def to_sql(self) -> str:
        """Render back to SQL."""
        name = f"{self.alias}.{self.column}" if self.alias else self.column
        return name if self.ascending else f"{name} DESC"

    def __str__(self) -> str:
        return self.to_sql()


@dataclass(frozen=True)
class BoundJoin:
    """A bound equi-join predicate between two aliases."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def aliases(self) -> Tuple[str, str]:
        """The two aliases this join connects."""
        return self.left_alias, self.right_alias

    def touches(self, alias: str) -> bool:
        """True if the join references ``alias`` on either side."""
        return alias in (self.left_alias, self.right_alias)

    def column_for(self, alias: str) -> str:
        """Return the join column on the side belonging to ``alias``."""
        if alias == self.left_alias:
            return self.left_column
        if alias == self.right_alias:
            return self.right_column
        raise BindError(f"join {self} does not reference alias {alias!r}")

    def other(self, alias: str) -> Tuple[str, str]:
        """Return ``(alias, column)`` of the side opposite to ``alias``."""
        if alias == self.left_alias:
            return self.right_alias, self.right_column
        if alias == self.right_alias:
            return self.left_alias, self.left_column
        raise BindError(f"join {self} does not reference alias {alias!r}")

    def to_sql(self) -> str:
        """Render back to SQL."""
        return (
            f"{self.left_alias}.{self.left_column} = "
            f"{self.right_alias}.{self.right_column}"
        )

    def __str__(self) -> str:
        return self.to_sql()


@dataclass
class BoundQuery:
    """A name-resolved select-project-join query.

    Attributes:
        name: optional workload-level query name (e.g. ``"q07a"``).
        aliases: FROM-clause aliases in declaration order.
        alias_tables: mapping of alias to catalog table name.
        select_items: bound output columns.
        filters: per-alias single-table filter predicates.
        joins: equi-join predicates.
        param_count: number of unbound ``?`` placeholders still present in
            the filter predicates (0 once parameters are substituted).
        distinct: drop duplicate output rows.
        group_by: fully qualified grouping keys (empty when ungrouped).
        order_by: resolved sort keys over the query output.
        limit: maximum output rows (``None`` for no limit).
        offset: output rows skipped before the limit applies.
    """

    name: Optional[str]
    aliases: List[str]
    alias_tables: Dict[str, str]
    select_items: List[SelectItem]
    filters: Dict[str, List[Predicate]] = field(default_factory=dict)
    joins: List[BoundJoin] = field(default_factory=list)
    param_count: int = 0
    distinct: bool = False
    group_by: List[ColumnRef] = field(default_factory=list)
    order_by: List[BoundSortKey] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None

    def table_for(self, alias: str) -> str:
        """Catalog table name for ``alias``."""
        try:
            return self.alias_tables[alias]
        except KeyError:
            raise BindError(f"unknown alias {alias!r} in query {self.name!r}") from None

    def filters_for(self, alias: str) -> List[Predicate]:
        """Filter predicates that apply to ``alias`` (possibly empty)."""
        return self.filters.get(alias, [])

    def joins_between(self, left_aliases, right_aliases) -> List[BoundJoin]:
        """Joins with one side in ``left_aliases`` and the other in ``right_aliases``."""
        left = set(left_aliases)
        right = set(right_aliases)
        matched = []
        for join in self.joins:
            a, b = join.aliases()
            if (a in left and b in right) or (a in right and b in left):
                matched.append(join)
        return matched

    def num_tables(self) -> int:
        """Number of FROM-clause tables."""
        return len(self.aliases)

    def to_sql(self) -> str:
        """Render the bound query back to SQL text."""
        select_items = self.select_items
        if select_items:
            select = ",\n       ".join(str(item) for item in select_items)
        else:
            select = "*"
        tables = ",\n     ".join(
            alias if alias == self.alias_tables[alias] else f"{self.alias_tables[alias]} AS {alias}"
            for alias in self.aliases
        )
        clauses: List[str] = []
        for alias in self.aliases:
            clauses.extend(p.to_sql() for p in self.filters_for(alias))
        clauses.extend(j.to_sql() for j in self.joins)
        prefix = "SELECT DISTINCT" if self.distinct else "SELECT"
        text = f"{prefix} {select}\nFROM {tables}"
        if clauses:
            text += "\nWHERE " + "\n  AND ".join(clauses)
        if self.group_by:
            text += "\nGROUP BY " + ", ".join(str(c) for c in self.group_by)
        if self.order_by:
            text += "\nORDER BY " + ", ".join(k.to_sql() for k in self.order_by)
        if self.limit is not None:
            text += f"\nLIMIT {self.limit}"
            if self.offset is not None:
                text += f" OFFSET {self.offset}"
        return text + ";"


class Binder:
    """Resolves parsed queries against a :class:`~repro.catalog.catalog.Catalog`."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def bind(self, query: SelectQuery) -> BoundQuery:
        """Bind a parsed query.

        Raises:
            BindError: on unknown tables/columns, ambiguous references,
                predicates spanning more than one table that are not
                equi-joins, or select lists violating the grouping rules.
        """
        alias_tables: Dict[str, str] = {}
        for table_ref in query.tables:
            if table_ref.alias in alias_tables:
                raise BindError(f"duplicate alias {table_ref.alias!r}")
            if table_ref.table not in self._catalog:
                raise BindError(f"unknown table {table_ref.table!r}")
            alias_tables[table_ref.alias] = table_ref.table

        aliases = list(alias_tables)
        bound = BoundQuery(
            name=query.name,
            aliases=aliases,
            alias_tables=alias_tables,
            select_items=[],
            param_count=query.param_count,
            distinct=query.distinct,
            limit=query.limit,
            offset=query.offset,
        )
        bound.select_items = [
            self._bind_select_item(item, bound) for item in query.select_items
        ]
        bound.group_by = [self._resolve_column(ref, bound) for ref in query.group_by]
        self._check_grouping_rules(bound)
        bound.order_by = self._bind_order_by(query.order_by, bound)

        for predicate in query.predicates:
            if isinstance(predicate, JoinPredicate):
                bound.joins.append(self._bind_join(predicate, bound))
            else:
                resolved = self._bind_filter(predicate, bound)
                alias = resolved.referenced_aliases()[0]
                bound.filters.setdefault(alias, []).append(resolved)
        return bound

    # -- helpers ----------------------------------------------------------

    def _resolve_column(self, ref: ColumnRef, bound: BoundQuery) -> ColumnRef:
        """Return a fully qualified column reference, validating existence."""
        if ref.alias is not None:
            table = bound.table_for(ref.alias)
            schema = self._catalog.schema(table)
            if not schema.has_column(ref.column):
                raise BindError(
                    f"table {table!r} (alias {ref.alias!r}) has no column {ref.column!r}"
                )
            return ref
        candidates = [
            alias
            for alias in bound.aliases
            if self._catalog.schema(bound.table_for(alias)).has_column(ref.column)
        ]
        if not candidates:
            raise BindError(f"column {ref.column!r} not found in any FROM table")
        if len(candidates) > 1:
            raise BindError(
                f"column {ref.column!r} is ambiguous between aliases {candidates}"
            )
        return ColumnRef(alias=candidates[0], column=ref.column)

    def _bind_select_item(self, item: SelectItem, bound: BoundQuery) -> SelectItem:
        if item.column is None:  # COUNT(*)
            return item
        column = self._resolve_column(item.column, bound)
        if item.aggregate in (AggregateFunc.SUM, AggregateFunc.AVG):
            table = bound.table_for(column.alias)
            col_type = self._catalog.schema(table).column(column.column).col_type
            if col_type is ColumnType.TEXT:
                raise BindError(
                    f"{item.aggregate.value.upper()}({column}) is not defined "
                    f"for text column {table}.{column.column}"
                )
        return SelectItem(
            column=column, aggregate=item.aggregate, output_name=item.output_name
        )

    def _check_grouping_rules(self, bound: BoundQuery) -> None:
        """Enforce the standard grouped-select rules on the bound select list."""
        has_aggregate = any(
            item.aggregate is not None for item in bound.select_items
        )
        if bound.group_by:
            if not bound.select_items:
                raise BindError("SELECT * cannot be combined with GROUP BY")
            keys = {(ref.alias, ref.column) for ref in bound.group_by}
            for item in bound.select_items:
                if item.aggregate is not None:
                    continue
                if (item.column.alias, item.column.column) not in keys:
                    raise BindError(
                        f"column {item.column} must appear in the GROUP BY "
                        "clause or be used in an aggregate function"
                    )
        elif has_aggregate:
            # The parser enforces the same rule with token positions for SQL
            # text (_check_bare_columns); this branch covers queries bound
            # from hand-built SelectQuery ASTs.
            for item in bound.select_items:
                if item.aggregate is None:
                    raise BindError(
                        f"bare column {item.column} cannot be mixed with "
                        "aggregates without GROUP BY"
                    )

    def _bind_order_by(
        self, order_by: List[OrderItem], bound: BoundQuery
    ) -> List[BoundSortKey]:
        """Resolve ORDER BY keys against the query output.

        Keys normally resolve to *output* columns (``alias=""``), which the
        optimizer sorts above the projection.  An ungrouped, aggregate-free
        query may also order by columns it does not project; then every key
        is resolved against the base tables (``alias`` set) and the sort is
        planned below the projection.  ``SELECT DISTINCT`` requires every
        sort key in the select list (PostgreSQL's rule), since sorting
        non-projected columns of de-duplicated rows is meaningless.
        """
        if not order_by:
            return []
        if not bound.select_items:
            # SELECT *: the output keeps qualified base-table columns.
            return [
                BoundSortKey(
                    alias=(resolved := self._resolve_column(item.column, bound)).alias,
                    column=resolved.column,
                    ascending=item.ascending,
                )
                for item in order_by
            ]
        plain_query = not bound.group_by and all(
            select_item.aggregate is None for select_item in bound.select_items
        )
        can_sort_below = plain_query and not bound.distinct
        matches = [self._match_output(item, bound) for item in order_by]
        if all(match is not None for match in matches):
            # The executor resolves output columns *by name*; a duplicate of
            # a matched name (repeated AS alias, or an alias colliding with
            # another item's synthetic positional ``colN``) would silently
            # address the wrong column at runtime.  Queries that can sort
            # below the projection fall through to base columns instead,
            # where output names are never consulted; everything else must
            # reject the ambiguity.
            names = [
                output_column_name(select_item, position)
                for position, select_item in enumerate(bound.select_items)
            ]
            conflicted = next(
                (
                    names[position]
                    for position in matches
                    if names.count(names[position]) > 1
                ),
                None,
            )
            if conflicted is None:
                return [
                    BoundSortKey(
                        alias="",
                        column=names[position],
                        ascending=item.ascending,
                    )
                    for item, position in zip(order_by, matches)
                ]
            if not can_sort_below:
                raise BindError(
                    f"ORDER BY resolves to output name {conflicted!r}, which "
                    "names more than one select item"
                )
        unmatched = next(
            (item for item, match in zip(order_by, matches) if match is None),
            None,
        )
        if unmatched is None:
            # Every key matched but an output name was conflicted: sort on
            # the matched items' base columns below the projection.
            return [
                BoundSortKey(
                    alias=bound.select_items[position].column.alias,
                    column=bound.select_items[position].column.column,
                    ascending=item.ascending,
                )
                for item, position in zip(order_by, matches)
            ]
        if not plain_query:
            # A typo'd column should report "no such column", not steer the
            # user toward projecting a column that does not exist.
            self._resolve_column(unmatched.column, bound)
            raise BindError(
                f"ORDER BY column {unmatched.column} must appear in the select "
                "list (order by an output name to sort on an aggregate)"
            )
        if bound.distinct:
            # As above: a typo'd column reports "no such column" first.
            self._resolve_column(unmatched.column, bound)
            raise BindError(
                f"for SELECT DISTINCT, ORDER BY column {unmatched.column} must "
                "appear in the select list"
            )
        # Sort below the projection: keys that matched an output column keep
        # pointing at that select item's *base* column (so an AS alias still
        # wins even when it shadows a real column name); the rest resolve
        # against the base tables directly.
        keys: List[BoundSortKey] = []
        for item, match in zip(order_by, matches):
            if match is not None:
                base = bound.select_items[match].column
            else:
                base = self._resolve_column(item.column, bound)
            keys.append(
                BoundSortKey(
                    alias=base.alias, column=base.column, ascending=item.ascending
                )
            )
        return keys

    def _match_output(self, item: OrderItem, bound: BoundQuery) -> Optional[int]:
        """Match one ORDER BY key to a select-list position, if possible.

        Whether the matched item is then addressed by output name (sort
        above the projection) or by its base column (sort below) is the
        caller's decision.
        """
        ref = item.column
        # A bare name matching an explicit AS output name wins over column
        # resolution.  Two select items sharing the AS name make the
        # reference ambiguous (PostgreSQL's rule) — there is no position to
        # pick, not even for a below-projection sort.
        if ref.alias is None:
            positions = [
                position
                for position, select_item in enumerate(bound.select_items)
                if select_item.output_name == ref.column
            ]
            if len(positions) > 1:
                raise BindError(f"ORDER BY {ref.column!r} is ambiguous")
            if positions:
                return positions[0]
        try:
            resolved = self._resolve_column(ref, bound)
        except BindError:
            # Not a real column either: accept the synthetic positional
            # ``colN`` name (how BoundQuery.to_sql renders unnamed outputs).
            # Real columns take precedence over the fallback, so a table
            # column literally named ``col0`` is never shadowed by it.
            if ref.alias is None:
                for position, select_item in enumerate(bound.select_items):
                    if (
                        select_item.output_name is None
                        and f"col{position}" == ref.column
                    ):
                        return position
            return None
        for position, select_item in enumerate(bound.select_items):
            if select_item.aggregate is None and select_item.column == resolved:
                return position
        return None

    def _bind_join(self, predicate: JoinPredicate, bound: BoundQuery) -> BoundJoin:
        left = self._resolve_column(predicate.left, bound)
        right = self._resolve_column(predicate.right, bound)
        if left.alias == right.alias:
            raise BindError(
                f"join predicate {predicate.to_sql()!r} references a single table"
            )
        return BoundJoin(
            left_alias=left.alias,
            left_column=left.column,
            right_alias=right.alias,
            right_column=right.column,
        )

    def _bind_filter(self, predicate: Predicate, bound: BoundQuery) -> Predicate:
        if isinstance(predicate, ComparisonPredicate):
            return ComparisonPredicate(
                self._resolve_column(predicate.column, bound),
                predicate.op,
                predicate.value,
            )
        if isinstance(predicate, InPredicate):
            return InPredicate(
                self._resolve_column(predicate.column, bound), predicate.values
            )
        if isinstance(predicate, LikePredicate):
            return LikePredicate(
                self._resolve_column(predicate.column, bound),
                predicate.pattern,
                predicate.negated,
            )
        if isinstance(predicate, BetweenPredicate):
            return BetweenPredicate(
                self._resolve_column(predicate.column, bound),
                predicate.low,
                predicate.high,
            )
        if isinstance(predicate, NullPredicate):
            return NullPredicate(
                self._resolve_column(predicate.column, bound), predicate.negated
            )
        if isinstance(predicate, OrPredicate):
            operands = tuple(
                self._bind_filter(operand, bound) for operand in predicate.operands
            )
            aliases = {op.referenced_aliases()[0] for op in operands}
            if len(aliases) != 1:
                raise BindError(
                    "OR predicates must reference exactly one table, "
                    f"found aliases {sorted(aliases)}"
                )
            return OrPredicate(operands)
        raise BindError(f"unsupported predicate type {type(predicate).__name__}")
