"""Name resolution: turn a parsed query into a bound query.

The binder resolves table aliases against the catalog, checks that every
referenced column exists, qualifies unqualified column references when they
are unambiguous, and splits the WHERE clause into per-alias filter
predicates and equi-join predicates.  The optimizer and the re-optimization
driver work exclusively on :class:`BoundQuery` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import BindError
from repro.sql.ast import (
    BetweenPredicate,
    ColumnRef,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    LikePredicate,
    NullPredicate,
    OrPredicate,
    Predicate,
    SelectItem,
    SelectQuery,
)


@dataclass(frozen=True)
class BoundJoin:
    """A bound equi-join predicate between two aliases."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def aliases(self) -> Tuple[str, str]:
        """The two aliases this join connects."""
        return self.left_alias, self.right_alias

    def touches(self, alias: str) -> bool:
        """True if the join references ``alias`` on either side."""
        return alias in (self.left_alias, self.right_alias)

    def column_for(self, alias: str) -> str:
        """Return the join column on the side belonging to ``alias``."""
        if alias == self.left_alias:
            return self.left_column
        if alias == self.right_alias:
            return self.right_column
        raise BindError(f"join {self} does not reference alias {alias!r}")

    def other(self, alias: str) -> Tuple[str, str]:
        """Return ``(alias, column)`` of the side opposite to ``alias``."""
        if alias == self.left_alias:
            return self.right_alias, self.right_column
        if alias == self.right_alias:
            return self.left_alias, self.left_column
        raise BindError(f"join {self} does not reference alias {alias!r}")

    def to_sql(self) -> str:
        """Render back to SQL."""
        return (
            f"{self.left_alias}.{self.left_column} = "
            f"{self.right_alias}.{self.right_column}"
        )

    def __str__(self) -> str:
        return self.to_sql()


@dataclass
class BoundQuery:
    """A name-resolved select-project-join query.

    Attributes:
        name: optional workload-level query name (e.g. ``"q07a"``).
        aliases: FROM-clause aliases in declaration order.
        alias_tables: mapping of alias to catalog table name.
        select_items: bound output columns.
        filters: per-alias single-table filter predicates.
        joins: equi-join predicates.
        param_count: number of unbound ``?`` placeholders still present in
            the filter predicates (0 once parameters are substituted).
    """

    name: Optional[str]
    aliases: List[str]
    alias_tables: Dict[str, str]
    select_items: List[SelectItem]
    filters: Dict[str, List[Predicate]] = field(default_factory=dict)
    joins: List[BoundJoin] = field(default_factory=list)
    param_count: int = 0

    def table_for(self, alias: str) -> str:
        """Catalog table name for ``alias``."""
        try:
            return self.alias_tables[alias]
        except KeyError:
            raise BindError(f"unknown alias {alias!r} in query {self.name!r}") from None

    def filters_for(self, alias: str) -> List[Predicate]:
        """Filter predicates that apply to ``alias`` (possibly empty)."""
        return self.filters.get(alias, [])

    def joins_between(self, left_aliases, right_aliases) -> List[BoundJoin]:
        """Joins with one side in ``left_aliases`` and the other in ``right_aliases``."""
        left = set(left_aliases)
        right = set(right_aliases)
        matched = []
        for join in self.joins:
            a, b = join.aliases()
            if (a in left and b in right) or (a in right and b in left):
                matched.append(join)
        return matched

    def num_tables(self) -> int:
        """Number of FROM-clause tables."""
        return len(self.aliases)

    def to_sql(self) -> str:
        """Render the bound query back to SQL text."""
        select_items = self.select_items
        if select_items:
            select = ",\n       ".join(str(item) for item in select_items)
        else:
            select = "*"
        tables = ",\n     ".join(
            alias if alias == self.alias_tables[alias] else f"{self.alias_tables[alias]} AS {alias}"
            for alias in self.aliases
        )
        clauses: List[str] = []
        for alias in self.aliases:
            clauses.extend(p.to_sql() for p in self.filters_for(alias))
        clauses.extend(j.to_sql() for j in self.joins)
        text = f"SELECT {select}\nFROM {tables}"
        if clauses:
            text += "\nWHERE " + "\n  AND ".join(clauses)
        return text + ";"


class Binder:
    """Resolves parsed queries against a :class:`~repro.catalog.catalog.Catalog`."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def bind(self, query: SelectQuery) -> BoundQuery:
        """Bind a parsed query.

        Raises:
            BindError: on unknown tables/columns, ambiguous references, or
                predicates spanning more than one table that are not
                equi-joins.
        """
        alias_tables: Dict[str, str] = {}
        for table_ref in query.tables:
            if table_ref.alias in alias_tables:
                raise BindError(f"duplicate alias {table_ref.alias!r}")
            if table_ref.table not in self._catalog:
                raise BindError(f"unknown table {table_ref.table!r}")
            alias_tables[table_ref.alias] = table_ref.table

        aliases = list(alias_tables)
        bound = BoundQuery(
            name=query.name,
            aliases=aliases,
            alias_tables=alias_tables,
            select_items=[],
            param_count=query.param_count,
        )
        bound.select_items = [
            self._bind_select_item(item, bound) for item in query.select_items
        ]

        for predicate in query.predicates:
            if isinstance(predicate, JoinPredicate):
                bound.joins.append(self._bind_join(predicate, bound))
            else:
                resolved = self._bind_filter(predicate, bound)
                alias = resolved.referenced_aliases()[0]
                bound.filters.setdefault(alias, []).append(resolved)
        return bound

    # -- helpers ----------------------------------------------------------

    def _resolve_column(self, ref: ColumnRef, bound: BoundQuery) -> ColumnRef:
        """Return a fully qualified column reference, validating existence."""
        if ref.alias is not None:
            table = bound.table_for(ref.alias)
            schema = self._catalog.schema(table)
            if not schema.has_column(ref.column):
                raise BindError(
                    f"table {table!r} (alias {ref.alias!r}) has no column {ref.column!r}"
                )
            return ref
        candidates = [
            alias
            for alias in bound.aliases
            if self._catalog.schema(bound.table_for(alias)).has_column(ref.column)
        ]
        if not candidates:
            raise BindError(f"column {ref.column!r} not found in any FROM table")
        if len(candidates) > 1:
            raise BindError(
                f"column {ref.column!r} is ambiguous between aliases {candidates}"
            )
        return ColumnRef(alias=candidates[0], column=ref.column)

    def _bind_select_item(self, item: SelectItem, bound: BoundQuery) -> SelectItem:
        column = self._resolve_column(item.column, bound)
        return SelectItem(
            column=column, aggregate=item.aggregate, output_name=item.output_name
        )

    def _bind_join(self, predicate: JoinPredicate, bound: BoundQuery) -> BoundJoin:
        left = self._resolve_column(predicate.left, bound)
        right = self._resolve_column(predicate.right, bound)
        if left.alias == right.alias:
            raise BindError(
                f"join predicate {predicate.to_sql()!r} references a single table"
            )
        return BoundJoin(
            left_alias=left.alias,
            left_column=left.column,
            right_alias=right.alias,
            right_column=right.column,
        )

    def _bind_filter(self, predicate: Predicate, bound: BoundQuery) -> Predicate:
        if isinstance(predicate, ComparisonPredicate):
            return ComparisonPredicate(
                self._resolve_column(predicate.column, bound),
                predicate.op,
                predicate.value,
            )
        if isinstance(predicate, InPredicate):
            return InPredicate(
                self._resolve_column(predicate.column, bound), predicate.values
            )
        if isinstance(predicate, LikePredicate):
            return LikePredicate(
                self._resolve_column(predicate.column, bound),
                predicate.pattern,
                predicate.negated,
            )
        if isinstance(predicate, BetweenPredicate):
            return BetweenPredicate(
                self._resolve_column(predicate.column, bound),
                predicate.low,
                predicate.high,
            )
        if isinstance(predicate, NullPredicate):
            return NullPredicate(
                self._resolve_column(predicate.column, bound), predicate.negated
            )
        if isinstance(predicate, OrPredicate):
            operands = tuple(
                self._bind_filter(operand, bound) for operand in predicate.operands
            )
            aliases = {op.referenced_aliases()[0] for op in operands}
            if len(aliases) != 1:
                raise BindError(
                    "OR predicates must reference exactly one table, "
                    f"found aliases {sorted(aliases)}"
                )
            return OrPredicate(operands)
        raise BindError(f"unsupported predicate type {type(predicate).__name__}")
