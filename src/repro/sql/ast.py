"""Abstract syntax tree for the supported SQL dialect.

The dialect covers what the Join Order Benchmark needs — conjunctive
select-project-join queries over base tables with aggregate
(``MIN``/``MAX``/``COUNT``/``SUM``/``AVG``/``COUNT(*)``) outputs, equality
joins, and single-table filter predicates (comparison, ``IN``, ``LIKE``,
``BETWEEN``, ``IS NULL``, disjunctions of these) — plus the result-shaping
clauses analytic workloads need: ``GROUP BY``, ``ORDER BY ... [ASC|DESC]``,
``LIMIT [OFFSET]`` and ``SELECT DISTINCT``.

The AST produced by the parser is *unbound*: column references carry an
optional alias qualifier and a column name but are not yet resolved against
the catalog.  :mod:`repro.sql.binder` turns a :class:`SelectQuery` into a
:class:`~repro.sql.binder.BoundQuery` the optimizer understands.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


class ComparisonOp(enum.Enum):
    """Binary comparison operators supported in filter predicates."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def evaluate(self, left, right) -> bool:
        """Apply the operator; NULL (None) operands never match."""
        if left is None or right is None:
            return False
        if self is ComparisonOp.EQ:
            return left == right
        if self is ComparisonOp.NE:
            return left != right
        if self is ComparisonOp.LT:
            return left < right
        if self is ComparisonOp.LE:
            return left <= right
        if self is ComparisonOp.GT:
            return left > right
        return left >= right

    def flipped(self) -> "ComparisonOp":
        """The operator with its operands swapped (e.g. ``<`` becomes ``>``)."""
        flip = {
            ComparisonOp.LT: ComparisonOp.GT,
            ComparisonOp.LE: ComparisonOp.GE,
            ComparisonOp.GT: ComparisonOp.LT,
            ComparisonOp.GE: ComparisonOp.LE,
        }
        return flip.get(self, self)


class AggregateFunc(enum.Enum):
    """Aggregate functions allowed in the select list."""

    MIN = "min"
    MAX = "max"
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"


@dataclass(frozen=True)
class Parameter:
    """A positional ``?`` placeholder in a prepared statement.

    Parameters stand in for literals inside filter predicates; they are
    numbered left to right in parse order and replaced with concrete values
    by :func:`repro.sql.params.bind_parameters` before planning.
    """

    index: int

    def __str__(self) -> str:
        return "?"


@dataclass(frozen=True)
class ColumnRef:
    """A possibly qualified column reference, e.g. ``t.production_year``."""

    alias: Optional[str]
    column: str

    def __str__(self) -> str:
        if self.alias:
            return f"{self.alias}.{self.column}"
        return self.column


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause with its alias (alias defaults to the name)."""

    table: str
    alias: str

    def __str__(self) -> str:
        if self.table == self.alias:
            return self.table
        return f"{self.table} AS {self.alias}"


@dataclass(frozen=True)
class SelectItem:
    """One output column: a plain column, an aggregate over a column, or ``COUNT(*)``.

    ``COUNT(*)`` is represented with ``aggregate=AggregateFunc.COUNT`` and
    ``column=None`` (``star`` is then True); every other item carries a
    column reference.
    """

    column: Optional[ColumnRef]
    aggregate: Optional[AggregateFunc] = None
    output_name: Optional[str] = None

    @property
    def star(self) -> bool:
        """True for ``COUNT(*)`` (the only column-less select item)."""
        return self.column is None

    def __str__(self) -> str:
        if self.aggregate is None:
            text = str(self.column)
        elif self.column is None:
            text = f"{self.aggregate.value}(*)"
        else:
            text = f"{self.aggregate.value}({self.column})"
        if self.output_name:
            text += f" AS {self.output_name}"
        return text


@dataclass(frozen=True)
class OrderItem:
    """One ``ORDER BY`` key: a column (or select-list output name) plus direction."""

    column: ColumnRef
    ascending: bool = True

    def __str__(self) -> str:
        return f"{self.column}{'' if self.ascending else ' DESC'}"


class Predicate:
    """Base class for WHERE-clause predicates."""

    def referenced_aliases(self) -> Tuple[str, ...]:
        """Aliases referenced by this predicate (deduplicated, ordered)."""
        raise NotImplementedError

    def to_sql(self) -> str:
        """Render the predicate back to SQL text."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_sql()


def _sql_literal(value: object) -> str:
    """Render a Python value as a SQL literal (or a ``?`` placeholder)."""
    if isinstance(value, Parameter):
        return "?"
    if value is None:
        return "NULL"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


@dataclass(frozen=True)
class ComparisonPredicate(Predicate):
    """``column OP literal`` over a single table."""

    column: ColumnRef
    op: ComparisonOp
    value: object

    def referenced_aliases(self) -> Tuple[str, ...]:
        return (self.column.alias,) if self.column.alias else ()

    def to_sql(self) -> str:
        return f"{self.column} {self.op.value} {_sql_literal(self.value)}"


@dataclass(frozen=True)
class InPredicate(Predicate):
    """``column IN (v1, v2, ...)``."""

    column: ColumnRef
    values: Tuple[object, ...]

    def referenced_aliases(self) -> Tuple[str, ...]:
        return (self.column.alias,) if self.column.alias else ()

    def to_sql(self) -> str:
        rendered = ", ".join(_sql_literal(v) for v in self.values)
        return f"{self.column} IN ({rendered})"


@dataclass(frozen=True)
class LikePredicate(Predicate):
    """``column [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    column: ColumnRef
    pattern: str
    negated: bool = False

    def referenced_aliases(self) -> Tuple[str, ...]:
        return (self.column.alias,) if self.column.alias else ()

    def to_sql(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.column} {op} {_sql_literal(self.pattern)}"


@dataclass(frozen=True)
class BetweenPredicate(Predicate):
    """``column BETWEEN low AND high`` (inclusive on both ends)."""

    column: ColumnRef
    low: object
    high: object

    def referenced_aliases(self) -> Tuple[str, ...]:
        return (self.column.alias,) if self.column.alias else ()

    def to_sql(self) -> str:
        return (
            f"{self.column} BETWEEN {_sql_literal(self.low)}"
            f" AND {_sql_literal(self.high)}"
        )


@dataclass(frozen=True)
class NullPredicate(Predicate):
    """``column IS [NOT] NULL``."""

    column: ColumnRef
    negated: bool = False

    def referenced_aliases(self) -> Tuple[str, ...]:
        return (self.column.alias,) if self.column.alias else ()

    def to_sql(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.column} {op}"


@dataclass(frozen=True)
class OrPredicate(Predicate):
    """Disjunction of single-table predicates that reference the same table."""

    operands: Tuple[Predicate, ...]

    def referenced_aliases(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for operand in self.operands:
            for alias in operand.referenced_aliases():
                if alias not in seen:
                    seen.append(alias)
        return tuple(seen)

    def to_sql(self) -> str:
        return "(" + " OR ".join(op.to_sql() for op in self.operands) + ")"


@dataclass(frozen=True)
class JoinPredicate(Predicate):
    """Equality join predicate ``a.x = b.y`` between two different tables."""

    left: ColumnRef
    right: ColumnRef

    def referenced_aliases(self) -> Tuple[str, ...]:
        aliases: List[str] = []
        for ref in (self.left, self.right):
            if ref.alias and ref.alias not in aliases:
                aliases.append(ref.alias)
        return tuple(aliases)

    def to_sql(self) -> str:
        return f"{self.left} = {self.right}"


FilterPredicate = Union[
    ComparisonPredicate,
    InPredicate,
    LikePredicate,
    BetweenPredicate,
    NullPredicate,
    OrPredicate,
]


@dataclass
class SelectQuery:
    """A parsed (unbound) select-project-join query with result shaping."""

    select_items: List[SelectItem]
    tables: List[TableRef]
    predicates: List[Predicate] = field(default_factory=list)
    name: Optional[str] = None
    #: Number of ``?`` placeholders, in parse order (0 for literal-only SQL).
    param_count: int = 0
    distinct: bool = False
    group_by: List[ColumnRef] = field(default_factory=list)
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None

    def table_aliases(self) -> List[str]:
        """Aliases of all FROM-clause tables, in declaration order."""
        return [t.alias for t in self.tables]

    def join_predicates(self) -> List[JoinPredicate]:
        """All join predicates in the WHERE clause."""
        return [p for p in self.predicates if isinstance(p, JoinPredicate)]

    def filter_predicates(self) -> List[Predicate]:
        """All non-join predicates in the WHERE clause."""
        return [p for p in self.predicates if not isinstance(p, JoinPredicate)]

    def to_sql(self) -> str:
        """Render the query back to SQL text."""
        select = ",\n       ".join(str(item) for item in self.select_items) or "*"
        tables = ",\n     ".join(str(t) for t in self.tables)
        prefix = "SELECT DISTINCT" if self.distinct else "SELECT"
        text = f"{prefix} {select}\nFROM {tables}"
        if self.predicates:
            where = "\n  AND ".join(p.to_sql() for p in self.predicates)
            text += f"\nWHERE {where}"
        if self.group_by:
            text += "\nGROUP BY " + ", ".join(str(c) for c in self.group_by)
        if self.order_by:
            text += "\nORDER BY " + ", ".join(str(k) for k in self.order_by)
        if self.limit is not None:
            text += f"\nLIMIT {self.limit}"
            if self.offset is not None:
                text += f" OFFSET {self.offset}"
        return text + ";"

    def __str__(self) -> str:
        return self.to_sql()


def single_table_alias(predicate: Predicate) -> Optional[str]:
    """Return the single alias a filter predicate references, if exactly one."""
    aliases = predicate.referenced_aliases()
    if len(aliases) == 1:
        return aliases[0]
    return None
