"""Abstract syntax tree for the supported SQL dialect.

The dialect covers what the Join Order Benchmark needs — select-project-join
queries over base tables with aggregate (``MIN``/``MAX``/``COUNT``/``SUM``/
``AVG``/``COUNT(*)``) outputs and equality joins — plus a full scalar
expression language and the result-shaping clauses analytic workloads need
(``GROUP BY``, ``ORDER BY ... [ASC|DESC]``, ``LIMIT [OFFSET]``,
``SELECT DISTINCT``).

WHERE clauses and select-list entries are built from one unified, typed
expression tree (:class:`Expr`): column references, literals, ``?``
parameters, arithmetic (``+ - * / %``, unary minus), all comparisons,
arbitrarily nested ``AND``/``OR``/``NOT``, ``IS [NOT] NULL``,
``[NOT] IN/LIKE/BETWEEN`` and ``CASE WHEN``.  There is no closed menu of
predicate shapes: the binder, the optimizer and both execution engines all
walk this one tree.

The AST produced by the parser is *unbound*: column references carry an
optional alias qualifier and a column name but are not yet resolved against
the catalog.  :mod:`repro.sql.binder` turns a :class:`SelectQuery` into a
:class:`~repro.sql.binder.BoundQuery` the optimizer understands.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple


class ComparisonOp(enum.Enum):
    """Binary comparison operators."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def apply(self, left, right) -> bool:
        """Apply the operator to two non-NULL values.

        NULL handling is the caller's job (:func:`repro.sql.values.compare`
        implements the three-valued rule).
        """
        if self is ComparisonOp.EQ:
            return left == right
        if self is ComparisonOp.NE:
            return left != right
        if self is ComparisonOp.LT:
            return left < right
        if self is ComparisonOp.LE:
            return left <= right
        if self is ComparisonOp.GT:
            return left > right
        return left >= right

    def flipped(self) -> "ComparisonOp":
        """The operator with its operands swapped (e.g. ``<`` becomes ``>``)."""
        flip = {
            ComparisonOp.LT: ComparisonOp.GT,
            ComparisonOp.LE: ComparisonOp.GE,
            ComparisonOp.GT: ComparisonOp.LT,
            ComparisonOp.GE: ComparisonOp.LE,
        }
        return flip.get(self, self)

    def negated(self) -> "ComparisonOp":
        """The three-valued complement (``NOT (a < b)`` is ``a >= b``)."""
        complement = {
            ComparisonOp.EQ: ComparisonOp.NE,
            ComparisonOp.NE: ComparisonOp.EQ,
            ComparisonOp.LT: ComparisonOp.GE,
            ComparisonOp.LE: ComparisonOp.GT,
            ComparisonOp.GT: ComparisonOp.LE,
            ComparisonOp.GE: ComparisonOp.LT,
        }
        return complement[self]


class ArithOp(enum.Enum):
    """Binary arithmetic operators."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"


class BoolConnective(enum.Enum):
    """N-ary boolean connectives."""

    AND = "AND"
    OR = "OR"


class AggregateFunc(enum.Enum):
    """Aggregate functions allowed in the select list."""

    MIN = "min"
    MAX = "max"
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"


@dataclass(frozen=True)
class Parameter:
    """A positional ``?`` placeholder in a prepared statement.

    Parameters stand in for literals inside expressions; they are numbered
    left to right in parse order and replaced with concrete values by
    :func:`repro.sql.params.bind_parameters` before planning.
    """

    index: int

    def __str__(self) -> str:
        return "?"


@dataclass(frozen=True)
class ColumnRef:
    """A possibly qualified column reference, e.g. ``t.production_year``."""

    alias: Optional[str]
    column: str

    def __str__(self) -> str:
        if self.alias:
            return f"{self.alias}.{self.column}"
        return self.column


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause with its alias (alias defaults to the name)."""

    table: str
    alias: str

    def __str__(self) -> str:
        if self.table == self.alias:
            return self.table
        return f"{self.table} AS {self.alias}"


# ---------------------------------------------------------------------------
# The unified expression tree
# ---------------------------------------------------------------------------


def sql_literal(value: object) -> str:
    """Render a Python value as a SQL literal (or a ``?`` placeholder)."""
    if isinstance(value, Parameter):
        return "?"
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


class Expr:
    """Base class of every node in the expression tree."""

    #: Binding precedence used by :meth:`to_sql` to parenthesize minimally.
    precedence: int = 10

    def children(self) -> Tuple["Expr", ...]:
        """Direct sub-expressions."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def referenced_columns(self) -> List[ColumnRef]:
        """All column references in the tree (deduplicated, first-seen order)."""
        seen: List[ColumnRef] = []
        for node in self.walk():
            if isinstance(node, Column) and node.ref not in seen:
                seen.append(node.ref)
        return seen

    def referenced_aliases(self) -> Tuple[str, ...]:
        """Aliases referenced by this expression (deduplicated, ordered)."""
        seen: List[str] = []
        for ref in self.referenced_columns():
            if ref.alias and ref.alias not in seen:
                seen.append(ref.alias)
        return tuple(seen)

    def to_sql(self) -> str:
        """Render the expression back to SQL text."""
        raise NotImplementedError

    def _operand_sql(self, operand: "Expr") -> str:
        """Render a child, parenthesized when it binds looser than this node."""
        text = operand.to_sql()
        if operand.precedence < self.precedence:
            return f"({text})"
        return text

    def __str__(self) -> str:
        return self.to_sql()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value (``NULL``, number, string, or a folded boolean)."""

    value: object

    def to_sql(self) -> str:
        return sql_literal(self.value)


@dataclass(frozen=True)
class Param(Expr):
    """A ``?`` placeholder as an expression leaf."""

    parameter: Parameter

    @property
    def index(self) -> int:
        """Position of the placeholder (parse order)."""
        return self.parameter.index

    def to_sql(self) -> str:
        return "?"


@dataclass(frozen=True)
class Column(Expr):
    """A column reference leaf."""

    ref: ColumnRef

    @property
    def alias(self) -> Optional[str]:
        """Table alias of the reference (``None`` while unbound)."""
        return self.ref.alias

    @property
    def column(self) -> str:
        """Column name of the reference."""
        return self.ref.column

    def to_sql(self) -> str:
        return str(self.ref)


def column(alias: Optional[str], name: str) -> Column:
    """Shorthand for building a column-reference expression."""
    return Column(ColumnRef(alias=alias, column=name))


@dataclass(frozen=True)
class Arithmetic(Expr):
    """Binary arithmetic: ``left op right``."""

    op: ArithOp
    left: Expr
    right: Expr

    @property
    def precedence(self) -> int:  # type: ignore[override]
        return 6 if self.op in (ArithOp.MUL, ArithOp.DIV, ArithOp.MOD) else 5

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def to_sql(self) -> str:
        # The parser is left-associative, so a left child of equal precedence
        # re-parses into the same tree; a *right* child of equal precedence
        # must keep its parentheses (``a - (b - c)`` is not ``a - b - c``,
        # and even ``a + (b + c)`` must round-trip tree-identically so float
        # accumulation order survives to_sql -> parse).
        left = self._operand_sql(self.left)
        right = self.right.to_sql()
        if self.right.precedence <= self.precedence:
            right = f"({right})"
        return f"{left} {self.op.value} {right}"


@dataclass(frozen=True)
class Negate(Expr):
    """Unary minus."""

    operand: Expr
    precedence = 7

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        return f"-{self._operand_sql(self.operand)}"


@dataclass(frozen=True)
class Comparison(Expr):
    """Binary comparison between two scalar expressions."""

    op: ComparisonOp
    left: Expr
    right: Expr
    precedence = 4

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def to_sql(self) -> str:
        return (
            f"{self._operand_sql(self.left)} {self.op.value} "
            f"{self._operand_sql(self.right)}"
        )


@dataclass(frozen=True)
class IsNull(Expr):
    """``operand IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False
    precedence = 4

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self._operand_sql(self.operand)} {op}"


@dataclass(frozen=True)
class InList(Expr):
    """``operand [NOT] IN (item, item, ...)``."""

    operand: Expr
    items: Tuple[Expr, ...]
    negated: bool = False
    precedence = 4

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,) + self.items

    def to_sql(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        rendered = ", ".join(item.to_sql() for item in self.items)
        return f"{self._operand_sql(self.operand)} {op} ({rendered})"


@dataclass(frozen=True)
class Like(Expr):
    """``operand [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expr
    pattern: Expr
    negated: bool = False
    precedence = 4

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand, self.pattern)

    def to_sql(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"{self._operand_sql(self.operand)} {op} {self.pattern.to_sql()}"


@dataclass(frozen=True)
class Between(Expr):
    """``operand [NOT] BETWEEN low AND high`` (inclusive on both ends)."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False
    precedence = 4

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand, self.low, self.high)

    def to_sql(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"{self._operand_sql(self.operand)} {op} "
            f"{self._operand_sql(self.low)} AND {self._operand_sql(self.high)}"
        )


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    operand: Expr
    precedence = 3

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        return f"NOT {self._operand_sql(self.operand)}"


@dataclass(frozen=True)
class BoolExpr(Expr):
    """N-ary ``AND``/``OR`` over boolean operands (flattened)."""

    op: BoolConnective
    operands: Tuple[Expr, ...]

    @property
    def precedence(self) -> int:  # type: ignore[override]
        return 2 if self.op is BoolConnective.AND else 1

    def children(self) -> Tuple[Expr, ...]:
        return self.operands

    def to_sql(self) -> str:
        joiner = f" {self.op.value} "
        return joiner.join(self._operand_sql(operand) for operand in self.operands)


def conjunction(operands: List[Expr]) -> Expr:
    """AND the operands together (flattening nested ANDs; empty -> TRUE)."""
    flattened: List[Expr] = []
    for operand in operands:
        if isinstance(operand, BoolExpr) and operand.op is BoolConnective.AND:
            flattened.extend(operand.operands)
        else:
            flattened.append(operand)
    if not flattened:
        return Literal(True)
    if len(flattened) == 1:
        return flattened[0]
    return BoolExpr(BoolConnective.AND, tuple(flattened))


def split_conjuncts(expr: Expr) -> List[Expr]:
    """Flatten a tree at its top-level ANDs into a conjunct list."""
    if isinstance(expr, BoolExpr) and expr.op is BoolConnective.AND:
        out: List[Expr] = []
        for operand in expr.operands:
            out.extend(split_conjuncts(operand))
        return out
    return [expr]


def render_conjunct(expr: Expr) -> str:
    """Render one WHERE conjunct, parenthesized when its root is AND/OR.

    The single parenthesization rule shared by unbound and bound query
    rendering and by EXPLAIN's predicate detail lines.
    """
    text = expr.to_sql()
    if expr.precedence <= 2:
        return f"({text})"
    return text


def disjunction(operands: List[Expr]) -> Expr:
    """OR the operands together (flattening nested ORs; empty -> FALSE)."""
    flattened: List[Expr] = []
    for operand in operands:
        if isinstance(operand, BoolExpr) and operand.op is BoolConnective.OR:
            flattened.extend(operand.operands)
        else:
            flattened.append(operand)
    if not flattened:
        return Literal(False)
    if len(flattened) == 1:
        return flattened[0]
    return BoolExpr(BoolConnective.OR, tuple(flattened))


@dataclass(frozen=True)
class Case(Expr):
    """``CASE WHEN cond THEN result ... [ELSE default] END``."""

    whens: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr] = None

    def children(self) -> Tuple[Expr, ...]:
        parts: List[Expr] = []
        for condition, result in self.whens:
            parts.append(condition)
            parts.append(result)
        if self.default is not None:
            parts.append(self.default)
        return tuple(parts)

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, result in self.whens:
            parts.append(f"WHEN {condition.to_sql()} THEN {result.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


def transform_expr(expr: Expr, fn) -> Expr:
    """Rebuild an expression bottom-up, applying ``fn`` to every node.

    Children are transformed first, the node is rebuilt with the transformed
    children, then ``fn`` maps the rebuilt node to its replacement.  Used for
    parameter substitution, literal lifting and alias remapping.
    """
    if isinstance(expr, Arithmetic):
        rebuilt: Expr = Arithmetic(
            expr.op, transform_expr(expr.left, fn), transform_expr(expr.right, fn)
        )
    elif isinstance(expr, Negate):
        rebuilt = Negate(transform_expr(expr.operand, fn))
    elif isinstance(expr, Comparison):
        rebuilt = Comparison(
            expr.op, transform_expr(expr.left, fn), transform_expr(expr.right, fn)
        )
    elif isinstance(expr, IsNull):
        rebuilt = IsNull(transform_expr(expr.operand, fn), negated=expr.negated)
    elif isinstance(expr, InList):
        rebuilt = InList(
            transform_expr(expr.operand, fn),
            tuple(transform_expr(item, fn) for item in expr.items),
            negated=expr.negated,
        )
    elif isinstance(expr, Like):
        rebuilt = Like(
            transform_expr(expr.operand, fn),
            transform_expr(expr.pattern, fn),
            negated=expr.negated,
        )
    elif isinstance(expr, Between):
        rebuilt = Between(
            transform_expr(expr.operand, fn),
            transform_expr(expr.low, fn),
            transform_expr(expr.high, fn),
            negated=expr.negated,
        )
    elif isinstance(expr, Not):
        rebuilt = Not(transform_expr(expr.operand, fn))
    elif isinstance(expr, BoolExpr):
        rebuilt = BoolExpr(
            expr.op, tuple(transform_expr(operand, fn) for operand in expr.operands)
        )
    elif isinstance(expr, Case):
        rebuilt = Case(
            whens=tuple(
                (transform_expr(condition, fn), transform_expr(result, fn))
                for condition, result in expr.whens
            ),
            default=(
                transform_expr(expr.default, fn)
                if expr.default is not None
                else None
            ),
        )
    else:  # leaves: Literal, Param, Column
        rebuilt = expr
    return fn(rebuilt)


def single_table_alias(expr: Expr) -> Optional[str]:
    """Return the single alias an expression references, if exactly one."""
    aliases = expr.referenced_aliases()
    if len(aliases) == 1:
        return aliases[0]
    return None


# ---------------------------------------------------------------------------
# Select list and query
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One output column: an expression, optionally aggregated, or ``COUNT(*)``.

    ``COUNT(*)`` is represented with ``aggregate=AggregateFunc.COUNT`` and
    ``expr=None`` (``star`` is then True); every other item carries an
    expression (a bare column, or any computed scalar — aggregates fold over
    the expression's per-row values, so ``SUM(a*b)`` is just an aggregate
    item whose ``expr`` is ``a*b``).

    ``result_type`` is filled in by the binder (the inferred
    :class:`~repro.catalog.schema.ColumnType` of the output column, used by
    ``Cursor.description``); it is ``None`` on unbound items.
    """

    expr: Optional[Expr]
    aggregate: Optional[AggregateFunc] = None
    output_name: Optional[str] = None
    result_type: Optional[object] = None

    @property
    def star(self) -> bool:
        """True for ``COUNT(*)`` (the only expression-less select item)."""
        return self.expr is None

    @property
    def column(self) -> Optional[ColumnRef]:
        """The bare column reference, when the expression is exactly one."""
        if isinstance(self.expr, Column):
            return self.expr.ref
        return None

    def __str__(self) -> str:
        if self.aggregate is None:
            text = self.expr.to_sql()
        elif self.expr is None:
            text = f"{self.aggregate.value}(*)"
        else:
            text = f"{self.aggregate.value}({self.expr.to_sql()})"
        if self.output_name:
            text += f" AS {self.output_name}"
        return text


def select_column(
    alias: Optional[str],
    name: str,
    aggregate: Optional[AggregateFunc] = None,
    output_name: Optional[str] = None,
) -> SelectItem:
    """Shorthand for a plain (or aggregated) column select item."""
    return SelectItem(
        expr=column(alias, name), aggregate=aggregate, output_name=output_name
    )


@dataclass(frozen=True)
class OrderItem:
    """One ``ORDER BY`` key: a column (or select-list output name) plus direction."""

    column: ColumnRef
    ascending: bool = True

    def __str__(self) -> str:
        return f"{self.column}{'' if self.ascending else ' DESC'}"


@dataclass
class SelectQuery:
    """A parsed (unbound) select-project-join query with result shaping.

    ``predicates`` holds the WHERE clause split at its top-level ``AND``s,
    in source order; each entry is an arbitrary boolean :class:`Expr`.
    """

    select_items: List[SelectItem]
    tables: List[TableRef]
    predicates: List[Expr] = field(default_factory=list)
    name: Optional[str] = None
    #: Number of ``?`` placeholders, in parse order (0 for literal-only SQL).
    param_count: int = 0
    distinct: bool = False
    group_by: List[ColumnRef] = field(default_factory=list)
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None

    def table_aliases(self) -> List[str]:
        """Aliases of all FROM-clause tables, in declaration order."""
        return [t.alias for t in self.tables]

    def to_sql(self) -> str:
        """Render the query back to SQL text."""
        select = ",\n       ".join(str(item) for item in self.select_items) or "*"
        tables = ",\n     ".join(str(t) for t in self.tables)
        prefix = "SELECT DISTINCT" if self.distinct else "SELECT"
        text = f"{prefix} {select}\nFROM {tables}"
        if self.predicates:
            where = "\n  AND ".join(render_conjunct(p) for p in self.predicates)
            text += f"\nWHERE {where}"
        if self.group_by:
            text += "\nGROUP BY " + ", ".join(str(c) for c in self.group_by)
        if self.order_by:
            text += "\nORDER BY " + ", ".join(str(k) for k in self.order_by)
        if self.limit is not None:
            text += f"\nLIMIT {self.limit}"
            if self.offset is not None:
                text += f" OFFSET {self.offset}"
        return text + ";"

    def __str__(self) -> str:
        return self.to_sql()
