"""Serving-loop configuration and admission control.

Admission control is a bounded FIFO in front of the worker pool: a
statement either takes a queue slot (possibly waiting up to
``admission_timeout``) or is *shed* with
:class:`~repro.errors.AdmissionError` — the server never builds an
unbounded backlog, so tail latency under overload stays bounded and the
client gets an immediate, retryable signal instead of a hang.
"""

from __future__ import annotations

import queue
from dataclasses import dataclass
from typing import Optional

from repro.errors import AdmissionError

__all__ = ["AdmissionQueue", "ServerConfig"]


@dataclass
class ServerConfig:
    """Knobs of a :class:`~repro.server.server.Server`.

    Attributes:
        workers: statement-executing worker threads.
        queue_depth: bounded admission queue capacity; statements beyond
            ``workers + queue_depth`` in flight are shed.
        admission_timeout: seconds a submission may wait for a queue slot
            before being shed; ``0`` sheds immediately when the queue is
            full.
        plan_cache_size: capacity of the process-wide shared plan cache
            (``None`` uses the engine default, ``0`` disables caching).
        reoptimize: serve statements through the re-optimization loop.
        adaptive: operator-level adaptive execution (``None`` follows the
            database's ``adaptive`` setting).
    """

    workers: int = 4
    queue_depth: int = 32
    admission_timeout: float = 0.0
    plan_cache_size: Optional[int] = None
    reoptimize: bool = True
    adaptive: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("server needs at least one worker")
        if self.queue_depth < 1:
            raise ValueError("admission queue depth must be positive")
        if self.admission_timeout < 0:
            raise ValueError("admission timeout must be non-negative")


class AdmissionQueue:
    """A bounded FIFO that sheds instead of blocking indefinitely."""

    def __init__(self, depth: int, timeout: float = 0.0) -> None:
        self._queue: "queue.Queue" = queue.Queue(maxsize=depth)
        self.timeout = timeout

    def admit(self, item) -> None:
        """Enqueue ``item`` or raise :class:`AdmissionError`.

        Waits up to the configured admission timeout for a slot; with a
        zero timeout a full queue sheds immediately.
        """
        try:
            if self.timeout > 0:
                self._queue.put(item, timeout=self.timeout)
            else:
                self._queue.put_nowait(item)
        except queue.Full:
            raise AdmissionError(
                "admission queue is full; statement shed "
                f"(depth={self._queue.maxsize}, timeout={self.timeout}s)"
            ) from None

    def force_put(self, item) -> None:
        """Enqueue bypassing the bound (used for worker shutdown sentinels)."""
        # queue.Queue has no unbounded put on a bounded queue; blocking is
        # fine here because workers are draining towards shutdown.
        self._queue.put(item)

    def get(self):
        """Blocking take (worker side)."""
        return self._queue.get()

    def __len__(self) -> int:
        return self._queue.qsize()
