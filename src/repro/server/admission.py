"""Serving-loop configuration and admission control.

Admission control is a bounded FIFO in front of the worker pool: a
statement either takes a queue slot (possibly waiting up to
``admission_timeout``) or is *shed* with
:class:`~repro.errors.AdmissionError` — the server never builds an
unbounded backlog, so tail latency under overload stays bounded and the
client gets an immediate, retryable signal instead of a hang.
"""

from __future__ import annotations

import dataclasses
import difflib
import queue
from dataclasses import dataclass
from typing import Optional

from repro.errors import AdmissionError, ConfigError

__all__ = ["AdmissionQueue", "ServerConfig"]


@dataclass
class ServerConfig:
    """Knobs of a :class:`~repro.server.server.Server`.

    Attributes:
        workers: statement-executing worker threads.
        queue_depth: bounded admission queue capacity; statements beyond
            ``workers + queue_depth`` in flight are shed.
        admission_timeout: seconds a submission may wait for a queue slot
            before being shed; ``0`` sheds immediately when the queue is
            full.
        plan_cache_size: capacity of the process-wide shared plan cache
            (``None`` uses the engine default, ``0`` disables caching).
        reoptimize: serve statements through the re-optimization loop.
        adaptive: operator-level adaptive execution (``None`` follows the
            database's ``adaptive`` setting).
    """

    workers: int = 4
    queue_depth: int = 32
    admission_timeout: float = 0.0
    plan_cache_size: Optional[int] = None
    reoptimize: bool = True
    adaptive: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError("server needs at least one worker")
        if self.queue_depth < 1:
            raise ConfigError("admission queue depth must be positive")
        if self.admission_timeout < 0:
            raise ConfigError("admission timeout must be non-negative")

    def replace(self, **overrides: object) -> "ServerConfig":
        """A validated copy with ``overrides`` applied.

        Mirrors :meth:`repro.engine.settings.EngineSettings.replace`:
        unknown field names raise :class:`~repro.errors.ConfigError` naming
        the nearest valid field.
        """
        valid = {f.name for f in dataclasses.fields(self)}
        for key in overrides:
            if key not in valid:
                close = difflib.get_close_matches(key, sorted(valid), n=1)
                hint = f"; did you mean {close[0]!r}?" if close else ""
                raise ConfigError(f"unknown server setting {key!r}{hint}")
        return dataclasses.replace(self, **overrides)

    @classmethod
    def resolve(
        cls, config: "Optional[ServerConfig]" = None, **overrides: object
    ) -> "ServerConfig":
        """Lower keyword overrides onto ``config`` (or the defaults).

        The same precedence rule as ``connect()``: explicit (non-``None``)
        keyword > config object > defaults.
        """
        base = config if config is not None else cls()
        supplied = {k: v for k, v in overrides.items() if v is not None}
        return base.replace(**supplied)


class AdmissionQueue:
    """A bounded FIFO that sheds instead of blocking indefinitely."""

    def __init__(self, depth: int, timeout: float = 0.0) -> None:
        self._queue: "queue.Queue" = queue.Queue(maxsize=depth)
        self.timeout = timeout

    def admit(self, item) -> None:
        """Enqueue ``item`` or raise :class:`AdmissionError`.

        Waits up to the configured admission timeout for a slot; with a
        zero timeout a full queue sheds immediately.
        """
        try:
            if self.timeout > 0:
                self._queue.put(item, timeout=self.timeout)
            else:
                self._queue.put_nowait(item)
        except queue.Full:
            raise AdmissionError(
                "admission queue is full; statement shed "
                f"(depth={self._queue.maxsize}, timeout={self.timeout}s)"
            ) from None

    def force_put(self, item) -> None:
        """Enqueue bypassing the bound (used for worker shutdown sentinels)."""
        # queue.Queue has no unbounded put on a bounded queue; blocking is
        # fine here because workers are draining towards shutdown.
        self._queue.put(item)

    def get(self):
        """Blocking take (worker side)."""
        return self._queue.get()

    def __len__(self) -> int:
        return self._queue.qsize()
