"""Threaded serving layer: many client sessions over one shared database.

Quick start::

    from repro.server import Server, ServerConfig

    server = Server(database, ServerConfig(workers=4, queue_depth=32))
    with server:
        session = server.session()
        result = session.execute("SELECT COUNT(*) FROM trades")
        print(result.rows, result.latency_seconds)

See :mod:`repro.server.server` for the serving loop,
:mod:`repro.server.session` for snapshot semantics, and
:mod:`repro.server.admission` for the admission-control knobs.
"""

from repro.server.admission import AdmissionQueue, ServerConfig
from repro.server.server import Server, ServerStats
from repro.server.session import ServerSession, StatementResult

__all__ = [
    "AdmissionQueue",
    "Server",
    "ServerConfig",
    "ServerSession",
    "ServerStats",
    "StatementResult",
]
