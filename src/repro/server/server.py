"""The threaded serving loop: one shared database, many client sessions.

A :class:`Server` multiplexes statements from any number of
:class:`~repro.server.session.ServerSession` handles over one shared
:class:`~repro.engine.database.Database`:

* a fixed pool of worker threads executes statements, each against a
  copy-on-write snapshot pinned at statement start;
* a bounded admission queue in front of the pool sheds excess load with
  :class:`~repro.errors.AdmissionError` instead of building unbounded
  backlog;
* one process-wide thread-safe :class:`~repro.engine.plancache.PlanCache`
  is shared by every session, keyed on normalized SQL plus catalog epoch;
* :class:`ServerStats` aggregates end-to-end latency (queueing included)
  into the p50/p99 numbers the serving benchmark reports.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from typing import List, Optional, Sequence

from repro.engine.database import Database
from repro.engine.plancache import PlanCache
from repro.errors import AdmissionError, ServerError
from repro.server.admission import AdmissionQueue, ServerConfig
from repro.server.session import ServerSession, StatementResult

__all__ = ["Server", "ServerStats"]

#: Sentinel telling a worker thread to exit its loop.
_SHUTDOWN = object()


class ServerStats:
    """Thread-safe aggregate accounting of a server's lifetime."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.statements = 0
        self.rows_returned = 0
        self.errors = 0
        self.shed = 0
        self.reoptimized = 0
        self._latencies: List[float] = []

    def record(self, result: StatementResult, latency_seconds: float) -> None:
        """Fold one successful statement (end-to-end latency) in."""
        with self._lock:
            self.statements += 1
            self.rows_returned += result.rowcount
            if result.reoptimized:
                self.reoptimized += 1
            self._latencies.append(latency_seconds)

    def record_error(self) -> None:
        """Count a statement that raised."""
        with self._lock:
            self.errors += 1

    def record_shed(self) -> None:
        """Count a statement rejected by admission control."""
        with self._lock:
            self.shed += 1

    def latencies(self) -> List[float]:
        """A copy of all recorded end-to-end latencies, in completion order."""
        with self._lock:
            return list(self._latencies)

    def percentile(self, q: float) -> float:
        """The ``q``-th latency percentile in seconds (0 when unused)."""
        with self._lock:
            if not self._latencies:
                return 0.0
            ordered = sorted(self._latencies)
            rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
            return ordered[rank]

    @property
    def p50_seconds(self) -> float:
        """Median end-to-end statement latency."""
        return self.percentile(50.0)

    @property
    def p99_seconds(self) -> float:
        """99th-percentile end-to-end statement latency."""
        return self.percentile(99.0)


class Server:
    """A threaded serving loop over one shared :class:`Database`."""

    def __init__(
        self,
        database: Optional[Database] = None,
        config: Optional[ServerConfig] = None,
        **overrides: object,
    ) -> None:
        """Start the serving loop.

        Configuration follows the same precedence rule as ``connect()``:
        any :class:`~repro.server.admission.ServerConfig` field may be
        passed as a keyword (``Server(db, workers=8)``) and lowers onto
        ``config``; unknown keywords raise
        :class:`~repro.errors.ConfigError` naming the nearest valid field.
        """
        self.database = database if database is not None else Database()
        self.config = ServerConfig.resolve(config, **overrides)
        cache_size = self.config.plan_cache_size
        if cache_size is None:
            cache_size = self.database.settings.plan_cache_size
        #: Process-wide plan cache shared by every session (thread-safe).
        self.plan_cache = PlanCache(cache_size)
        self.stats = ServerStats()
        self._queue = AdmissionQueue(
            self.config.queue_depth, self.config.admission_timeout
        )
        self._session_ids = itertools.count(1)
        self._closed = False
        self._lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called."""
        return self._closed

    def close(self) -> None:
        """Drain queued statements, stop the workers and reject new work."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # FIFO order: everything admitted before close still executes, each
        # worker exits when it takes its sentinel.
        for _ in self._workers:
            self._queue.force_put(_SHUTDOWN)
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- sessions and statements --------------------------------------------

    def session(
        self,
        *,
        reoptimize: Optional[bool] = None,
        adaptive: Optional[bool] = None,
    ) -> ServerSession:
        """Open a new client session (cheap; no thread is dedicated to it)."""
        if self._closed:
            raise ServerError("server is closed")
        return ServerSession(
            self,
            next(self._session_ids),
            reoptimize=reoptimize,
            adaptive=adaptive,
        )

    def submit(
        self,
        session: ServerSession,
        sql: str,
        params: Optional[Sequence[object]] = None,
    ) -> "Future[StatementResult]":
        """Admit one statement into the worker pool.

        Returns a future resolving to a
        :class:`~repro.server.session.StatementResult`; raises
        :class:`~repro.errors.AdmissionError` when the bounded queue sheds
        the statement.
        """
        if self._closed:
            raise ServerError("server is closed")
        future: "Future[StatementResult]" = Future()
        enqueued = time.perf_counter()
        try:
            self._queue.admit((session, sql, params, future, enqueued))
        except AdmissionError:
            self.stats.record_shed()
            raise
        return future

    def execute(
        self,
        sql: str,
        params: Optional[Sequence[object]] = None,
        timeout: Optional[float] = None,
    ) -> StatementResult:
        """One-shot convenience: serve a statement on a throwaway session."""
        return self.session().execute(sql, params, timeout=timeout)

    # -- worker side --------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            session, sql, params, future, enqueued = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                result = session._run_statement(sql, params)
            except BaseException as exc:  # noqa: BLE001 - relayed to the client
                self.stats.record_error()
                future.set_exception(exc)
            else:
                self.stats.record(result, time.perf_counter() - enqueued)
                future.set_result(result)
