"""Per-client sessions of the threaded serving loop.

A :class:`ServerSession` is one client's view of the shared database.  Each
statement it serves:

1. pins a :class:`~repro.engine.snapshot.SnapshotDatabase` (copy-on-write
   table views at the current catalog epoch) — readers never block, and are
   never torn by, concurrent ANALYZE/DDL/loads;
2. runs the ordinary interceptor pipeline over that snapshot — per-session
   metrics, the **process-wide shared plan cache** (keyed on normalized SQL
   plus the pinned epoch, so sessions at the same epoch share plans), and
   the re-optimization loop innermost;
3. returns an immutable :class:`StatementResult` carrying the rows, PEP 249
   description, the pinned epoch and latency accounting.

Sessions follow the DB-API ``threadsafety=1`` model: one session serves one
client, one statement at a time (drive several futures concurrently from
several sessions, not one).  Writes (:meth:`ServerSession.analyze`,
:meth:`create_table`, :meth:`load_rows`, :meth:`create_index`) go straight
to the shared database under the catalog lock and become visible to
statements pinned afterwards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING, Union

from repro.engine.connection import ColumnDescription, _describe
from repro.engine.pipeline import (
    ConnectionMetrics,
    FeedbackHarvestInterceptor,
    MetricsInterceptor,
    PlanCacheInterceptor,
    QueryContext,
    QueryInterceptor,
    QueryPipeline,
)
from repro.errors import ServerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future
    from repro.server.server import Server

__all__ = ["ServerSession", "StatementResult"]


@dataclass(frozen=True)
class StatementResult:
    """The finished, immutable outcome of one served statement."""

    rows: Tuple[tuple, ...]
    description: Tuple[ColumnDescription, ...]
    #: Catalog epoch the statement's snapshot was pinned at.
    epoch: int
    plan_cached: bool
    reoptimized: bool
    #: Wall-clock seconds from snapshot pin to finished execution (does not
    #: include queueing delay; the server's stats track end-to-end latency).
    latency_seconds: float
    session_id: int
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def rowcount(self) -> int:
        """Number of result rows."""
        return len(self.rows)


class ServerSession:
    """One client's serving context over a shared :class:`Server`."""

    def __init__(
        self,
        server: "Server",
        session_id: int,
        *,
        reoptimize: Optional[bool] = None,
        adaptive: Optional[bool] = None,
    ) -> None:
        # Local import: repro.core builds on the engine package, so a
        # module-level import would be circular (same as Connection).
        from repro.core.interceptor import ReoptimizationInterceptor
        from repro.core.triggers import ReoptimizationPolicy

        self.server = server
        self.session_id = session_id
        self.metrics = ConnectionMetrics()
        self._closed = False
        config = server.config
        if reoptimize is None:
            reoptimize = config.reoptimize
        if adaptive is None:
            adaptive = config.adaptive
        chain: List[QueryInterceptor] = [MetricsInterceptor(self.metrics)]
        if server.plan_cache.enabled:
            chain.append(PlanCacheInterceptor(server.plan_cache))
        # Outside the re-optimization loop; every session's snapshot shares
        # the base database's feedback store, so one session's observations
        # seed every other session's plans.
        chain.append(FeedbackHarvestInterceptor())
        if reoptimize:
            chain.append(
                ReoptimizationInterceptor(ReoptimizationPolicy(), adaptive=adaptive)
            )
        self._chain = chain

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called."""
        return self._closed

    def close(self) -> None:
        """Close the session; further statements raise ServerError."""
        self._closed = True

    def __enter__(self) -> "ServerSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ServerError(f"session {self.session_id} is closed")

    # -- statements ---------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Optional[Sequence[object]] = None,
        timeout: Optional[float] = None,
    ) -> StatementResult:
        """Serve one statement through the worker pool and wait for it."""
        return self.submit(sql, params).result(timeout=timeout)

    def submit(
        self, sql: str, params: Optional[Sequence[object]] = None
    ) -> "Future[StatementResult]":
        """Enqueue one statement; sheds with AdmissionError when saturated."""
        self._check_open()
        return self.server.submit(self, sql, params)

    def _run_statement(
        self, sql: str, params: Optional[Sequence[object]]
    ) -> StatementResult:
        """Pin a snapshot and run the statement (worker-thread entry)."""
        start = time.perf_counter()
        snapshot = self.server.database.snapshot()
        pipeline = QueryPipeline(snapshot, self._chain)
        ctx: QueryContext = pipeline.run(sql=sql, params=params)
        latency = time.perf_counter() - start
        return StatementResult(
            rows=tuple(ctx.rows),
            description=tuple(_describe(ctx)),
            epoch=snapshot.catalog.epoch,
            plan_cached=ctx.plan_cached,
            reoptimized=ctx.reoptimized,
            latency_seconds=latency,
            session_id=self.session_id,
        )

    # -- writes (shared database, epoch-bumping) ----------------------------

    def analyze(self, tables: Optional[Sequence[str]] = None) -> None:
        """ANALYZE on the shared database; pins after this see new stats."""
        self._check_open()
        self.server.database.analyze(tables)

    def create_table(self, schema: Union[str, object]):
        """DDL on the shared database."""
        self._check_open()
        return self.server.database.create_table(schema)

    def load_rows(self, table_name: str, rows: Iterable) -> int:
        """Bulk load into the shared database (atomic vs. snapshots)."""
        self._check_open()
        return self.server.database.load_rows(table_name, rows)

    def create_index(self, table_name: str, column: str) -> None:
        """Index build on the shared database."""
        self._check_open()
        self.server.database.create_index(table_name, column)
