"""Most-common-value (MCV) lists.

PostgreSQL keeps the ``k`` most frequent values of a column together with
their frequencies; equality selectivity for one of these values is its exact
frequency, and equality with any other value divides the remaining mass
uniformly over the remaining distinct values.  This module reproduces that
behaviour.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class MostCommonValues:
    """The most common values of a column and their relative frequencies.

    Attributes:
        values: the most common values, most frequent first.
        frequencies: relative frequencies (fraction of non-NULL rows), aligned
            with ``values``.
    """

    values: Tuple[object, ...]
    frequencies: Tuple[float, ...]

    @classmethod
    def build(
        cls, values: Sequence, max_entries: int = 100
    ) -> Optional["MostCommonValues"]:
        """Build the MCV list from non-NULL values.

        Values are only retained while they are genuinely "common": like
        PostgreSQL, a value that appears once in a large column is not an MCV.
        Returns ``None`` for empty input.
        """
        cleaned = [v for v in values if v is not None]
        if not cleaned:
            return None
        counts = Counter(cleaned)
        total = len(cleaned)
        common = counts.most_common(max_entries)
        if len(counts) > max_entries:
            # Only keep values noticeably more frequent than the average.
            average = total / len(counts)
            common = [(v, c) for v, c in common if c > 1.25 * average]
        if not common:
            common = counts.most_common(min(max_entries, len(counts)))
        mcv_values = tuple(v for v, _ in common)
        mcv_freqs = tuple(c / total for _, c in common)
        return cls(values=mcv_values, frequencies=mcv_freqs)

    def __len__(self) -> int:
        return len(self.values)

    def frequency_of(self, value) -> Optional[float]:
        """Frequency of ``value`` if it is in the MCV list, else ``None``."""
        lookup: Dict[object, float] = dict(zip(self.values, self.frequencies))
        return lookup.get(value)

    @property
    def total_frequency(self) -> float:
        """Total mass covered by the MCV list."""
        return float(sum(self.frequencies))
