"""Statistics subsystem: histograms, MCV lists, ANALYZE."""

from repro.stats.analyze import analyze_database, analyze_table
from repro.stats.column_stats import ColumnStats, TableStats
from repro.stats.histogram import EquiDepthHistogram
from repro.stats.mcv import MostCommonValues

__all__ = [
    "ColumnStats",
    "EquiDepthHistogram",
    "MostCommonValues",
    "TableStats",
    "analyze_database",
    "analyze_table",
]
