"""ANALYZE: build table and column statistics from stored data.

The paper sets PostgreSQL's ``default_statistics_target`` to its maximum so
that the optimizer has the best statistics the standard mechanism can
provide; estimation errors therefore stem from the *model* (independence and
uniformity assumptions), not from stale or coarse statistics.  We follow the
same philosophy: ANALYZE here scans the full table (no sampling) and builds
exact per-column statistics, so every estimation error produced by
:mod:`repro.optimizer.cardinality` is a model error.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from repro.catalog.catalog import Catalog
from repro.catalog.schema import ColumnType
from repro.stats.column_stats import ColumnStats, TableStats
from repro.stats.histogram import EquiDepthHistogram
from repro.stats.mcv import MostCommonValues
from repro.storage.table import Table


def analyze_table(
    table: Table,
    statistics_target: int = 100,
    sample_target: int = 100,
) -> TableStats:
    """Build :class:`~repro.stats.column_stats.TableStats` for one table.

    Args:
        table: the storage object to analyze.
        statistics_target: maximum MCV entries and histogram buckets per
            column (named after PostgreSQL's ``default_statistics_target``).
        sample_target: reservoir-sample size (whole rows, schema column
            order) kept for the sampling estimator; ``0`` disables sampling.
    """
    stats = TableStats(table=table.name, row_count=table.row_count)
    for col_def in table.schema.columns:
        values = table.column_values(col_def.name)
        stats.columns[col_def.name] = _analyze_column(
            col_def.name, col_def.col_type, values, statistics_target
        )
    if sample_target > 0:
        stats.sample = _reservoir_sample(table, sample_target)
        stats.sample_rows = table.row_count
    return stats


def _reservoir_sample(table: Table, target: int) -> list:
    """Algorithm-R reservoir sample of ``target`` whole rows.

    Deterministically seeded from the table name and size so repeated
    ANALYZE runs over unchanged data produce identical samples (and hence
    identical sampling-estimator plans).
    """
    rng = random.Random((table.name, table.row_count).__repr__())
    reservoir: list = []
    for index, row in enumerate(table.iter_rows()):
        if index < target:
            reservoir.append(row)
            continue
        slot = rng.randint(0, index)
        if slot < target:
            reservoir[slot] = row
    return reservoir


def _analyze_column(
    name: str,
    col_type: ColumnType,
    values,
    statistics_target: int,
) -> ColumnStats:
    row_count = len(values)
    non_null = [v for v in values if v is not None]
    null_fraction = 0.0 if row_count == 0 else 1.0 - len(non_null) / row_count
    n_distinct = len(set(non_null))
    mcv = MostCommonValues.build(non_null, max_entries=statistics_target)
    histogram = EquiDepthHistogram.build(non_null, num_buckets=statistics_target)
    min_value: Optional[object] = min(non_null) if non_null else None
    max_value: Optional[object] = max(non_null) if non_null else None
    if col_type is ColumnType.TEXT:
        avg_width = (
            sum(len(v) for v in non_null) / len(non_null) if non_null else 8.0
        )
    else:
        avg_width = 8.0
    return ColumnStats(
        column=name,
        col_type=col_type,
        null_fraction=null_fraction,
        n_distinct=n_distinct,
        mcv=mcv,
        histogram=histogram,
        min_value=min_value,
        max_value=max_value,
        avg_width=avg_width,
    )


def analyze_database(
    catalog: Catalog,
    tables: Optional[Iterable[str]] = None,
    statistics_target: int = 100,
) -> None:
    """Run ANALYZE over ``tables`` (default: every table) and store the results."""
    names = list(tables) if tables is not None else catalog.table_names()
    for name in names:
        entry = catalog.entry(name)
        catalog.set_stats(name, analyze_table(entry.table, statistics_target))
