"""Equi-depth histograms.

The histogram mirrors PostgreSQL's ``histogram_bounds``: after removing the
most common values, the remaining values are divided into buckets with
(approximately) the same number of rows each.  Selectivity of range
predicates is estimated by linear interpolation inside the boundary buckets,
exactly the uniformity-within-bucket assumption the paper discusses.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class EquiDepthHistogram:
    """An equi-depth histogram over orderable values.

    Attributes:
        bounds: ``num_buckets + 1`` boundary values; bucket ``i`` covers
            ``[bounds[i], bounds[i+1])`` except the last which is inclusive.
    """

    bounds: tuple

    @classmethod
    def build(cls, values: Sequence, num_buckets: int = 100) -> Optional["EquiDepthHistogram"]:
        """Build a histogram from non-NULL values.

        Returns ``None`` when there are not enough distinct values to form a
        useful histogram (PostgreSQL similarly skips the histogram for
        low-cardinality columns, relying on the MCV list instead).
        """
        cleaned = sorted(v for v in values if v is not None)
        if len(cleaned) < 2:
            return None
        distinct = sorted(set(cleaned))
        if len(distinct) < 2:
            return None
        buckets = min(num_buckets, len(distinct) - 1, len(cleaned) - 1)
        if buckets < 1:
            return None
        bounds: List = []
        for i in range(buckets + 1):
            index = round(i * (len(cleaned) - 1) / buckets)
            bounds.append(cleaned[index])
        # Duplicate boundaries are kept on purpose: a value repeated in many
        # boundaries represents many full buckets of that value, which is what
        # keeps range estimates sane on heavily skewed columns.
        if len(set(bounds)) < 2:
            return None
        return cls(bounds=tuple(bounds))

    @property
    def num_buckets(self) -> int:
        """Number of buckets."""
        return len(self.bounds) - 1

    @property
    def low(self):
        """Smallest histogram boundary."""
        return self.bounds[0]

    @property
    def high(self):
        """Largest histogram boundary."""
        return self.bounds[-1]

    def selectivity_less_than(self, value, inclusive: bool = False) -> float:
        """Estimated fraction of histogram values ``< value`` (or ``<=``)."""
        if value is None:
            return 0.0
        if value < self.low:
            return 0.0
        if value > self.high:
            return 1.0
        if value == self.low:
            return 0.0 if not inclusive else self._point_fraction()
        if value == self.high and inclusive:
            return 1.0
        bucket = bisect.bisect_right(self.bounds, value) - 1
        bucket = min(bucket, self.num_buckets - 1)
        lo = self.bounds[bucket]
        hi = self.bounds[bucket + 1]
        if hi == lo:
            within = 1.0
        else:
            within = self._interp(value, lo, hi)
        return (bucket + within) / self.num_buckets

    def selectivity_range(
        self,
        low=None,
        high=None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> float:
        """Estimated fraction of values within the (possibly open) range."""
        upper = 1.0 if high is None else self.selectivity_less_than(high, include_high)
        lower = 0.0 if low is None else self.selectivity_less_than(low, not include_low)
        return max(0.0, min(1.0, upper - lower))

    def _point_fraction(self) -> float:
        """Fraction attributed to a single point (one part of one bucket)."""
        return 1.0 / (self.num_buckets * 10.0)

    @staticmethod
    def _interp(value, lo, hi) -> float:
        """Linear interpolation of ``value`` within ``[lo, hi]``; 0.5 for text."""
        try:
            return (value - lo) / (hi - lo)
        except TypeError:
            # Non-numeric (text) boundaries: assume the midpoint, the same
            # coarse assumption PostgreSQL's convert_string_datum path makes.
            return 0.5
