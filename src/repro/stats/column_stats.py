"""Per-column and per-table statistics containers produced by ANALYZE."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.catalog.schema import ColumnType
from repro.stats.histogram import EquiDepthHistogram
from repro.stats.mcv import MostCommonValues


@dataclass
class ColumnStats:
    """Statistics for one column, mirroring PostgreSQL's ``pg_stats`` row.

    Attributes:
        column: column name.
        col_type: declared column type.
        null_fraction: fraction of rows that are NULL.
        n_distinct: number of distinct non-NULL values.
        mcv: most-common-value list (``None`` when the column is empty).
        histogram: equi-depth histogram over non-MCV values (``None`` for
            low-cardinality or non-orderable columns).
        min_value / max_value: observed extremes over non-NULL values.
        avg_width: average value width in bytes (used only by the cost model's
            memory heuristics).
    """

    column: str
    col_type: ColumnType
    null_fraction: float
    n_distinct: int
    mcv: Optional[MostCommonValues] = None
    histogram: Optional[EquiDepthHistogram] = None
    min_value: Optional[object] = None
    max_value: Optional[object] = None
    avg_width: float = 8.0

    @property
    def non_null_fraction(self) -> float:
        """Fraction of rows that are not NULL."""
        return 1.0 - self.null_fraction


@dataclass
class TableStats:
    """Statistics for one table.

    Besides the per-column statistics, ANALYZE maintains a small reservoir
    sample of whole rows (tuples in schema column order) so the sampling
    estimator can evaluate arbitrary — including correlated — predicate
    conjunctions directly.  ``sample_rows`` records how many rows the
    reservoir was drawn from (the table size at ANALYZE time).
    """

    table: str
    row_count: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)
    sample: List[tuple] = field(default_factory=list)
    sample_rows: int = 0

    def column_stats(self, column: str) -> Optional[ColumnStats]:
        """Statistics for ``column`` (``None`` if the column was not analyzed)."""
        return self.columns.get(column)

    def n_distinct(self, column: str, default: Optional[int] = None) -> Optional[int]:
        """Distinct count of ``column`` or ``default`` if unknown."""
        stats = self.columns.get(column)
        if stats is None:
            return default
        return stats.n_distinct
