"""repro: a reproduction of "How I Learned to Stop Worrying and Love Re-optimization".

The package bundles a complete in-memory analytic query engine (catalog,
storage, SQL front-end, statistics, PostgreSQL-style optimizer, instrumented
executor), the paper's re-optimization scheme and perfect-(n) oracles, a
synthetic IMDB / Join-Order-Benchmark workload, and a benchmark harness that
regenerates every table and figure of the paper's evaluation.

Typical entry points:

* :class:`repro.engine.Database` — the engine substrate.
* :class:`repro.core.ReoptimizingSession` — run queries with automatic
  re-optimization.
* :func:`repro.workloads.build_imdb_database` /
  :func:`repro.workloads.generate_job_workload` — the benchmark workload.
* :mod:`repro.bench.experiments` — one function per paper table/figure.
"""

from repro.core import (
    ReoptimizationPolicy,
    ReoptimizationReport,
    ReoptimizationSimulator,
    ReoptimizingSession,
    TrueCardinalityOracle,
    q_error,
)
from repro.engine import Database, EngineSettings, QueryRun
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Database",
    "EngineSettings",
    "QueryRun",
    "ReoptimizationPolicy",
    "ReoptimizationReport",
    "ReoptimizationSimulator",
    "ReoptimizingSession",
    "ReproError",
    "TrueCardinalityOracle",
    "__version__",
    "q_error",
]
