"""repro: a reproduction of "How I Learned to Stop Worrying and Love Re-optimization".

The package bundles a complete in-memory analytic query engine (catalog,
storage, SQL front-end, statistics, PostgreSQL-style optimizer, instrumented
executor), the paper's re-optimization scheme and perfect-(n) oracles, a
synthetic IMDB / Join-Order-Benchmark workload, and a benchmark harness that
regenerates every table and figure of the paper's evaluation.

Typical entry points:

* :func:`repro.connect` — open a DB-API-2.0-style :class:`Connection`; run
  SQL through cursors and prepared statements, with plan caching and
  transparent mid-query re-optimization.
* :class:`repro.engine.Database` — the engine substrate underneath a
  connection.
* :func:`repro.workloads.build_imdb_database` /
  :func:`repro.workloads.generate_job_workload` — the benchmark workload.
* :mod:`repro.bench.experiments` — one function per paper table/figure.
"""

from repro.core import (
    ReoptimizationInterceptor,
    ReoptimizationPolicy,
    ReoptimizationReport,
    TrueCardinalityOracle,
    q_error,
)
from repro.engine import (
    Connection,
    Cursor,
    Database,
    EngineSettings,
    PlanCache,
    PlanCacheStats,
    PreparedStatement,
    QueryContext,
    QueryInterceptor,
    QueryPipeline,
    QueryRun,
    apilevel,
    connect,
    paramstyle,
    threadsafety,
)
from repro.errors import ConfigError, ReproError
from repro.optimizer.estimators import CardinalityStrategy, strategy_names
from repro.optimizer.feedback import FeedbackStore

__version__ = "1.2.0"

__all__ = [
    "CardinalityStrategy",
    "ConfigError",
    "Connection",
    "Cursor",
    "Database",
    "EngineSettings",
    "FeedbackStore",
    "PlanCache",
    "PlanCacheStats",
    "PreparedStatement",
    "QueryContext",
    "QueryInterceptor",
    "QueryPipeline",
    "QueryRun",
    "ReoptimizationInterceptor",
    "ReoptimizationPolicy",
    "ReoptimizationReport",
    "ReproError",
    "TrueCardinalityOracle",
    "__version__",
    "apilevel",
    "connect",
    "paramstyle",
    "q_error",
    "strategy_names",
    "threadsafety",
]
