"""The query lifecycle pipeline: parse → bind → plan → execute.

Every statement served by a :class:`~repro.engine.connection.Connection`
flows through one :class:`QueryPipeline`.  The pipeline owns the four core
lifecycle stages and threads a :class:`QueryContext` through them; ordered
:class:`QueryInterceptor` middleware wraps each stage, which is how the
cross-cutting behaviors that used to be parallel code paths are expressed:

* plan caching (:class:`PlanCacheInterceptor`) short-circuits the plan stage;
* re-optimization (:class:`repro.core.interceptor.ReoptimizationInterceptor`)
  wraps the execute stage with the paper's materialize-and-re-plan loop;
* EXPLAIN capture (:class:`ExplainCaptureInterceptor`) and timing/metrics
  (:class:`MetricsInterceptor`) observe the finished lifecycle.

Interceptors are listed outermost first: for a chain ``[a, b]`` the plan
stage runs as ``a.around_plan(ctx, b.around_plan(ctx, core))``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import InterfaceError
from repro.executor.explain import explain_plan
from repro.sql.params import bind_parameters
from repro.sql.parser import parse_select

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.reoptimizer import ReoptimizationReport
    from repro.engine.database import Database
    from repro.executor.executor import ExecutionResult
    from repro.optimizer.injection import CardinalityInjector
    from repro.optimizer.optimizer import PlannedQuery
    from repro.sql.ast import SelectQuery
    from repro.sql.binder import BoundQuery

#: Lifecycle stages, in order.
STAGES: Tuple[str, ...] = ("parse", "bind", "plan", "execute")


@dataclass
class QueryContext:
    """Everything the lifecycle knows about one statement.

    The pipeline fills the ``parsed``/``bound``/``planned``/``execution``
    slots stage by stage; interceptors may read or replace them.  When the
    re-optimization interceptor ran, ``report`` carries the full
    materialize-and-re-plan accounting and the ``planned``/``execution``
    slots hold the *final* round.  ``bound`` always remains the original
    statement (before any temp-table rewrite).
    """

    database: "Database"
    sql: Optional[str] = None
    name: Optional[str] = None
    params: Optional[Tuple[object, ...]] = None
    injector: Optional["CardinalityInjector"] = None
    parsed: Optional["SelectQuery"] = None
    bound: Optional["BoundQuery"] = None
    planned: Optional["PlannedQuery"] = None
    execution: Optional["ExecutionResult"] = None
    report: Optional["ReoptimizationReport"] = None
    plan_cached: bool = False
    explain_text: Optional[str] = None
    #: Wall-clock seconds spent per stage (filled by :class:`MetricsInterceptor`).
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    # -- result accessors ---------------------------------------------------

    @property
    def rows(self) -> List[tuple]:
        """Rows of the final result."""
        if self.report is not None:
            return self.report.rows
        if self.execution is not None:
            return self.execution.result.rows
        return []

    @property
    def planning_seconds(self) -> float:
        """Simulated planning time charged to this statement.

        A plan-cache hit charges nothing; a re-optimized statement charges
        every planning round (the initial round only when it was not served
        from the cache).
        """
        if self.report is not None:
            return self.report.planning_seconds
        if self.plan_cached or self.planned is None:
            return 0.0
        return self.planned.stats.planning_seconds

    @property
    def execution_seconds(self) -> float:
        """Simulated execution time (including temp-table materialization)."""
        if self.report is not None:
            return self.report.execution_seconds
        if self.execution is None:
            return 0.0
        return self.execution.simulated_seconds

    @property
    def total_seconds(self) -> float:
        """Planning plus execution, in simulated seconds."""
        return self.planning_seconds + self.execution_seconds

    @property
    def reoptimized(self) -> bool:
        """True if the re-optimization interceptor re-planned the statement."""
        return self.report is not None and self.report.reoptimized

    @property
    def rows_processed(self) -> int:
        """Rows produced across all plan operators (throughput numerator)."""
        if self.report is not None:
            return self.report.rows_processed
        if self.execution is not None:
            return self.execution.rows_processed
        return 0

    @property
    def wall_seconds(self) -> float:
        """Wall-clock time spent inside plan operators."""
        if self.report is not None:
            return self.report.wall_seconds
        if self.execution is not None:
            return self.execution.wall_seconds
        return 0.0


#: An interceptor's continuation: runs the rest of the stage chain.
Proceed = Callable[[QueryContext], QueryContext]


class QueryInterceptor:
    """Middleware around the lifecycle stages.

    Subclasses override the ``around_*`` hooks they care about.  A hook
    receives the context and a ``proceed`` continuation; calling ``proceed``
    runs the interceptors further down the chain and the core stage, while
    returning without calling it short-circuits the stage (the plan cache
    does this on a hit).
    """

    name = "interceptor"

    def around_parse(self, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        """Wrap the parse stage."""
        return proceed(ctx)

    def around_bind(self, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        """Wrap the bind (and parameter substitution) stage."""
        return proceed(ctx)

    def around_plan(self, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        """Wrap the plan stage."""
        return proceed(ctx)

    def around_execute(self, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        """Wrap the execute stage."""
        return proceed(ctx)


class QueryPipeline:
    """Runs statements through the staged lifecycle with interceptors."""

    def __init__(
        self,
        database: "Database",
        interceptors: Iterable[QueryInterceptor] = (),
    ) -> None:
        self.database = database
        self.interceptors: List[QueryInterceptor] = list(interceptors)

    def run(
        self,
        sql: Optional[str] = None,
        *,
        bound: Optional["BoundQuery"] = None,
        params: Optional[Sequence[object]] = None,
        name: Optional[str] = None,
        injector: Optional["CardinalityInjector"] = None,
    ) -> QueryContext:
        """Run one statement through the full lifecycle.

        Either ``sql`` text or an already-bound query must be given; a bound
        query skips the parse and bind stages (the harness and prepared
        statements use this entry).
        """
        if sql is None and bound is None:
            raise InterfaceError("QueryPipeline.run needs SQL text or a bound query")
        ctx = QueryContext(
            database=self.database,
            sql=sql,
            name=name,
            params=tuple(params) if params is not None else None,
            injector=injector,
            bound=bound,
        )
        for stage in STAGES:
            ctx = self._run_stage(stage, ctx)
        return ctx

    # -- stage plumbing -----------------------------------------------------

    def _run_stage(self, stage: str, ctx: QueryContext) -> QueryContext:
        handler: Proceed = getattr(self, f"_stage_{stage}")
        for interceptor in reversed(self.interceptors):
            hook = getattr(interceptor, f"around_{stage}")
            handler = _chain(hook, handler)
        return handler(ctx)

    def _stage_parse(self, ctx: QueryContext) -> QueryContext:
        if ctx.bound is None and ctx.parsed is None:
            ctx.parsed = parse_select(ctx.sql, name=ctx.name)
        return ctx

    def _stage_bind(self, ctx: QueryContext) -> QueryContext:
        if ctx.bound is None:
            ctx.bound = self.database.binder.bind(ctx.parsed)
        if ctx.params is not None or ctx.bound.param_count:
            ctx.bound = bind_parameters(ctx.bound, ctx.params or ())
        return ctx

    def _stage_plan(self, ctx: QueryContext) -> QueryContext:
        ctx.planned = self.database.plan(ctx.bound, injector=ctx.injector)
        return ctx

    def _stage_execute(self, ctx: QueryContext) -> QueryContext:
        ctx.execution = self.database.execute_plan(ctx.planned)
        return ctx


def _chain(hook, nxt: Proceed) -> Proceed:
    """Bind one interceptor hook around the rest of the stage chain."""
    def run(ctx: QueryContext) -> QueryContext:
        return hook(ctx, nxt)

    return run


# -- bundled interceptors ---------------------------------------------------


class PlanCacheInterceptor(QueryInterceptor):
    """Serves the plan stage from an LRU cache keyed on SQL + catalog epoch.

    Statements planned with a cardinality injector bypass the cache: the
    injector changes the chosen plan but is not part of the key.
    """

    name = "plan-cache"

    def __init__(self, cache) -> None:
        self.cache = cache

    def around_plan(self, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        if not self.cache.enabled or ctx.injector is not None:
            return proceed(ctx)
        epoch = ctx.database.catalog.epoch
        key = (ctx.bound.to_sql(), epoch)
        planned = self.cache.get(key, epoch=epoch)
        if planned is not None:
            ctx.planned = planned
            ctx.plan_cached = True
            return ctx
        ctx = proceed(ctx)
        self.cache.put(key, ctx.planned, epoch=epoch)
        return ctx


class FeedbackHarvestInterceptor(QueryInterceptor):
    """Records observed cardinalities into the database's feedback store.

    After the execute stage (including any re-optimization rounds wrapped
    inside it), the true cardinalities the executor observed — scan outputs,
    join outputs, and every re-optimization trigger's materialized subtree —
    are normalized (:func:`repro.optimizer.feedback.subset_key`) and recorded
    in ``database.feedback``, where the ``feedback`` estimation strategy
    seeds future plans with them.  Subsets mentioning pseudo-aliases
    (``__temp*`` re-optimization tables, adaptive intermediates) are skipped:
    they are not subtrees of the original statement.

    Place it *outside* the re-optimization interceptor so it observes the
    final report.
    """

    name = "feedback-harvest"

    def around_execute(self, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        ctx = proceed(ctx)
        self._harvest(ctx)
        return ctx

    def _harvest(self, ctx: QueryContext) -> None:
        from repro.optimizer.provenance import harvest_observations

        bound = ctx.bound
        store = getattr(ctx.database, "feedback", None)
        if bound is None or store is None:
            return
        valid = set(bound.aliases)
        observed: Dict[frozenset, float] = {}
        if ctx.report is not None:
            for step in ctx.report.steps:
                subset = frozenset(step.trigger_aliases)
                if subset and subset <= valid:
                    observed[subset] = float(step.actual_rows)
        plan = None
        if ctx.report is not None and ctx.report.final_planned is not None:
            plan = ctx.report.final_planned.plan
        elif ctx.planned is not None and ctx.execution is not None:
            plan = ctx.planned.plan
        if plan is not None:
            for subset, rows in harvest_observations(plan).items():
                if subset <= valid:
                    observed[subset] = rows
        for subset, rows in observed.items():
            store.record(bound, subset, rows)


class ExplainCaptureInterceptor(QueryInterceptor):
    """Captures EXPLAIN ANALYZE text of the final plan after execution."""

    name = "explain-capture"

    def around_execute(self, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        ctx = proceed(ctx)
        if ctx.planned is not None:
            ctx.explain_text = explain_plan(ctx.planned.plan, ctx.execution)
        return ctx


@dataclass
class ConnectionMetrics:
    """Aggregate accounting of every statement served by a connection."""

    statements: int = 0
    rows_returned: int = 0
    planning_seconds: float = 0.0
    execution_seconds: float = 0.0
    reoptimized_statements: int = 0
    stage_wall_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total simulated time across all statements."""
        return self.planning_seconds + self.execution_seconds


class MetricsInterceptor(QueryInterceptor):
    """Times every stage and folds per-statement accounting into metrics.

    Place it first (outermost) so its stage timings include the work of the
    interceptors further down the chain.
    """

    name = "metrics"

    def __init__(self, metrics: Optional[ConnectionMetrics] = None) -> None:
        self.metrics = metrics if metrics is not None else ConnectionMetrics()

    def _timed(self, stage: str, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        start = time.perf_counter()
        try:
            return proceed(ctx)
        finally:
            elapsed = time.perf_counter() - start
            ctx.stage_seconds[stage] = ctx.stage_seconds.get(stage, 0.0) + elapsed
            totals = self.metrics.stage_wall_seconds
            totals[stage] = totals.get(stage, 0.0) + elapsed

    def around_parse(self, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        return self._timed("parse", ctx, proceed)

    def around_bind(self, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        return self._timed("bind", ctx, proceed)

    def around_plan(self, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        return self._timed("plan", ctx, proceed)

    def around_execute(self, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        ctx = self._timed("execute", ctx, proceed)
        self.metrics.statements += 1
        self.metrics.rows_returned += len(ctx.rows)
        self.metrics.planning_seconds += ctx.planning_seconds
        self.metrics.execution_seconds += ctx.execution_seconds
        if ctx.reoptimized:
            self.metrics.reoptimized_statements += 1
        return ctx
