"""The ``Database`` facade: the public entry point of the engine substrate.

A :class:`Database` owns a catalog, an optimizer and an executor, and exposes
the operations the workloads, examples and the re-optimization driver need:

* DDL/loading: :meth:`create_table`, :meth:`load_rows`, :meth:`analyze`
* querying: :meth:`parse`, :meth:`plan`, :meth:`run`, :meth:`explain`
* re-optimization support: :meth:`create_temp_table_from_result`,
  :meth:`drop_table`
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.catalog.catalog import Catalog
from repro.catalog.schema import ColumnDef, ColumnType, TableSchema
from repro.engine.settings import EngineSettings
from repro.errors import StorageError, TempTableExists
from repro.executor.executor import ExecutionEngine, ExecutionResult, Executor
from repro.executor.explain import explain_plan
from repro.executor.operators import ResultSet
from repro.optimizer.cost import CostModel
from repro.optimizer.feedback import FeedbackStore
from repro.optimizer.injection import CardinalityInjector
from repro.optimizer.optimizer import Optimizer, PlannedQuery
from repro.sql.binder import Binder, BoundQuery
from repro.sql.parser import parse_create_table, parse_select
from repro.stats.analyze import analyze_table
from repro.storage.index import HashIndex, build_foreign_key_indexes
from repro.storage.intermediate import IntermediateTable
from repro.storage.partition import PartitionedTable
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.optimizer.estimators import CardinalityStrategy


@dataclass
class QueryRun:
    """A planned and executed query with its combined accounting."""

    planned: PlannedQuery
    execution: ExecutionResult

    @property
    def planning_seconds(self) -> float:
        """Simulated planning time."""
        return self.planned.stats.planning_seconds

    @property
    def execution_seconds(self) -> float:
        """Simulated execution time."""
        return self.execution.simulated_seconds

    @property
    def total_seconds(self) -> float:
        """Planning plus execution, in simulated seconds."""
        return self.planning_seconds + self.execution_seconds

    @property
    def rows(self) -> List[tuple]:
        """Rows of the final result."""
        return self.execution.result.rows


class Database:
    """An in-memory analytic database instance.

    One instance may be shared by many threads through the serving layer
    (:mod:`repro.server`): every write path (DDL, loading, ANALYZE, index
    builds) runs under the catalog lock, and readers pin a consistent
    point-in-time view with :meth:`snapshot` instead of locking.

    ``catalog`` lets :class:`~repro.engine.snapshot.SnapshotDatabase` build
    the same facade over a pinned catalog snapshot; normal construction
    leaves it ``None`` and owns a fresh catalog.
    """

    def __init__(
        self,
        settings: Optional[EngineSettings] = None,
        *,
        catalog: Optional[Catalog] = None,
        feedback: Optional[FeedbackStore] = None,
    ) -> None:
        self.settings = settings or EngineSettings()
        self.catalog = catalog if catalog is not None else Catalog()
        # One feedback store per database, shared by every connection, server
        # session and snapshot (snapshots pass their base's store in), so
        # observations harvested anywhere seed plans everywhere.
        if feedback is not None:
            self.feedback = feedback
        else:
            self.feedback = FeedbackStore(self.settings.feedback_capacity)
            if self.settings.feedback_path is not None:
                self.feedback.load(self.settings.feedback_path)
        self.optimizer = Optimizer(
            self.catalog,
            cost_params=self.settings.cost,
            planner_config=self.settings.planner,
            strategy=self._build_strategy(self.settings.estimator),
        )
        self.cost_model = CostModel(self.catalog, self.settings.cost)
        self.executor = Executor(
            self.catalog,
            self.cost_model,
            engine=self.settings.engine,
            workers=self.settings.workers,
            morsel_size=self.settings.morsel_size,
            memory_budget=self.settings.memory_budget,
        )
        self.binder = Binder(self.catalog)
        # itertools.count.__next__ is atomic in CPython, so concurrent
        # sessions never mint the same temporary-table name.
        self._temp_ids = itertools.count(1)

    def _build_strategy(self, name: str) -> "CardinalityStrategy":
        from repro.optimizer.estimators import create_strategy

        return create_strategy(name, self.catalog, feedback=self.feedback)

    @property
    def estimator_strategy(self) -> "CardinalityStrategy":
        """The active cardinality-estimation strategy."""
        return self.optimizer.strategy

    def set_estimator(self, name: str) -> "CardinalityStrategy":
        """Switch the active estimation strategy (``"stats"``, ``"feedback"``...).

        Rebuilds the strategy over this database's catalog and feedback
        store and installs it on the optimizer; subsequently planned
        statements use it.  Updates ``settings.estimator`` so snapshots and
        derived connections inherit the choice.
        """
        strategy = self._build_strategy(name)
        self.settings.estimator = name
        self.optimizer.strategy = strategy
        return strategy

    def executor_for(
        self,
        engine: ExecutionEngine,
        workers: Optional[int] = None,
        morsel_size: Optional[int] = None,
        memory_budget: Optional[int] = None,
    ) -> Executor:
        """A second executor over the same catalog using ``engine``.

        Used by the differential-testing harness to run one planned query
        through several engines.  ``workers``/``morsel_size``/
        ``memory_budget`` default to the database settings; the first two
        only matter for the parallel engine.
        """
        return Executor(
            self.catalog,
            self.cost_model,
            engine=engine,
            workers=self.settings.workers if workers is None else workers,
            morsel_size=self.settings.morsel_size if morsel_size is None else morsel_size,
            memory_budget=(
                self.settings.memory_budget if memory_budget is None else memory_budget
            ),
        )

    # -- DDL and loading ----------------------------------------------------

    def create_table(
        self, schema: Union[TableSchema, str]
    ) -> Union[Table, PartitionedTable]:
        """Create an empty table and register it in the catalog.

        Accepts either a prepared :class:`TableSchema` or ``CREATE TABLE``
        SQL text (including ``PARTITION BY HASH/RANGE`` clauses).  Schemas
        carrying a partition spec are stored as
        :class:`~repro.storage.partition.PartitionedTable` shards; plain
        schemas keep the single-:class:`Table` storage.
        """
        if isinstance(schema, str):
            schema = parse_create_table(schema)
        if schema.partition_spec is not None:
            table: Union[Table, PartitionedTable] = PartitionedTable(schema)
        else:
            table = Table(schema)
        self.catalog.register(schema, table)
        return table

    def load_rows(
        self, table_name: str, rows: Iterable[Union[Sequence, Dict[str, object]]]
    ) -> int:
        """Load rows (tuples in schema order, or dicts) into ``table_name``.

        Rows are accumulated column-wise and appended with a single
        :meth:`~repro.storage.table.Table.load_columns` call — the bulk-load
        path the columnar executor scans zero-copy — instead of packing and
        unpacking one tuple per row.  The load is atomic: a bad value rolls
        the whole batch back.
        """
        table = self.catalog.table(table_name)
        width = len(table.schema.columns)
        columns: List[List[object]] = [[] for _ in range(width)]
        count = 0
        for row in rows:
            if isinstance(row, dict):
                row = table.row_values_from_dict(row)
            elif len(row) != width:
                raise StorageError(
                    f"table {table.name!r} expects {width} values, "
                    f"got {len(row)}"
                )
            for position, value in enumerate(row):
                columns[position].append(value)
            count += 1
        if count:
            # Under the catalog lock so a concurrent snapshot() pins either
            # none or all of the batch, never a torn prefix.
            with self.catalog.lock:
                table.load_columns(columns)
                self.feedback.invalidate_table(table_name)
        return count

    def build_indexes(self, table_name: Optional[str] = None) -> None:
        """Build primary/foreign-key hash indexes (all tables by default)."""
        with self.catalog.lock:
            names = [table_name] if table_name else self.catalog.table_names()
            for name in names:
                table = self.catalog.table(name)
                for index in build_foreign_key_indexes(table):
                    self.catalog.add_index(name, index)

    def create_index(self, table_name: str, column: str) -> None:
        """Build an additional hash index on ``table_name.column``."""
        with self.catalog.lock:
            table = self.catalog.table(table_name)
            self.catalog.add_index(table_name, HashIndex(table, column))

    def analyze(self, tables: Optional[Iterable[str]] = None) -> None:
        """Run ANALYZE over ``tables`` (default: all tables).

        Partitioned tables additionally refresh their per-partition zone
        maps, re-deriving min/max/null-count exactly from storage.
        """
        with self.catalog.lock:
            names = (
                list(tables) if tables is not None else self.catalog.table_names()
            )
            for name in names:
                entry = self.catalog.entry(name)
                refresh = getattr(entry.table, "refresh_zone_maps", None)
                if refresh is not None:
                    refresh()
                self.catalog.set_stats(
                    name,
                    analyze_table(
                        entry.table,
                        self.settings.statistics_target,
                        sample_target=self.settings.sample_rows,
                    ),
                )
                self.feedback.invalidate_table(name)

    def finalize_load(self) -> None:
        """Convenience: build configured indexes and ANALYZE everything."""
        if self.settings.auto_foreign_key_indexes:
            self.build_indexes()
        self.analyze()

    def drop_table(self, name: str) -> None:
        """Drop a table (used to clean up temporary tables)."""
        self.catalog.drop(name)
        self.feedback.invalidate_table(name)

    # -- querying -------------------------------------------------------------

    def parse(self, sql: str, name: Optional[str] = None) -> BoundQuery:
        """Parse and bind a SQL SELECT statement."""
        return self.binder.bind(parse_select(sql, name=name))

    def _as_bound(self, query: Union[str, BoundQuery]) -> BoundQuery:
        if isinstance(query, str):
            return self.parse(query)
        return query

    def plan(
        self,
        query: Union[str, BoundQuery],
        injector: Optional[CardinalityInjector] = None,
    ) -> PlannedQuery:
        """Optimize a query (SQL text or bound query)."""
        return self.optimizer.plan(self._as_bound(query), injector=injector)

    def execute_plan(self, planned: PlannedQuery) -> ExecutionResult:
        """Execute a previously planned query."""
        return self.executor.execute(planned.plan)

    def run(
        self,
        query: Union[str, BoundQuery],
        injector: Optional[CardinalityInjector] = None,
    ) -> QueryRun:
        """Plan and execute a query in one call."""
        planned = self.plan(query, injector=injector)
        execution = self.execute_plan(planned)
        return QueryRun(planned=planned, execution=execution)

    def explain(
        self,
        query: Union[str, BoundQuery],
        injector: Optional[CardinalityInjector] = None,
        analyze: bool = False,
    ) -> str:
        """Return the EXPLAIN (or EXPLAIN ANALYZE) text of a query."""
        planned = self.plan(query, injector=injector)
        execution = self.execute_plan(planned) if analyze else None
        return explain_plan(planned.plan, execution)

    # -- temporary tables (re-optimization support) ------------------------------

    def next_temp_table_name(self, base: str = "temp") -> str:
        """Generate a fresh temporary table name (thread-safe)."""
        return f"__{base}{next(self._temp_ids)}"

    def create_temp_table_from_result(
        self,
        name: str,
        result: ResultSet,
        columns: Sequence[Tuple[Tuple[str, str], str]],
        alias_tables: Optional[Dict[str, str]] = None,
        analyze: Optional[bool] = None,
    ) -> Table:
        """Materialize selected columns of a result set into a new table.

        Args:
            name: catalog name of the temporary table.
            result: the result set to materialize.
            columns: sequence of ``((source_alias, source_column), new_name)``
                describing which result columns to keep and what to call them.
            alias_tables: optional mapping from result alias to the catalog
                table it came from; used to carry column types over exactly.
            analyze: whether to ANALYZE the new table (defaults to the
                engine-wide ``analyze_temp_tables`` setting).

        Returns:
            The storage object of the created table.
        """
        if name in self.catalog:
            raise TempTableExists(f"temporary table {name!r} already exists")
        column_defs = []
        column_data = []
        for (source_alias, source_column), new_name in columns:
            values = result.column_values(source_alias, source_column)
            col_type = None
            if alias_tables and source_alias in alias_tables:
                source_schema = self.catalog.schema(alias_tables[source_alias])
                if source_schema.has_column(source_column):
                    col_type = source_schema.column(source_column).col_type
            if col_type is None:
                col_type = _infer_type(values)
            column_defs.append(ColumnDef(new_name, col_type))
            column_data.append(values)
        schema = TableSchema(name=name, columns=tuple(column_defs))
        with self.catalog.lock:
            table = self.create_table(schema)
            table.load_columns(column_data)
            do_analyze = (
                self.settings.analyze_temp_tables if analyze is None else analyze
            )
            if do_analyze:
                self.catalog.set_stats(
                    name,
                    analyze_table(
                        table,
                        self.settings.statistics_target,
                        sample_target=self.settings.sample_rows,
                    ),
                )
            self.feedback.invalidate_table(name)
        return table


    # -- in-memory intermediates (adaptive execution support) ---------------------

    def register_intermediate_result(
        self,
        name: str,
        result: ResultSet,
        columns: Sequence[Tuple[Tuple[str, str], str]],
        alias_tables: Optional[Dict[str, str]] = None,
    ) -> IntermediateTable:
        """Register an in-memory result as a transient pseudo-table.

        This is the adaptive executor's handover path: unlike
        :meth:`create_temp_table_from_result` it issues no DDL — the result's
        column value lists back the pseudo-table directly, the catalog epoch
        is *not* bumped (cached plans for other statements stay valid), and
        no statistics are gathered (the caller injects the exact cardinality
        when re-planning).  The caller must drop the pseudo-table with
        :meth:`drop_intermediate` before the statement returns.
        """
        column_defs = []
        column_data = []
        for (source_alias, source_column), new_name in columns:
            values = result.column_values(source_alias, source_column)
            col_type = None
            if alias_tables and source_alias in alias_tables:
                source_schema = self.catalog.schema(alias_tables[source_alias])
                if source_schema.has_column(source_column):
                    col_type = source_schema.column(source_column).col_type
            if col_type is None:
                col_type = _infer_type(values)
            column_defs.append(ColumnDef(new_name, col_type))
            column_data.append(values)
        schema = TableSchema(name=name, columns=tuple(column_defs))
        table = IntermediateTable(schema, column_data)
        self.catalog.register_transient(schema, table)
        return table

    def drop_intermediate(self, name: str) -> None:
        """Drop a transient pseudo-table (no epoch bump)."""
        self.catalog.drop_transient(name)

    # -- snapshots (serving support) ----------------------------------------------

    def snapshot(self) -> "Database":
        """Pin a read-only point-in-time view of this database.

        Returns a :class:`~repro.engine.snapshot.SnapshotDatabase`: the same
        facade over a :meth:`~repro.catalog.catalog.Catalog.snapshot` of the
        catalog, so a statement executing against it never blocks — and is
        never torn by — concurrent ANALYZE, loads or DDL on this instance.
        """
        from repro.engine.snapshot import SnapshotDatabase

        return SnapshotDatabase(self)


def _infer_type(values: Iterable[object]) -> ColumnType:
    """Infer a column type from sample values (fallback for derived columns)."""
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            return ColumnType.INT
        if isinstance(value, int):
            return ColumnType.INT
        if isinstance(value, float):
            return ColumnType.FLOAT
        return ColumnType.TEXT
    return ColumnType.INT
