"""LRU plan cache for the Connection/Cursor serving API.

Plans are cached under ``(normalized SQL, catalog epoch)``.  The normalized
SQL is the canonical rendering of the *bound* query (whitespace, keyword
case and parameter values already resolved), so an ad-hoc statement and a
prepared statement executed with the same values share one entry.  Keying on
the catalog epoch makes invalidation implicit: ANALYZE, index creation and
(temp-)table DDL all bump the epoch, so stale entries can never be served
again.  They are also *pruned eagerly*: the first probe after an epoch bump
drops every entry from older epochs (counted in
:attr:`PlanCacheStats.stale_evictions`), so dead plans do not squat in the
LRU capacity and push out live ones — a tiny cache stays fully usable across
ANALYZE/DDL churn.

The cache is **thread-safe**: one process-wide instance can back every
session of the concurrent serving layer (:mod:`repro.server`).  All probes,
inserts and prunes run under an internal lock, so concurrent churn can
neither lose entries, corrupt the LRU order, nor double-count stats.  Epoch
pruning is additionally monotonic: a session still executing against an
*older* pinned snapshot may probe with its older epoch without clobbering
entries cached by sessions already at the newer epoch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.optimizer import PlannedQuery

#: Default number of plans kept per connection.
DEFAULT_PLAN_CACHE_SIZE = 64

CacheKey = Tuple[Hashable, ...]


@dataclass
class PlanCacheStats:
    """Hit/miss accounting exposed on :class:`~repro.engine.connection.Connection`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries dropped because the catalog epoch moved past them (they could
    #: never hit again), as opposed to LRU capacity ``evictions``.
    stale_evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class PlanCache:
    """A bounded LRU mapping of cache keys to planned queries."""

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        if capacity < 0:
            raise ValueError("plan cache capacity must be non-negative")
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._entries: (
            "OrderedDict[CacheKey, Tuple[PlannedQuery, Optional[Hashable]]]"
        ) = OrderedDict()
        self._epoch: Optional[Hashable] = None
        # Guards _entries, _epoch and the stats counters: get/put interleave
        # an unlocked OrderedDict probe with move_to_end/popitem mutations,
        # which concurrent sessions would corrupt (lost entries, broken LRU
        # links, double-counted stats) without mutual exclusion.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def enabled(self) -> bool:
        """False when the cache was configured with zero capacity."""
        return self.capacity > 0

    def _prune_stale(self, epoch: Optional[Hashable]) -> None:
        """Drop entries from older epochs on the first probe after a bump.

        Must be called with the lock held.  The prune is monotonic: a probe
        carrying an epoch *older* than the one already observed (a session
        still serving a statement against an earlier pinned snapshot) leaves
        the cache untouched instead of evicting the newer entries.
        """
        if epoch is None or epoch == self._epoch:
            return
        if (
            isinstance(epoch, int)
            and isinstance(self._epoch, int)
            and epoch < self._epoch
        ):
            return
        stale = [
            key
            for key, (_, entry_epoch) in self._entries.items()
            if entry_epoch != epoch
        ]
        for key in stale:
            del self._entries[key]
        self.stats.stale_evictions += len(stale)
        self._epoch = epoch

    def get(
        self, key: CacheKey, epoch: Optional[Hashable] = None
    ) -> Optional["PlannedQuery"]:
        """Look up a plan, counting the probe as a hit or miss.

        ``epoch`` is the caller's current catalog epoch; passing it lets the
        cache prune entries stranded by an epoch bump before the lookup.
        """
        with self._lock:
            self._prune_stale(epoch)
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0]

    def put(
        self,
        key: CacheKey,
        planned: "PlannedQuery",
        epoch: Optional[Hashable] = None,
    ) -> None:
        """Insert (or refresh) a plan, evicting the least recently used."""
        if not self.enabled:
            return
        with self._lock:
            self._prune_stale(epoch)
            self._entries[key] = (planned, epoch)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (the stats counters are kept)."""
        with self._lock:
            self._entries.clear()
