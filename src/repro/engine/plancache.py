"""LRU plan cache for the Connection/Cursor serving API.

Plans are cached under ``(normalized SQL, catalog epoch)``.  The normalized
SQL is the canonical rendering of the *bound* query (whitespace, keyword
case and parameter values already resolved), so an ad-hoc statement and a
prepared statement executed with the same values share one entry.  Keying on
the catalog epoch makes invalidation implicit: ANALYZE, index creation and
(temp-)table DDL all bump the epoch, so stale entries miss and age out of
the LRU instead of requiring invalidation callbacks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.optimizer import PlannedQuery

#: Default number of plans kept per connection.
DEFAULT_PLAN_CACHE_SIZE = 64

CacheKey = Tuple[Hashable, ...]


@dataclass
class PlanCacheStats:
    """Hit/miss accounting exposed on :class:`~repro.engine.connection.Connection`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class PlanCache:
    """A bounded LRU mapping of cache keys to planned queries."""

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        if capacity < 0:
            raise ValueError("plan cache capacity must be non-negative")
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._entries: "OrderedDict[CacheKey, PlannedQuery]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        """False when the cache was configured with zero capacity."""
        return self.capacity > 0

    def get(self, key: CacheKey) -> Optional["PlannedQuery"]:
        """Look up a plan, counting the probe as a hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: CacheKey, planned: "PlannedQuery") -> None:
        """Insert (or refresh) a plan, evicting the least recently used."""
        if not self.enabled:
            return
        self._entries[key] = planned
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (the stats counters are kept)."""
        self._entries.clear()
