"""The DB-API-2.0-style serving surface: ``repro.connect()``.

A :class:`Connection` wraps a :class:`~repro.engine.database.Database` in a
:class:`~repro.engine.pipeline.QueryPipeline` whose interceptor chain is, in
order: timing/metrics collection, the LRU plan cache, optional EXPLAIN
capture, any user-supplied interceptors, and the re-optimization loop
innermost around the execute stage.  :class:`Cursor` follows the DB-API
fetch protocol; :meth:`Connection.prepare` returns a
:class:`PreparedStatement` whose ``?`` placeholders are lowered through the
lexer/parser/binder once and substituted per execution.

The engine is in-memory and autocommits; ``commit``/``rollback`` exist for
DB-API compatibility and do nothing.
"""

from __future__ import annotations

import weakref
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import ColumnType
from repro.engine.database import Database
from repro.engine.pipeline import (
    ConnectionMetrics,
    ExplainCaptureInterceptor,
    FeedbackHarvestInterceptor,
    MetricsInterceptor,
    PlanCacheInterceptor,
    QueryContext,
    QueryInterceptor,
    QueryPipeline,
)
from repro.engine.plancache import PlanCache, PlanCacheStats
from repro.engine.settings import EngineSettings
from repro.errors import InterfaceError
from repro.optimizer.injection import CardinalityInjector
from repro.sql.ast import AggregateFunc, ColumnRef
from repro.sql.binder import BoundQuery
from repro.sql.params import bind_parameters
from repro.sql.parser import parse_select

# DB-API 2.0 module attributes (PEP 249).
apilevel = "2.0"
threadsafety = 1
paramstyle = "qmark"

#: One column of ``Cursor.description``: a PEP 249 7-tuple of
#: ``(name, type_code, display_size, internal_size, precision, scale,
#: null_ok)``.  ``type_code`` is the engine's
#: :class:`~repro.catalog.schema.ColumnType` when it can be derived
#: (``COUNT`` → INT, ``AVG`` → FLOAT, everything else the column's type).
ColumnDescription = Tuple[
    str, Optional[ColumnType], None, None, None, None, None
]


def connect(
    database: Optional[Database] = None,
    *,
    settings: Optional[EngineSettings] = None,
    policy=None,
    reoptimize: bool = True,
    adaptive: Optional[bool] = None,
    plan_cache_size: Optional[int] = None,
    interceptors: Sequence[QueryInterceptor] = (),
    capture_explain: bool = False,
    **overrides: object,
) -> "Connection":
    """Open a connection (the package-level entry point of the serving API).

    Engine configuration follows one precedence order — explicit keyword >
    ``settings`` object > defaults (see
    :meth:`~repro.engine.settings.EngineSettings.resolve`): any
    :class:`~repro.engine.settings.EngineSettings` field may be passed as a
    keyword (``connect(engine="parallel", workers=8, estimator="feedback")``)
    and is lowered onto ``settings``.  Unknown keywords raise
    :class:`~repro.errors.ConfigError` naming the nearest valid field.  When
    ``database`` is an existing instance, the resolved settings are applied
    to it (its executor and estimation strategy are rebuilt).

    Args:
        database: an existing engine instance; a fresh empty one is created
            when omitted.
        settings: the engine configuration object; keyword overrides lower
            onto it.
        policy: :class:`~repro.core.triggers.ReoptimizationPolicy` for the
            re-optimization interceptor.
        reoptimize: disable to serve statements without the
            materialize-and-re-plan loop.
        adaptive: ``True`` serves statements with operator-level adaptive
            execution (stage-wise executor, in-memory intermediate handover),
            ``False`` with the paper's materialize-and-rewrite simulation;
            default follows the engine's ``adaptive`` setting.
        plan_cache_size: LRU capacity for *this connection's* plan cache
            (defaults to the engine settings; 0 disables caching).
        interceptors: extra middleware, run between the bundled interceptors
            and the re-optimization loop.
        capture_explain: record EXPLAIN ANALYZE text of every statement on
            its cursor (``Cursor.explain_text``).
        **overrides: :class:`EngineSettings` fields — ``engine``, ``workers``,
            ``morsel_size``, ``memory_budget``, ``estimator``, ... — applied
            at the highest precedence.
    """
    return Connection(
        database,
        settings=settings,
        policy=policy,
        reoptimize=reoptimize,
        adaptive=adaptive,
        plan_cache_size=plan_cache_size,
        interceptors=interceptors,
        capture_explain=capture_explain,
        **overrides,
    )


class Connection:
    """A serving session over one database (see module docstring)."""

    def __init__(
        self,
        database: Optional[Database] = None,
        *,
        settings: Optional[EngineSettings] = None,
        policy=None,
        reoptimize: bool = True,
        adaptive: Optional[bool] = None,
        plan_cache_size: Optional[int] = None,
        interceptors: Sequence[QueryInterceptor] = (),
        capture_explain: bool = False,
        **overrides: object,
    ) -> None:
        # Imported here, not at module level: repro.core's interceptor is
        # layered on the pipeline this class drives, so a top-level import
        # would be circular.
        from repro.core.interceptor import ReoptimizationInterceptor
        from repro.core.triggers import ReoptimizationPolicy

        supplied = {k: v for k, v in overrides.items() if v is not None}
        if database is None:
            self.database = Database(EngineSettings.resolve(settings, **overrides))
        else:
            self.database = database
            if settings is not None or supplied:
                base = settings if settings is not None else database.settings
                resolved = EngineSettings.resolve(base, **overrides)
                database.settings = resolved
                database.executor = database.executor_for(resolved.engine)
                database.optimizer.strategy = database._build_strategy(
                    resolved.estimator
                )
        if plan_cache_size is None:
            plan_cache_size = self.database.settings.plan_cache_size
        self.metrics = ConnectionMetrics()
        self.plan_cache = PlanCache(plan_cache_size)
        self.policy = policy or (ReoptimizationPolicy() if reoptimize else None)
        chain: List[QueryInterceptor] = [MetricsInterceptor(self.metrics)]
        if self.plan_cache.enabled:
            chain.append(PlanCacheInterceptor(self.plan_cache))
        if capture_explain:
            chain.append(ExplainCaptureInterceptor())
        chain.extend(interceptors)
        # Outside the re-optimization loop so it sees the final report; the
        # store accumulates under every strategy, so switching to
        # ``estimator="feedback"`` later benefits from earlier statements.
        chain.append(FeedbackHarvestInterceptor())
        if reoptimize:
            chain.append(ReoptimizationInterceptor(self.policy, adaptive=adaptive))
        self.pipeline = QueryPipeline(self.database, chain)
        self._closed = False
        # Outstanding cursors/prepared statements, invalidated on close();
        # weak references so dropped handles do not accumulate here.
        self._cursors: "weakref.WeakSet[Cursor]" = weakref.WeakSet()
        self._statements: "weakref.WeakSet[PreparedStatement]" = weakref.WeakSet()

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called."""
        return self._closed

    def close(self) -> None:
        """Close the connection; further statements raise InterfaceError.

        Every outstanding :class:`Cursor` and :class:`PreparedStatement` is
        invalidated too, so a handle created before the close raises a clean
        :class:`~repro.errors.InterfaceError` instead of acting on a dead
        database.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        for cursor in list(self._cursors):
            cursor.close()
        for statement in list(self._statements):
            statement.close()
        self.plan_cache.clear()

    def commit(self) -> None:
        """No-op (the engine is in-memory and autocommits)."""
        self._check_open()

    def rollback(self) -> None:
        """No-op (the engine is in-memory and autocommits)."""
        self._check_open()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    # -- statements ---------------------------------------------------------

    def cursor(self) -> "Cursor":
        """Open a new cursor."""
        self._check_open()
        return Cursor(self)

    def execute(
        self, sql: str, params: Optional[Sequence[object]] = None
    ) -> "Cursor":
        """Convenience: open a cursor and execute one statement on it."""
        return self.cursor().execute(sql, params)

    def prepare(self, sql: str, name: Optional[str] = None) -> "PreparedStatement":
        """Parse and bind a parameterized statement once for re-execution."""
        self._check_open()
        return PreparedStatement(self, sql, name=name)

    def run_bound(
        self,
        query: BoundQuery,
        injector: Optional[CardinalityInjector] = None,
    ) -> QueryContext:
        """Run an already-bound query through the pipeline.

        This is the entry the benchmark harness and the session shim use;
        it returns the full :class:`~repro.engine.pipeline.QueryContext`
        instead of a cursor.
        """
        self._check_open()
        return self.pipeline.run(bound=query, injector=injector)

    # -- DDL / maintenance (epoch-bumping operations) -----------------------

    def analyze(self, tables: Optional[Sequence[str]] = None) -> None:
        """Run ANALYZE; cached plans are invalidated via the catalog epoch."""
        self._check_open()
        self.database.analyze(tables)

    def create_index(self, table_name: str, column: str) -> None:
        """Create a hash index; cached plans are invalidated via the epoch."""
        self._check_open()
        self.database.create_index(table_name, column)

    # -- introspection ------------------------------------------------------

    @property
    def cache_stats(self) -> PlanCacheStats:
        """Plan cache hit/miss/eviction counters."""
        return self.plan_cache.stats


class Cursor:
    """DB-API-style cursor over one connection."""

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self.arraysize = 1
        self._closed = False
        self._context: Optional[QueryContext] = None
        self._rows: List[tuple] = []
        self._position = 0
        self._description: Optional[List[ColumnDescription]] = None
        connection._cursors.add(self)

    # -- execution ----------------------------------------------------------

    def execute(
        self, sql: str, params: Optional[Sequence[object]] = None
    ) -> "Cursor":
        """Run one SELECT statement (``?`` placeholders filled from params)."""
        self._check_open()
        ctx = self.connection.pipeline.run(sql=sql, params=params)
        self._install(ctx)
        return self

    def executemany(
        self, sql: str, seq_of_params: Sequence[Sequence[object]]
    ) -> "Cursor":
        """Run the statement once per parameter tuple (last result wins).

        The SQL is parsed and bound once (as a prepared template); only
        parameter substitution, planning and execution repeat per tuple.
        """
        self._check_open()
        statement = self.connection.prepare(sql)
        for params in seq_of_params:
            self._install(statement._run(params))
        return self

    def _install(self, ctx: QueryContext) -> None:
        self._context = ctx
        self._rows = list(ctx.rows)
        self._position = 0
        self._description = _describe(ctx)

    # -- fetching -----------------------------------------------------------

    def fetchone(self) -> Optional[tuple]:
        """Next result row, or None when exhausted."""
        self._check_result()
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[tuple]:
        """Up to ``size`` rows (default ``arraysize``)."""
        self._check_result()
        count = self.arraysize if size is None else size
        chunk = self._rows[self._position : self._position + count]
        self._position += len(chunk)
        return chunk

    def fetchall(self) -> List[tuple]:
        """All remaining rows."""
        self._check_result()
        chunk = self._rows[self._position :]
        self._position = len(self._rows)
        return chunk

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- metadata -----------------------------------------------------------

    @property
    def description(self) -> Optional[List[ColumnDescription]]:
        """PEP 249 column descriptions of the last result (name first)."""
        return self._description

    @property
    def rowcount(self) -> int:
        """Number of rows in the last result (-1 before any execute)."""
        if self._context is None:
            return -1
        return len(self._rows)

    @property
    def context(self) -> QueryContext:
        """Lifecycle context of the last statement (pipeline accounting)."""
        self._check_result()
        return self._context

    @property
    def explain_text(self) -> Optional[str]:
        """EXPLAIN ANALYZE text (connections opened with capture_explain)."""
        self._check_result()
        return self._context.explain_text

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called (or the connection closed)."""
        return self._closed

    def close(self) -> None:
        """Close the cursor; further use raises InterfaceError. Idempotent."""
        self._closed = True
        self._rows = []
        self._context = None
        self._description = None

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()

    def _check_result(self) -> None:
        self._check_open()
        if self._context is None:
            raise InterfaceError("no statement has been executed on this cursor")


class PreparedStatement:
    """A statement parsed and bound once, executed many times.

    The SQL may contain positional ``?`` placeholders (`paramstyle`
    ``qmark``); each :meth:`execute` substitutes the given values into the
    bound template and runs it through the connection's pipeline, where the
    plan cache turns repeated executions into cache hits.
    """

    def __init__(
        self, connection: Connection, sql: str, name: Optional[str] = None
    ) -> None:
        self.connection = connection
        self.sql = sql
        self._closed = False
        self._template = connection.database.binder.bind(parse_select(sql, name=name))
        connection._statements.add(self)

    @property
    def param_count(self) -> int:
        """Number of ``?`` placeholders in the statement."""
        return self._template.param_count

    @property
    def closed(self) -> bool:
        """True once the statement (or its connection) was closed."""
        return self._closed

    def close(self) -> None:
        """Invalidate the statement; further execution raises InterfaceError."""
        self._closed = True

    def execute(self, params: Sequence[object] = ()) -> Cursor:
        """Execute with the given parameter values; returns a fresh cursor."""
        ctx = self._run(params)
        cursor = Cursor(self.connection)
        cursor._install(ctx)
        return cursor

    def _run(self, params: Sequence[object]) -> QueryContext:
        """Substitute parameters into the template and run the pipeline."""
        if self._closed:
            raise InterfaceError("prepared statement is closed")
        self.connection._check_open()
        bound = bind_parameters(self._template, params)
        return self.connection.pipeline.run(bound=bound)


def _describe(ctx: QueryContext) -> List[ColumnDescription]:
    """Build PEP 249 column descriptions for a finished statement."""
    bound = ctx.bound
    catalog = ctx.database.catalog
    columns: List[Tuple[str, Optional[ColumnType]]] = []

    def base_type(ref) -> Optional[ColumnType]:
        if ref is None or ref.alias is None:
            return None
        table = bound.alias_tables.get(ref.alias) if bound is not None else None
        if table is None or table not in catalog:
            return None
        schema = catalog.schema(table)
        if not schema.has_column(ref.column):
            return None
        return schema.column(ref.column).col_type

    if bound is not None and bound.select_items:
        for item in bound.select_items:
            if item.output_name:
                name = item.output_name
            elif item.aggregate is not None:
                target = "*" if item.expr is None else str(item.expr)
                name = f"{item.aggregate.value}({target})"
            else:
                name = str(item.expr)
            if isinstance(item.result_type, ColumnType):
                # The binder inferred the output type (numeric widening for
                # arithmetic, common branch type for CASE, COUNT -> INT,
                # AVG -> FLOAT).
                col_type: Optional[ColumnType] = item.result_type
            elif item.aggregate is AggregateFunc.COUNT:
                col_type = ColumnType.INT
            elif item.aggregate is AggregateFunc.AVG:
                col_type = ColumnType.FLOAT
            else:  # hand-built unbound items fall back to the catalog type
                col_type = base_type(item.column)
            columns.append((name, col_type))
    elif ctx.execution is not None:
        for alias, column in ctx.execution.result.columns:
            columns.append(
                (f"{alias}.{column}", base_type(ColumnRef(alias=alias, column=column)))
            )
    return [
        (name, col_type, None, None, None, None, None) for name, col_type in columns
    ]
