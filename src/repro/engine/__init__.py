"""Engine facade: the ``Database`` entry point and engine settings."""

from repro.engine.database import Database, QueryRun
from repro.engine.settings import EngineSettings

__all__ = ["Database", "EngineSettings", "QueryRun"]
