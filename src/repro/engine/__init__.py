"""Engine facade: the serving API, query pipeline and engine settings."""

from repro.engine.connection import (
    Connection,
    Cursor,
    PreparedStatement,
    apilevel,
    connect,
    paramstyle,
    threadsafety,
)
from repro.engine.database import Database, QueryRun
from repro.engine.pipeline import (
    ConnectionMetrics,
    ExplainCaptureInterceptor,
    FeedbackHarvestInterceptor,
    MetricsInterceptor,
    PlanCacheInterceptor,
    QueryContext,
    QueryInterceptor,
    QueryPipeline,
)
from repro.engine.plancache import PlanCache, PlanCacheStats
from repro.engine.settings import EngineSettings
from repro.executor.executor import ExecutionEngine

__all__ = [
    "Connection",
    "ConnectionMetrics",
    "Cursor",
    "Database",
    "EngineSettings",
    "ExecutionEngine",
    "ExplainCaptureInterceptor",
    "FeedbackHarvestInterceptor",
    "MetricsInterceptor",
    "PlanCache",
    "PlanCacheInterceptor",
    "PlanCacheStats",
    "PreparedStatement",
    "QueryContext",
    "QueryInterceptor",
    "QueryPipeline",
    "QueryRun",
    "apilevel",
    "connect",
    "paramstyle",
    "threadsafety",
]
