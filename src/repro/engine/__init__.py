"""Engine facade: the ``Database`` entry point and engine settings."""

from repro.engine.database import Database, QueryRun
from repro.engine.settings import EngineSettings
from repro.executor.executor import ExecutionEngine

__all__ = ["Database", "EngineSettings", "ExecutionEngine", "QueryRun"]
