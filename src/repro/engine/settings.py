"""Engine-wide settings: the single validated configuration object.

Collects the knobs the paper's experimental setup mentions (statistics
target, planner limits, cost constants) — plus the engine's own knobs
(execution engine, parallelism, plan cache, estimator strategy, feedback
persistence) — into one object so benchmarks, tests, ``connect()``, the
threaded server and the CLI all configure engines the same way.

Configuration precedence, everywhere a settings object is accepted:

1. an explicit keyword argument (``connect(workers=8)``),
2. the provided settings object (``connect(settings=EngineSettings(...))``),
3. the field defaults below.

:meth:`EngineSettings.resolve` implements exactly that lowering;
:meth:`EngineSettings.replace` derives a validated copy with overrides.
Unknown keyword names raise :class:`~repro.errors.ConfigError` naming the
nearest valid field.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass, field
from typing import Optional

from repro.engine.plancache import DEFAULT_PLAN_CACHE_SIZE
from repro.errors import ConfigError
from repro.executor.executor import ExecutionEngine
from repro.optimizer.cost import CostParameters
from repro.optimizer.enumeration import PlannerConfig
from repro.optimizer.feedback import DEFAULT_FEEDBACK_CAPACITY

#: Estimator strategy names accepted by ``EngineSettings.estimator``; kept in
#: sync with :data:`repro.optimizer.estimators.STRATEGIES` (asserted by tests)
#: but spelled out here so validating settings never imports the optimizer.
ESTIMATOR_NAMES = ("feedback", "sampling", "stats", "upper-bound")


@dataclass
class EngineSettings:
    """Configuration for a :class:`~repro.engine.database.Database`.

    Attributes:
        statistics_target: MCV entries / histogram buckets per column
            (the paper maxes out PostgreSQL's ``default_statistics_target``;
            our ANALYZE is exact regardless, see ``repro.stats.analyze``).
        planner: join-enumeration limits.
        cost: cost model constants.
        auto_foreign_key_indexes: build hash indexes on primary and foreign
            keys at load time (the paper adds foreign-key indexes to make
            access-path selection harder).
        analyze_temp_tables: whether temporary tables created by the
            re-optimizer are ANALYZEd before re-planning (ablation knob).
        engine: operator implementation used to execute plans — the
            vectorized columnar engine (default) or the row-at-a-time
            reference oracle.  Charged work is engine-invariant; only
            wall-clock changes.  Accepts the enum or its string name.
        plan_cache_size: default LRU capacity of a connection's plan cache
            (0 disables caching; per-connection override on ``connect()``).
        adaptive: run re-optimization as operator-level adaptive execution
            (stage-wise execution with in-memory intermediate handover, see
            :mod:`repro.executor.adaptive`) instead of the paper's
            materialize-and-rewrite simulation.  Off by default so the
            paper-figure benchmarks keep reproducing the published accounting;
            per-connection override on ``connect()``.
        workers: worker-pool size for the morsel-driven parallel engine
            (``engine="parallel"``); ignored by the serial engines.
        morsel_size: rows per morsel for the parallel engine's scan and
            join splitting; ignored by the serial engines.
        memory_budget: max rows a pipeline breaker may hold in memory
            (``None`` = unbounded).  When set, hash-join build sides larger
            than the budget run as grace hash joins and oversized sorts as
            external merge sorts, both spilling row-index runs to temp files
            (see :mod:`repro.executor.spilling`); results are bit-identical
            to in-memory execution.
        estimator: active cardinality-estimation strategy — one of
            :data:`ESTIMATOR_NAMES` (see :mod:`repro.optimizer.estimators`).
            The default ``"stats"`` reproduces the paper's PostgreSQL-style
            model bit-for-bit.
        feedback_capacity: LRU capacity of the database's persistent
            cardinality-feedback store (:mod:`repro.optimizer.feedback`).
        feedback_path: JSON file to warm the feedback store from at startup
            (``None`` = start cold; saving is explicit via
            ``FeedbackStore.save``).
        sample_rows: reservoir-sample rows ANALYZE keeps per table for the
            sampling estimator (0 disables sampling).
    """

    statistics_target: int = 100
    planner: PlannerConfig = field(default_factory=PlannerConfig)
    cost: CostParameters = field(default_factory=CostParameters)
    auto_foreign_key_indexes: bool = True
    analyze_temp_tables: bool = True
    engine: ExecutionEngine = ExecutionEngine.VECTORIZED
    plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE
    adaptive: bool = False
    workers: int = 4
    morsel_size: int = 4096
    memory_budget: Optional[int] = None
    estimator: str = "stats"
    feedback_capacity: int = DEFAULT_FEEDBACK_CAPACITY
    feedback_path: Optional[str] = None
    sample_rows: int = 100

    def __post_init__(self) -> None:
        self.engine = ExecutionEngine.from_name(self.engine)
        _require(self.statistics_target >= 1, "statistics_target must be >= 1")
        _require(self.plan_cache_size >= 0, "plan_cache_size must be >= 0")
        _require(self.workers >= 1, "workers must be >= 1")
        _require(self.morsel_size >= 1, "morsel_size must be >= 1")
        _require(
            self.memory_budget is None or self.memory_budget >= 1,
            "memory_budget must be >= 1 (or None for unbounded)",
        )
        _require(self.feedback_capacity >= 1, "feedback_capacity must be >= 1")
        _require(self.sample_rows >= 0, "sample_rows must be >= 0")
        if self.estimator not in ESTIMATOR_NAMES:
            raise ConfigError(
                f"unknown estimator {self.estimator!r}; "
                f"choose one of {list(ESTIMATOR_NAMES)}"
            )

    def replace(self, **overrides: object) -> "EngineSettings":
        """A validated copy with ``overrides`` applied.

        Unknown field names raise :class:`~repro.errors.ConfigError` naming
        the nearest valid field; values are re-validated by ``__post_init__``.
        """
        valid = {f.name for f in dataclasses.fields(self)}
        for key in overrides:
            if key not in valid:
                raise ConfigError(_unknown_setting_message(key, valid))
        return dataclasses.replace(self, **overrides)

    @classmethod
    def resolve(
        cls, settings: "Optional[EngineSettings]" = None, **overrides: object
    ) -> "EngineSettings":
        """Lower keyword overrides onto ``settings`` (or the defaults).

        This is the one precedence rule used by ``connect()``, the server
        and the CLI: an explicit (non-``None``) keyword beats the settings
        object, which beats the defaults.  ``None`` overrides mean "not
        specified" and are dropped — no settings field is ``None``-valued
        except ``memory_budget``/``feedback_path``, which callers set through
        a settings object when they genuinely mean "unset".
        """
        base = settings if settings is not None else cls()
        supplied = {k: v for k, v in overrides.items() if v is not None}
        return base.replace(**supplied)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _unknown_setting_message(key: str, valid: "set[str]") -> str:
    close = difflib.get_close_matches(key, sorted(valid), n=1)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    return f"unknown engine setting {key!r}{hint}"
