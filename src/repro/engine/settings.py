"""Engine-wide settings.

Collects the knobs the paper's experimental setup mentions (statistics
target, planner limits, cost constants) into one object so that benchmarks
and tests can spin up differently configured engines succinctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.plancache import DEFAULT_PLAN_CACHE_SIZE
from repro.executor.executor import ExecutionEngine
from repro.optimizer.cost import CostParameters
from repro.optimizer.enumeration import PlannerConfig


@dataclass
class EngineSettings:
    """Configuration for a :class:`~repro.engine.database.Database`.

    Attributes:
        statistics_target: MCV entries / histogram buckets per column
            (the paper maxes out PostgreSQL's ``default_statistics_target``;
            our ANALYZE is exact regardless, see ``repro.stats.analyze``).
        planner: join-enumeration limits.
        cost: cost model constants.
        auto_foreign_key_indexes: build hash indexes on primary and foreign
            keys at load time (the paper adds foreign-key indexes to make
            access-path selection harder).
        analyze_temp_tables: whether temporary tables created by the
            re-optimizer are ANALYZEd before re-planning (ablation knob).
        engine: operator implementation used to execute plans — the
            vectorized columnar engine (default) or the row-at-a-time
            reference oracle.  Charged work is engine-invariant; only
            wall-clock changes.
        plan_cache_size: default LRU capacity of a connection's plan cache
            (0 disables caching; per-connection override on ``connect()``).
        adaptive: run re-optimization as operator-level adaptive execution
            (stage-wise execution with in-memory intermediate handover, see
            :mod:`repro.executor.adaptive`) instead of the paper's
            materialize-and-rewrite simulation.  Off by default so the
            paper-figure benchmarks keep reproducing the published accounting;
            per-connection override on ``connect()``.
        workers: worker-pool size for the morsel-driven parallel engine
            (``engine="parallel"``); ignored by the serial engines.
        morsel_size: rows per morsel for the parallel engine's scan and
            join splitting; ignored by the serial engines.
        memory_budget: max rows a pipeline breaker may hold in memory
            (``None`` = unbounded).  When set, hash-join build sides larger
            than the budget run as grace hash joins and oversized sorts as
            external merge sorts, both spilling row-index runs to temp files
            (see :mod:`repro.executor.spilling`); results are bit-identical
            to in-memory execution.
    """

    statistics_target: int = 100
    planner: PlannerConfig = field(default_factory=PlannerConfig)
    cost: CostParameters = field(default_factory=CostParameters)
    auto_foreign_key_indexes: bool = True
    analyze_temp_tables: bool = True
    engine: ExecutionEngine = ExecutionEngine.VECTORIZED
    plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE
    adaptive: bool = False
    workers: int = 4
    morsel_size: int = 4096
    memory_budget: Optional[int] = None
