"""A read-only :class:`~repro.engine.database.Database` over a pinned catalog.

The serving layer executes every statement against a
:class:`SnapshotDatabase` pinned at statement start.  It is the ordinary
``Database`` facade — same optimizer, cost model, executor and binder —
constructed over a :class:`~repro.catalog.snapshot.CatalogSnapshot`, so the
whole query path (including the adaptive re-optimizer, whose temporary
tables and transient intermediates land on the session-local snapshot
catalog) runs unchanged and fully isolated from concurrent writers.

Writes against pinned base tables are rejected by the storage snapshots
themselves (:class:`~repro.errors.StorageError`); statement-local state such
as re-optimization temp tables is created as fresh writable tables on the
local catalog, so no override of the write API is needed.
"""

from __future__ import annotations

from repro.engine.database import Database

__all__ = ["SnapshotDatabase"]


class SnapshotDatabase(Database):
    """One statement's consistent view of a shared :class:`Database`."""

    def __init__(self, base: Database) -> None:
        # Share the base's feedback store: observations harvested on one
        # session's snapshot must seed plans on every other session.  The
        # estimation strategy itself is rebuilt over the *snapshot* catalog
        # so statistics reads stay pinned to this statement's view.
        super().__init__(
            base.settings, catalog=base.catalog.snapshot(), feedback=base.feedback
        )
        #: The shared database this snapshot was pinned from.
        self.base = base

    def snapshot(self) -> "Database":
        """Snapshots are already pinned; re-pinning returns a fresh one
        from the base so nested calls never stack views on views."""
        return self.base.snapshot()
