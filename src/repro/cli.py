"""Command-line interface: paper artifacts and an ad-hoc SQL shell.

Usage (after ``python setup.py develop``)::

    python -m repro.cli list
    python -m repro.cli run fig1 --scale 0.3
    python -m repro.cli run table2 fig7 --scale 0.25 --query-limit 60
    python -m repro.cli run all --scale 0.2 --output results.txt
    python -m repro.cli sql --scale 0.1 -e "SELECT count(t.id) AS n FROM title AS t"
    python -m repro.cli sql --scale 0.1          # REPL on stdin, ';' terminated

Every experiment prints the same text table the corresponding benchmark
prints, so the CLI is the quickest way to eyeball a single figure without
going through pytest.  The ``sql`` command serves statements over a
:class:`~repro.engine.connection.Connection` — re-optimization, plan caching
and metrics included — against a freshly built synthetic IMDB database.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Iterator, List, Optional, TextIO

from repro.bench import experiments as exp
from repro.bench.harness import WorkloadContext, build_context
from repro.bench.reporting import ExperimentResult
from repro.core.triggers import ReoptimizationPolicy
from repro.engine.connection import Connection, connect
from repro.engine.settings import ESTIMATOR_NAMES, EngineSettings
from repro.errors import ReproError
from repro.executor.executor import ExecutionEngine
from repro.workloads.imdb import ImdbConfig, build_imdb_database

#: Experiment registry: id -> (description, needs_context, runner).
EXPERIMENTS: Dict[str, tuple] = {
    "fig1": ("top-20 longest queries under five regimes", True, exp.figure1),
    "fig2": ("perfect-(n) sweep over the whole workload", True, exp.figure2),
    "fig5": ("LEO-style iterative estimate correction", True, exp.figure5),
    "fig6": ("the re-optimization rewrite example", True, exp.figure6),
    "fig7": ("re-optimization threshold sweep", True, exp.figure7),
    "fig8": ("perfect-(n) with and without re-optimization", True, exp.figure8),
    "fig9": ("per-query comparison (baseline / re-opt / perfect)", True, exp.figure9),
    "table1": ("number of cardinality estimates per join size", True, exp.table1),
    "table2": ("per-query runtime relative to perfect-(17)", True, exp.table2),
    "table3": ("queries per table count", True, exp.table3),
    "table45": ("the Nasdaq skew example", False, exp.table45),
    "table6": ("runtime after re-optimization relative to perfect-(17)", True, exp.table6),
    "ablation-site": ("lowest vs highest trigger join", True, exp.ablation_trigger_site),
    "ablation-stats": ("ANALYZE vs no ANALYZE on temp tables", True, exp.ablation_temp_table_stats),
    "ablation-midquery": ("materializing vs pipelined re-optimization", True, exp.ablation_midquery),
    "estimators": ("estimator-strategy x workload matrix (Q-error, re-plans)", True, exp.estimator_matrix),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Reproduce the paper's tables and figures."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'list'), or 'all'",
    )
    run.add_argument("--scale", type=float, default=None, help="dataset scale factor")
    run.add_argument("--seed", type=int, default=42, help="dataset seed")
    run.add_argument(
        "--query-limit", type=int, default=None, help="restrict the workload to the first N queries"
    )
    run.add_argument(
        "--engine",
        choices=[engine.value for engine in ExecutionEngine],
        default=None,
        help=(
            "execution engine: 'vectorized' (columnar batches, default), "
            "'reference' (row-at-a-time oracle) or 'parallel' (morsel-driven "
            "scans/joins over a worker pool); simulated times are identical, "
            "only wall-clock changes"
        ),
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool size for --engine parallel (default 4)",
    )
    run.add_argument(
        "--morsel-size",
        type=int,
        default=None,
        help="rows per morsel for --engine parallel (default 4096)",
    )
    run.add_argument(
        "--estimator",
        choices=list(ESTIMATOR_NAMES),
        default=None,
        help=(
            "cardinality-estimation strategy (default 'stats', the paper's "
            "PostgreSQL-style model; see repro.optimizer.estimators)"
        ),
    )
    run.add_argument("--output", type=str, default=None, help="also write results to this file")

    sql = subparsers.add_parser(
        "sql",
        help="serve ad-hoc SQL over a Connection to the synthetic IMDB database",
    )
    sql.add_argument("--scale", type=float, default=0.1, help="dataset scale factor")
    sql.add_argument("--seed", type=int, default=42, help="dataset seed")
    sql.add_argument(
        "--engine",
        choices=[engine.value for engine in ExecutionEngine],
        default=None,
        help="execution engine (vectorized default)",
    )
    sql.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool size for --engine parallel (default 4)",
    )
    sql.add_argument(
        "--morsel-size",
        type=int,
        default=None,
        help="rows per morsel for --engine parallel (default 4096)",
    )
    sql.add_argument(
        "--estimator",
        choices=list(ESTIMATOR_NAMES),
        default=None,
        help="cardinality-estimation strategy (default 'stats')",
    )
    sql.add_argument(
        "--execute",
        "-e",
        action="append",
        metavar="SQL",
        help="statement to run (repeatable); omit for a ';'-terminated REPL on stdin",
    )
    sql.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="re-optimization Q-error threshold (default: the paper's 32)",
    )
    sql.add_argument(
        "--no-reoptimize",
        action="store_true",
        help="serve statements without the re-optimization interceptor",
    )
    sql.add_argument(
        "--explain",
        action="store_true",
        help="print EXPLAIN ANALYZE for every statement",
    )
    sql.add_argument(
        "--max-rows", type=int, default=20, help="rows printed per result (default 20)"
    )

    serve = subparsers.add_parser(
        "serve",
        help=(
            "drive a concurrent demo load through the threaded serving loop "
            "(snapshot-isolated sessions, shared plan cache, admission control)"
        ),
    )
    serve.add_argument(
        "--clients", type=int, default=4, help="concurrent client threads (default 4)"
    )
    serve.add_argument(
        "--statements",
        type=int,
        default=25,
        help="statements per client (default 25)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="server worker threads (default 4)"
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        help="admission queue capacity (default 32)",
    )
    serve.add_argument(
        "--admission-timeout",
        type=float,
        default=0.5,
        help="seconds to wait for a queue slot before shedding (default 0.5)",
    )
    serve.add_argument(
        "--writer-churn",
        action="store_true",
        help="run a background ANALYZE/load loop to exercise snapshot isolation",
    )
    serve.add_argument("--seed", type=int, default=13, help="dataset seed")
    return parser


def _resolve_ids(requested: List[str]) -> List[str]:
    if any(item == "all" for item in requested):
        return list(EXPERIMENTS)
    unknown = [item for item in requested if item not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment(s): {', '.join(unknown)} (try 'list')")
    return requested


def _engine_settings(
    engine: Optional[str],
    workers: Optional[int] = None,
    morsel_size: Optional[int] = None,
    estimator: Optional[str] = None,
) -> Optional[EngineSettings]:
    """Settings for the CLI's engine knobs (None when all are default).

    Lowers the flags onto the defaults through
    :meth:`~repro.engine.settings.EngineSettings.resolve` — the same
    precedence rule ``connect()`` and ``Server`` use.
    """
    if engine is None and workers is None and morsel_size is None and estimator is None:
        return None
    return EngineSettings.resolve(
        None,
        engine=engine,
        workers=workers,
        morsel_size=morsel_size,
        estimator=estimator,
    )


def run_experiments(
    ids: List[str],
    scale: Optional[float] = None,
    seed: int = 42,
    query_limit: Optional[int] = None,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    morsel_size: Optional[int] = None,
    estimator: Optional[str] = None,
    emit: Callable[[str], None] = print,
) -> List[ExperimentResult]:
    """Run the requested experiments and emit their text artifacts."""
    ids = _resolve_ids(ids)
    settings = _engine_settings(engine, workers, morsel_size, estimator)
    context: Optional[WorkloadContext] = None
    results: List[ExperimentResult] = []
    for experiment_id in ids:
        _, needs_context, runner = EXPERIMENTS[experiment_id]
        start = time.perf_counter()
        if needs_context:
            if context is None:
                emit(
                    f"# building workload context (scale={scale or 'default'}, "
                    f"engine={engine or 'vectorized'})..."
                )
                context = build_context(
                    scale=scale, seed=seed, query_limit=query_limit, settings=settings
                )
            result = runner(context)
        else:
            result = runner()
        elapsed = time.perf_counter() - start
        results.append(result)
        emit("")
        emit(result.to_text())
        emit(f"# ({experiment_id} regenerated in {elapsed:.1f}s wall)")
    return results


def _iter_statements(stream: TextIO, interactive: bool) -> Iterator[str]:
    """Yield ``;``-terminated statements from a stream (REPL-style).

    Multiple statements on one line are split; a trailing statement without
    a terminating ``;`` is still executed at EOF.
    """
    buffer = ""
    if interactive:
        print("repro sql shell — end statements with ';', exit with Ctrl-D", flush=True)
    while True:
        if interactive:
            print("sql> " if not buffer.strip() else "...> ", end="", flush=True)
        line = stream.readline()
        if not line:
            break
        buffer += line
        while ";" in buffer:
            statement, _, buffer = buffer.partition(";")
            if statement.strip():
                yield statement.strip() + ";"
    if buffer.strip():
        yield buffer.strip()


def _print_statement(
    connection: Connection, sql: str, show_explain: bool, max_rows: int,
    emit: Callable[[str], None] = print,
) -> None:
    """Execute one statement on a cursor and print rows plus accounting."""
    cursor = connection.execute(sql)
    context = cursor.context
    names = [column[0] for column in cursor.description or []]
    if names:
        emit("  ".join(names))
    rows = cursor.fetchmany(max_rows)
    for row in rows:
        emit("  ".join(str(value) for value in row))
    remaining = cursor.rowcount - len(rows)
    if remaining > 0:
        emit(f"... ({remaining} more row(s))")
    reopt = ""
    if context.reoptimized:
        reopt = f", re-optimized in {len(context.report.steps)} step(s)"
    cached = ", cached plan" if context.plan_cached else ""
    emit(
        f"-- {cursor.rowcount} row(s); planning {context.planning_seconds:.3f}s, "
        f"execution {context.execution_seconds:.3f}s simulated{cached}{reopt}"
    )
    if show_explain and context.planned is not None:
        from repro.executor.explain import explain_plan

        emit(explain_plan(context.planned.plan, context.execution))


def run_sql(args, stdin: Optional[TextIO] = None) -> int:
    """The ``sql`` command: a Connection-backed statement shell."""
    settings = _engine_settings(
        args.engine, args.workers, args.morsel_size, args.estimator
    )
    print(
        f"# building the synthetic IMDB database (scale={args.scale})...",
        flush=True,
    )
    database, _ = build_imdb_database(
        ImdbConfig(scale=args.scale, seed=args.seed), settings=settings
    )
    policy = (
        ReoptimizationPolicy(threshold=args.threshold)
        if args.threshold is not None
        else None
    )
    connection = connect(
        database, policy=policy, reoptimize=not args.no_reoptimize
    )
    stream = stdin if stdin is not None else sys.stdin
    interactive = args.execute is None and stream.isatty()
    statements = (
        iter(args.execute)
        if args.execute is not None
        else _iter_statements(stream, interactive)
    )
    failures = 0
    for statement in statements:
        try:
            _print_statement(connection, statement, args.explain, args.max_rows)
        except ReproError as error:
            failures += 1
            print(f"error: {error}", file=sys.stderr, flush=True)
    metrics = connection.metrics
    stats = connection.cache_stats
    print(
        f"# served {metrics.statements} statement(s): "
        f"{metrics.planning_seconds:.3f}s planning + "
        f"{metrics.execution_seconds:.3f}s execution (simulated), "
        f"{metrics.reoptimized_statements} re-optimized; "
        f"plan cache {stats.hits} hit(s) / {stats.misses} miss(es)"
    )
    return 1 if failures else 0


def run_serve(args) -> int:
    """The ``serve`` command: a concurrent demo load through the server."""
    import threading

    from repro.server import Server, ServerConfig
    from repro.workloads.stocks import StocksConfig, build_stocks_database, example_query

    print(f"# building the trading database (seed={args.seed})...", flush=True)
    database = build_stocks_database(StocksConfig(seed=args.seed))
    statements = [
        example_query("APPL"),
        example_query("GOOG"),
        (
            "SELECT t.venue, COUNT(t.id) AS n FROM trades AS t "
            "GROUP BY t.venue ORDER BY n DESC"
            if _has_column(database, "trades", "venue")
            else "SELECT COUNT(trades.id) AS n FROM trades"
        ),
        (
            "SELECT c.sector, SUM(t.shares) AS volume FROM company AS c, trades AS t "
            "WHERE c.id = t.company_id GROUP BY c.sector ORDER BY volume DESC LIMIT 5"
            if _has_column(database, "company", "sector")
            else "SELECT COUNT(company.id) AS n FROM company"
        ),
    ]
    config = ServerConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        admission_timeout=args.admission_timeout,
    )
    errors: List[str] = []
    with Server(database, config) as server:
        stop = threading.Event()

        def churn() -> None:
            while not stop.is_set():
                database.analyze(["trades"])
                stop.wait(0.01)

        writer = threading.Thread(target=churn, daemon=True)
        if args.writer_churn:
            writer.start()

        def client(n: int) -> None:
            session = server.session()
            for i in range(args.statements):
                try:
                    session.execute(statements[(n + i) % len(statements)])
                except ReproError as error:
                    errors.append(str(error))

        start = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(n,)) for n in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if args.writer_churn:
            stop.set()
            writer.join()
        stats = server.stats
        cache = server.plan_cache.stats
        print(
            f"# {args.clients} client(s) x {args.statements} statement(s) "
            f"on {args.workers} worker(s) in {elapsed:.2f}s wall"
        )
        print(
            f"#   served {stats.statements}, shed {stats.shed}, "
            f"errors {stats.errors + len(errors)}, "
            f"rows/sec {stats.rows_returned / elapsed:.0f}"
        )
        print(
            f"#   latency p50 {stats.p50_seconds * 1000:.2f}ms, "
            f"p99 {stats.p99_seconds * 1000:.2f}ms (end-to-end)"
        )
        print(
            f"#   plan cache: {cache.hits} hit(s) / {cache.misses} miss(es), "
            f"{cache.stale_evictions} stale eviction(s)"
        )
    return 1 if errors else 0


def _has_column(database, table: str, column: str) -> bool:
    """Whether ``table.column`` exists (demo statements adapt to the schema)."""
    return (
        table in database.catalog
        and database.catalog.schema(table).has_column(column)
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "sql":
        return run_sql(args)
    if args.command == "serve":
        return run_serve(args)
    if args.command == "list":
        width = max(len(key) for key in EXPERIMENTS)
        for key, (description, _, _) in EXPERIMENTS.items():
            print(f"{key.ljust(width)}  {description}")
        return 0

    lines: List[str] = []

    def emit(text: str) -> None:
        print(text)
        lines.append(text)

    run_experiments(
        _resolve_ids(args.experiments),
        scale=args.scale,
        seed=args.seed,
        query_limit=args.query_limit,
        engine=args.engine,
        workers=args.workers,
        morsel_size=args.morsel_size,
        estimator=args.estimator,
        emit=emit,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"# wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
