"""Command-line interface: regenerate any paper artifact from a shell.

Usage (after ``python setup.py develop``)::

    python -m repro.cli list
    python -m repro.cli run fig1 --scale 0.3
    python -m repro.cli run table2 fig7 --scale 0.25 --query-limit 60
    python -m repro.cli run all --scale 0.2 --output results.txt

Every experiment prints the same text table the corresponding benchmark
prints, so the CLI is the quickest way to eyeball a single figure without
going through pytest.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.bench import experiments as exp
from repro.bench.harness import WorkloadContext, build_context
from repro.bench.reporting import ExperimentResult
from repro.engine.settings import EngineSettings
from repro.executor.executor import ExecutionEngine

#: Experiment registry: id -> (description, needs_context, runner).
EXPERIMENTS: Dict[str, tuple] = {
    "fig1": ("top-20 longest queries under five regimes", True, exp.figure1),
    "fig2": ("perfect-(n) sweep over the whole workload", True, exp.figure2),
    "fig5": ("LEO-style iterative estimate correction", True, exp.figure5),
    "fig6": ("the re-optimization rewrite example", True, exp.figure6),
    "fig7": ("re-optimization threshold sweep", True, exp.figure7),
    "fig8": ("perfect-(n) with and without re-optimization", True, exp.figure8),
    "fig9": ("per-query comparison (baseline / re-opt / perfect)", True, exp.figure9),
    "table1": ("number of cardinality estimates per join size", True, exp.table1),
    "table2": ("per-query runtime relative to perfect-(17)", True, exp.table2),
    "table3": ("queries per table count", True, exp.table3),
    "table45": ("the Nasdaq skew example", False, exp.table45),
    "table6": ("runtime after re-optimization relative to perfect-(17)", True, exp.table6),
    "ablation-site": ("lowest vs highest trigger join", True, exp.ablation_trigger_site),
    "ablation-stats": ("ANALYZE vs no ANALYZE on temp tables", True, exp.ablation_temp_table_stats),
    "ablation-midquery": ("materializing vs pipelined re-optimization", True, exp.ablation_midquery),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Reproduce the paper's tables and figures."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'list'), or 'all'",
    )
    run.add_argument("--scale", type=float, default=None, help="dataset scale factor")
    run.add_argument("--seed", type=int, default=42, help="dataset seed")
    run.add_argument(
        "--query-limit", type=int, default=None, help="restrict the workload to the first N queries"
    )
    run.add_argument(
        "--engine",
        choices=[engine.value for engine in ExecutionEngine],
        default=None,
        help=(
            "execution engine: 'vectorized' (columnar batches, default) or "
            "'reference' (row-at-a-time oracle); simulated times are identical, "
            "only wall-clock changes"
        ),
    )
    run.add_argument("--output", type=str, default=None, help="also write results to this file")
    return parser


def _resolve_ids(requested: List[str]) -> List[str]:
    if any(item == "all" for item in requested):
        return list(EXPERIMENTS)
    unknown = [item for item in requested if item not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment(s): {', '.join(unknown)} (try 'list')")
    return requested


def run_experiments(
    ids: List[str],
    scale: Optional[float] = None,
    seed: int = 42,
    query_limit: Optional[int] = None,
    engine: Optional[str] = None,
    emit: Callable[[str], None] = print,
) -> List[ExperimentResult]:
    """Run the requested experiments and emit their text artifacts."""
    ids = _resolve_ids(ids)
    settings: Optional[EngineSettings] = None
    if engine is not None:
        settings = EngineSettings(engine=ExecutionEngine.from_name(engine))
    context: Optional[WorkloadContext] = None
    results: List[ExperimentResult] = []
    for experiment_id in ids:
        _, needs_context, runner = EXPERIMENTS[experiment_id]
        start = time.perf_counter()
        if needs_context:
            if context is None:
                emit(
                    f"# building workload context (scale={scale or 'default'}, "
                    f"engine={engine or 'vectorized'})..."
                )
                context = build_context(
                    scale=scale, seed=seed, query_limit=query_limit, settings=settings
                )
            result = runner(context)
        else:
            result = runner()
        elapsed = time.perf_counter() - start
        results.append(result)
        emit("")
        emit(result.to_text())
        emit(f"# ({experiment_id} regenerated in {elapsed:.1f}s wall)")
    return results


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(key) for key in EXPERIMENTS)
        for key, (description, _, _) in EXPERIMENTS.items():
            print(f"{key.ljust(width)}  {description}")
        return 0

    lines: List[str] = []

    def emit(text: str) -> None:
        print(text)
        lines.append(text)

    run_experiments(
        _resolve_ids(args.experiments),
        scale=args.scale,
        seed=args.seed,
        query_limit=args.query_limit,
        engine=args.engine,
        emit=emit,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"# wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
