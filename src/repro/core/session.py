"""High-level session API.

:class:`ReoptimizingSession` is the public "product" interface a downstream
user would adopt: point it at a loaded :class:`~repro.engine.database.Database`
and run SQL; every query is transparently re-optimized when its plan's
cardinality estimates turn out to be badly wrong, following the paper's
recommendation to re-optimize only long-running queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.core.reoptimizer import ReoptimizationReport, ReoptimizationSimulator
from repro.core.triggers import ReoptimizationPolicy
from repro.engine.database import Database, QueryRun
from repro.sql.binder import BoundQuery


@dataclass
class SessionQueryResult:
    """What a session returns for one statement."""

    report: ReoptimizationReport

    @property
    def rows(self) -> List[tuple]:
        """Rows of the final result."""
        return self.report.rows

    @property
    def reoptimized(self) -> bool:
        """True if the query was re-planned at least once."""
        return self.report.reoptimized

    @property
    def execution_seconds(self) -> float:
        """Simulated execution time (including temp-table materialization)."""
        return self.report.execution_seconds

    @property
    def planning_seconds(self) -> float:
        """Simulated planning time (including re-planning rounds)."""
        return self.report.planning_seconds


class ReoptimizingSession:
    """Runs queries with automatic mid-query re-optimization."""

    def __init__(
        self,
        database: Database,
        policy: Optional[ReoptimizationPolicy] = None,
    ) -> None:
        self.database = database
        self.policy = policy or ReoptimizationPolicy()
        self._simulator = ReoptimizationSimulator(database, self.policy)
        self.history: List[SessionQueryResult] = []

    def execute(self, query: Union[str, BoundQuery]) -> SessionQueryResult:
        """Plan, execute and (when triggered) re-optimize one query."""
        bound = self.database.parse(query) if isinstance(query, str) else query
        report = self._simulator.reoptimize(bound)
        result = SessionQueryResult(report=report)
        self.history.append(result)
        return result

    def execute_without_reoptimization(
        self, query: Union[str, BoundQuery]
    ) -> QueryRun:
        """Run a query with the plain optimizer, for comparison."""
        return self.database.run(query)

    def total_execution_seconds(self) -> float:
        """Total simulated execution time across the session's history."""
        return sum(result.execution_seconds for result in self.history)

    def total_planning_seconds(self) -> float:
        """Total simulated planning time across the session's history."""
        return sum(result.planning_seconds for result in self.history)
