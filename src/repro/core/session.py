"""Legacy high-level session API (deprecated shim).

:class:`ReoptimizingSession` predates the Connection/Cursor serving API; it
is preserved as a thin shim over :class:`repro.engine.connection.Connection`
with re-optimization enabled and the plan cache disabled (the old session
re-planned every statement, and the shim keeps that accounting
bit-for-bit).  New code should use::

    conn = repro.connect(database, policy=ReoptimizationPolicy(...))
    cursor = conn.execute(sql)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.core.reoptimizer import ReoptimizationReport
from repro.core.triggers import ReoptimizationPolicy
from repro.engine.connection import Connection
from repro.engine.database import Database, QueryRun
from repro.sql.binder import BoundQuery


@dataclass
class SessionQueryResult:
    """What a session returns for one statement."""

    report: ReoptimizationReport

    @property
    def rows(self) -> List[tuple]:
        """Rows of the final result."""
        return self.report.rows

    @property
    def reoptimized(self) -> bool:
        """True if the query was re-planned at least once."""
        return self.report.reoptimized

    @property
    def execution_seconds(self) -> float:
        """Simulated execution time (including temp-table materialization)."""
        return self.report.execution_seconds

    @property
    def planning_seconds(self) -> float:
        """Simulated planning time (including re-planning rounds)."""
        return self.report.planning_seconds


class ReoptimizingSession:
    """Deprecated: runs queries with automatic mid-query re-optimization."""

    def __init__(
        self,
        database: Database,
        policy: Optional[ReoptimizationPolicy] = None,
    ) -> None:
        warnings.warn(
            "ReoptimizingSession is deprecated; use repro.connect() and run "
            "statements through a cursor",
            DeprecationWarning,
            stacklevel=2,
        )
        self.database = database
        self.policy = policy or ReoptimizationPolicy()
        self._connection = Connection(
            database, policy=self.policy, reoptimize=True, plan_cache_size=0
        )
        self.history: List[SessionQueryResult] = []

    def execute(self, query: Union[str, BoundQuery]) -> SessionQueryResult:
        """Plan, execute and (when triggered) re-optimize one query."""
        bound = self.database.parse(query) if isinstance(query, str) else query
        context = self._connection.run_bound(bound)
        result = SessionQueryResult(report=context.report)
        self.history.append(result)
        return result

    def execute_without_reoptimization(
        self, query: Union[str, BoundQuery]
    ) -> QueryRun:
        """Run a query with the plain optimizer, for comparison."""
        return self.database.run(query)

    def total_execution_seconds(self) -> float:
        """Total simulated execution time across the session's history."""
        return sum(result.execution_seconds for result in self.history)

    def total_planning_seconds(self) -> float:
        """Total simulated planning time across the session's history."""
        return sum(result.planning_seconds for result in self.history)
