"""Core contribution: re-optimization, perfect-(n) oracles, feedback loops."""

from repro.core.feedback import FeedbackIteration, FeedbackLoop, FeedbackResult
from repro.core.interceptor import ReoptimizationInterceptor
from repro.core.midquery import MidQueryReoptimizer
from repro.core.oracle import TrueCardinalityOracle
from repro.core.reoptimizer import (
    ReoptimizationReport,
    ReoptimizationStep,
)
from repro.core.triggers import (
    DEFAULT_THRESHOLD,
    ReoptimizationPolicy,
    find_trigger_join,
    q_error,
    violating_joins,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "FeedbackIteration",
    "FeedbackLoop",
    "FeedbackResult",
    "MidQueryReoptimizer",
    "ReoptimizationInterceptor",
    "ReoptimizationPolicy",
    "ReoptimizationReport",
    "ReoptimizationStep",
    "TrueCardinalityOracle",
    "find_trigger_join",
    "q_error",
    "violating_joins",
]
