"""The paper's re-optimization scheme as a query-lifecycle interceptor.

:class:`ReoptimizationInterceptor` wraps the *execute* stage of a
:class:`~repro.engine.pipeline.QueryPipeline` and drives one of two loops:

* **Adaptive (operator-level) re-optimization** — the default when the
  engine's ``adaptive`` setting (or the interceptor's ``adaptive`` override)
  is on.  The :class:`~repro.executor.adaptive.AdaptiveExecutor` executes the
  plan stage-wise, pausing at pipeline breakers; on a Q-error violation it
  re-plans the remainder with observed true cardinalities and hands the
  in-memory intermediate over as a catalog pseudo-table (no DDL, no
  materialization surcharge, no uncharged exploratory runs).
* **The paper's simulation** (legacy, still the default for the paper-figure
  benchmarks): compare every join's actual cardinality with the estimate
  after a full exploratory execution; if the lowest join in the plan tree is
  off by more than the Q-error threshold, materialize that sub-join into a
  temporary table, rewrite the remainder of the query to use it, re-plan,
  and repeat until no join violates the threshold (paper Section V).

Simulation accounting follows the paper:

* execution time = the work to create every temporary table plus the work of
  the final SELECT;
* planning time = planning of the original query (zero when it came from the
  plan cache) plus planning of every rewritten query;
* the exploratory executions used (like the paper's ``EXPLAIN ANALYZE``) to
  discover actual cardinalities are *not* charged — a real mid-query
  implementation obtains them for free while executing the sub-join it is
  about to materialize anyway (which is precisely what the adaptive loop
  does for real).

Both loops produce the same :class:`ReoptimizationReport` shape, so every
consumer (connection metrics, benchmark regimes, examples) works unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.reoptimizer import ReoptimizationReport, ReoptimizationStep
from repro.core.triggers import ReoptimizationPolicy, find_trigger_join, q_error
from repro.engine.pipeline import Proceed, QueryContext, QueryInterceptor
from repro.errors import ReoptimizationError
from repro.executor.executor import ExecutionResult
from repro.optimizer.optimizer import PlannedQuery
from repro.optimizer.provenance import plan_output_columns
from repro.sql.ast import Column, ColumnRef, SelectItem
from repro.sql.binder import BoundQuery
from repro.sql.builder import collapse_aliases, referenced_columns


class ReoptimizationInterceptor(QueryInterceptor):
    """Runs the re-optimization loop around the execute stage.

    ``adaptive`` selects the loop: ``True`` forces operator-level adaptive
    execution, ``False`` forces the paper's materialize-and-rewrite
    simulation, ``None`` (default) follows the engine's
    :attr:`~repro.engine.settings.EngineSettings.adaptive` setting.
    """

    name = "reoptimization"

    def __init__(
        self,
        policy: Optional[ReoptimizationPolicy] = None,
        keep_temp_tables: bool = False,
        adaptive: Optional[bool] = None,
    ) -> None:
        self.policy = policy or ReoptimizationPolicy()
        self.keep_temp_tables = keep_temp_tables
        self.adaptive = adaptive

    def around_execute(self, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        adaptive = self.adaptive
        if adaptive is None:
            adaptive = getattr(ctx.database.settings, "adaptive", False)
        if adaptive:
            return self._execute_adaptive(ctx)
        return self._execute_simulated(ctx, proceed)

    # -- operator-level adaptive loop ---------------------------------------

    def _execute_adaptive(self, ctx: QueryContext) -> QueryContext:
        """Run the in-executor adaptive loop instead of the execute stage.

        ``proceed`` is deliberately not called: stage-wise execution replaces
        the plain full execution, so there is no separate exploratory run.
        """
        # Imported lazily: the adaptive executor pulls in repro.core.triggers,
        # so a module-level import would be circular through repro.core.
        from repro.executor.adaptive import AdaptiveExecutor

        db = ctx.database
        execution = AdaptiveExecutor(
            db, self.policy, injector=ctx.injector
        ).execute(ctx.planned)

        report = ReoptimizationReport(query_name=ctx.bound.name)
        if not ctx.plan_cached:
            report.total_planning_work += ctx.planned.stats.planning_work
        report.total_planning_work += execution.replanning_work
        report.total_execution_work = execution.total_work
        report.rows_processed = execution.rows_processed
        report.wall_seconds = execution.wall_seconds
        for point in execution.replans:
            report.steps.append(
                ReoptimizationStep(
                    index=point.index,
                    trigger_label=point.trigger_label,
                    trigger_aliases=point.trigger_aliases,
                    estimated_rows=point.estimated_rows,
                    actual_rows=point.actual_rows,
                    q_error=point.q_error,
                    temp_table=point.pseudo_table,
                    temp_rows=point.pseudo_rows,
                    charged_work=point.executed_work,
                    materialize_work=0.0,
                    create_sql=(
                        f"-- adaptive handover: {point.pseudo_rows} rows kept "
                        f"in memory as {point.pseudo_table}"
                    ),
                )
            )
        report.final_planned = execution.final_planned
        report.final_execution = execution
        report.final_query = execution.final_query
        ctx.report = report
        ctx.planned = execution.final_planned
        ctx.execution = execution
        return ctx

    # -- the paper's materialize-and-rewrite simulation ---------------------

    def _execute_simulated(self, ctx: QueryContext, proceed: Proceed) -> QueryContext:
        db = ctx.database
        policy = self.policy
        report = ReoptimizationReport(query_name=ctx.bound.name)
        if not ctx.plan_cached:
            # A cache hit skipped planning, so there is nothing to charge
            # for round zero; re-planning rounds are always charged below.
            report.total_planning_work += ctx.planned.stats.planning_work
        current = ctx.bound
        planned = ctx.planned
        temp_tables: List[str] = []
        # SELECT * rewrites rename and reorder columns (the collapsed aliases
        # come back as temp-table columns); track where each original output
        # column lives so the final result can be projected back to the
        # original shape, exactly like the adaptive executor does.
        original_columns = plan_output_columns(ctx.planned.plan, db.catalog)
        locations: Dict[Tuple[str, str], Tuple[str, str]] = {
            qcol: qcol for qcol in original_columns
        }

        try:
            for iteration in range(policy.max_iterations + 1):
                if iteration == 0:
                    ctx = proceed(ctx)
                    execution = ctx.execution
                else:
                    planned = db.plan(current, injector=ctx.injector)
                    report.total_planning_work += planned.stats.planning_work
                    execution = db.execute_plan(planned)
                report.rows_processed += execution.rows_processed
                report.wall_seconds += execution.wall_seconds

                trigger = None
                can_still_rewrite = (
                    iteration < policy.max_iterations
                    and current.num_tables() > 1
                )
                if can_still_rewrite and not self._too_short(iteration, execution):
                    trigger = find_trigger_join(planned.plan, policy)

                if trigger is None:
                    report.total_execution_work += execution.total_work
                    report.final_planned = planned
                    report.final_execution = execution
                    report.final_query = current
                    break

                current = self._materialize_and_rewrite(
                    db, current, planned, trigger, iteration, report, temp_tables,
                    locations,
                )
            else:  # pragma: no cover - loop always breaks
                raise ReoptimizationError(
                    f"re-optimization of {ctx.bound.name!r} did not terminate"
                )
        finally:
            if not self.keep_temp_tables:
                for name in temp_tables:
                    if name in db.catalog:
                        db.drop_table(name)

        if report.steps and not ctx.bound.select_items:
            self._restore_star_output(report, original_columns, locations)
        ctx.report = report
        ctx.planned = report.final_planned
        ctx.execution = report.final_execution
        return ctx

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _restore_star_output(
        report: ReoptimizationReport,
        original_columns: List[Tuple[str, str]],
        locations: Dict[Tuple[str, str], Tuple[str, str]],
    ) -> None:
        """Project a rewritten star query's result back to the original shape.

        The rewritten query's ``SELECT *`` emits temp-table columns under
        mapped names in rewritten FROM order; the client must see the original
        query's columns in the original order, just like a plain execution or
        the adaptive path.
        """
        # Imported lazily: the adaptive executor pulls in repro.core.triggers,
        # so a module-level import would be circular through repro.core.
        from repro.executor.adaptive import AdaptiveExecutor

        execution = report.final_execution
        if execution is None:
            return
        execution.result = AdaptiveExecutor._restore_output(
            execution.result, original_columns, locations
        )

    def _too_short(self, iteration: int, execution: ExecutionResult) -> bool:
        """Skip re-optimization for queries below the policy's length cutoff."""
        if iteration > 0:
            return False
        return execution.simulated_seconds < self.policy.min_query_seconds

    def _materialize_and_rewrite(
        self,
        db,
        current: BoundQuery,
        planned: PlannedQuery,
        trigger,
        iteration: int,
        report: ReoptimizationReport,
        temp_tables: List[str],
        locations: Dict[Tuple[str, str], Tuple[str, str]],
    ) -> BoundQuery:
        sub_execution = db.executor.execute(trigger)
        report.rows_processed += sub_execution.rows_processed
        report.wall_seconds += sub_execution.wall_seconds
        if not current.select_items:
            # SELECT *: every column of every collapsed alias is part of the
            # client-visible output, so all of them ride along — in
            # FROM-clause declaration order, matching the adaptive handover
            # and the LIMIT tie-break's canonical star column sequence.
            needed = [
                (alias, column)
                for alias in current.aliases
                if alias in trigger.aliases
                for column in db.catalog.schema(
                    current.table_for(alias)
                ).column_names
            ]
        else:
            needed = referenced_columns(current, trigger.aliases)
        if not needed:
            # Nothing above references the sub-join (it is the whole query);
            # still expose one join column so the rewrite stays well-formed.
            alias = sorted(trigger.aliases)[0]
            table = current.table_for(alias)
            first_column = db.catalog.schema(table).column_names[0]
            needed = [(alias, first_column)]
        mapping: Dict[Tuple[str, str], str] = {
            (alias, column): f"{alias}_{column}" for alias, column in needed
        }
        temp_name = db.next_temp_table_name()
        db.create_temp_table_from_result(
            temp_name,
            sub_execution.result,
            [((alias, column), mapping[(alias, column)]) for alias, column in needed],
            alias_tables=current.alias_tables,
            analyze=self.policy.analyze_temp_tables,
        )
        temp_tables.append(temp_name)

        for qcol, location in locations.items():
            if location[0] in trigger.aliases:
                locations[qcol] = (temp_name, mapping[location])

        materialize_work = db.cost_model.materialize_cost(
            len(sub_execution.result), len(needed)
        )
        charged = sub_execution.total_work + materialize_work
        report.total_execution_work += charged

        error = q_error(trigger.estimated_rows, trigger.actual_rows or 0)
        create_sql = self._render_create_sql(current, trigger.aliases, temp_name, mapping)
        report.steps.append(
            ReoptimizationStep(
                index=iteration,
                trigger_label=trigger.label(),
                trigger_aliases=tuple(sorted(trigger.aliases)),
                estimated_rows=trigger.estimated_rows,
                actual_rows=trigger.actual_rows or 0,
                q_error=error,
                temp_table=temp_name,
                temp_rows=len(sub_execution.result),
                charged_work=charged,
                materialize_work=materialize_work,
                create_sql=create_sql,
            )
        )

        rewritten = collapse_aliases(
            current,
            sorted(trigger.aliases),
            temp_table=temp_name,
            temp_alias=temp_name,
            column_mapping=mapping,
        )
        base_name = report.query_name or "query"
        rewritten.name = f"{base_name}#reopt{iteration + 1}"
        return rewritten

    @staticmethod
    def _render_create_sql(
        query: BoundQuery,
        aliases,
        temp_name: str,
        mapping: Dict[Tuple[str, str], str],
    ) -> str:
        """Render the CREATE TEMP TABLE statement of one materialization step."""
        alias_list = sorted(aliases)
        alias_set = set(alias_list)
        sub_query = BoundQuery(
            name=None,
            aliases=alias_list,
            alias_tables={alias: query.table_for(alias) for alias in alias_list},
            select_items=[
                SelectItem(
                    expr=Column(ColumnRef(alias=alias, column=column)),
                    output_name=new_name,
                )
                for (alias, column), new_name in mapping.items()
            ],
            filters={
                alias: list(query.filters_for(alias))
                for alias in alias_list
                if query.filters_for(alias)
            },
            joins=[
                join
                for join in query.joins
                if join.left_alias in aliases and join.right_alias in aliases
            ],
            residuals=[
                residual
                for residual in query.residuals
                if set(residual.referenced_aliases()) <= alias_set
            ],
        )
        select_sql = sub_query.to_sql()
        return f"CREATE TEMP TABLE {temp_name} AS\n{select_sql}"
