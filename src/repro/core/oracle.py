"""True-cardinality oracle (the substrate behind perfect-(n)).

The paper's perfect-(n) construct gives the optimizer an oracle for the true
cardinality of every join of at most ``n`` tables.  This module computes
those true cardinalities by evaluating the sub-joins bottom-up.

To keep the oracle tractable even for sub-joins whose row counts explode
(several unfiltered fact tables star-joined through ``title``), intermediates
are *grouped*: each subset is represented as a mapping from the tuple of join
columns still needed **outside** the subset to the number of underlying rows
carrying that tuple.  Joining two grouped intermediates multiplies counts,
so the cardinality of a 40-million-row sub-join is computed from a few
hundred thousand grouped entries without materializing the rows.

Oracle work is *never* charged to planning or execution time — it stands in
for an idealized estimator, exactly as in the paper.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.engine.database import Database
from repro.errors import CardinalityError
from repro.optimizer.injection import PerfectInjection
from repro.optimizer.joingraph import JoinGraph
from repro.sql.binder import BoundQuery

AliasSet = FrozenSet[str]
QualifiedColumn = Tuple[str, str]


class GroupedRelation:
    """A multiset of join-column tuples, stored as tuple -> multiplicity."""

    __slots__ = ("columns", "counts")

    def __init__(self, columns: Tuple[QualifiedColumn, ...], counts: Counter) -> None:
        self.columns = columns
        self.counts = counts

    @property
    def cardinality(self) -> int:
        """Total number of underlying rows."""
        return sum(self.counts.values())

    @property
    def group_count(self) -> int:
        """Number of distinct join-column tuples retained."""
        return len(self.counts)

    def position(self, column: QualifiedColumn) -> int:
        """Position of a qualified column in the group tuples."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise CardinalityError(
                f"column {column[0]}.{column[1]} is not retained in this intermediate"
            ) from None

    def project(self, keep: Tuple[QualifiedColumn, ...]) -> "GroupedRelation":
        """Re-group onto a subset of the retained columns."""
        positions = [self.position(column) for column in keep]
        counts: Counter = Counter()
        for key, count in self.counts.items():
            counts[tuple(key[p] for p in positions)] += count
        return GroupedRelation(tuple(keep), counts)


class TrueCardinalityOracle:
    """Computes true cardinalities of connected alias subsets of bound queries."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self._intermediates: Dict[Tuple[str, AliasSet], GroupedRelation] = {}
        self._cardinalities: Dict[Tuple[str, AliasSet], int] = {}
        self._graphs: Dict[str, JoinGraph] = {}
        self._queries: Dict[str, BoundQuery] = {}
        self.subsets_computed = 0

    # -- public API -----------------------------------------------------------

    def true_cardinality(self, query: BoundQuery, subset) -> int:
        """True row count of joining the aliases in ``subset`` (with filters)."""
        subset = frozenset(subset)
        if not subset:
            raise CardinalityError("cannot compute the cardinality of no tables")
        unknown = subset - set(query.aliases)
        if unknown:
            raise CardinalityError(
                f"aliases {sorted(unknown)} are not part of query {query.name!r}"
            )
        key = (self._query_key(query), subset)
        if key not in self._cardinalities:
            relation = self._materialize(query, subset)
            self._cardinalities[key] = relation.cardinality
        return self._cardinalities[key]

    def perfect_injection(self, max_tables: int) -> PerfectInjection:
        """A perfect-(n) injector backed by this oracle."""
        return PerfectInjection(self.true_cardinality, max_tables)

    def clear(self, query: Optional[BoundQuery] = None) -> None:
        """Drop cached intermediates and cardinalities (one query or all)."""
        if query is None:
            self._intermediates.clear()
            self._cardinalities.clear()
            self._graphs.clear()
            self._queries.clear()
            return
        key = self._query_key(query)
        for cache in (self._intermediates, self._cardinalities):
            stale = [k for k in cache if k[0] == key]
            for k in stale:
                del cache[k]
        self._graphs.pop(key, None)
        self._queries.pop(key, None)

    def release_intermediates(self, query: Optional[BoundQuery] = None) -> None:
        """Free grouped intermediates but keep the cardinality cache."""
        if query is None:
            self._intermediates.clear()
            return
        key = self._query_key(query)
        stale = [k for k in self._intermediates if k[0] == key]
        for k in stale:
            del self._intermediates[k]

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _query_key(query: BoundQuery) -> str:
        return query.name if query.name else f"anon-{id(query)}"

    def _graph(self, query: BoundQuery) -> JoinGraph:
        key = self._query_key(query)
        graph = self._graphs.get(key)
        if graph is None or self._queries.get(key) is not query:
            graph = JoinGraph(query)
            self._graphs[key] = graph
            self._queries[key] = query
        return graph

    def _external_columns(
        self, query: BoundQuery, subset: AliasSet
    ) -> Tuple[QualifiedColumn, ...]:
        """Join columns of ``subset`` referenced by joins leaving the subset."""
        needed: List[QualifiedColumn] = []
        for join in query.joins:
            left_in = join.left_alias in subset
            right_in = join.right_alias in subset
            if left_in and not right_in:
                column = (join.left_alias, join.left_column)
            elif right_in and not left_in:
                column = (join.right_alias, join.right_column)
            else:
                continue
            if column not in needed:
                needed.append(column)
        return tuple(needed)

    def _materialize(self, query: BoundQuery, subset: AliasSet) -> GroupedRelation:
        key = (self._query_key(query), subset)
        cached = self._intermediates.get(key)
        if cached is not None:
            return cached
        self.subsets_computed += 1
        if len(subset) == 1:
            relation = self._materialize_base(query, next(iter(subset)))
        else:
            relation = self._materialize_join(query, subset)
        self._intermediates[key] = relation
        return relation

    def _materialize_base(self, query: BoundQuery, alias: str) -> GroupedRelation:
        table = query.table_for(alias)
        filters = query.filters_for(alias)
        # Scan through the database's configured engine so an --engine
        # selection covers the oracle's scans too.
        scan = self._database.executor.operators.scan_table
        result, _ = scan(self._database.catalog, alias, table, filters)
        keep = self._external_columns(query, frozenset((alias,)))
        counts: Counter = Counter()
        if keep:
            # Count group tuples column-wise: only the retained join columns
            # are materialized, never whole rows.
            counts.update(zip(*(result.column_values(a, c) for a, c in keep)))
        else:
            counts[()] = len(result)
        return GroupedRelation(keep, counts)

    def _materialize_join(self, query: BoundQuery, subset: AliasSet) -> GroupedRelation:
        graph = self._graph(query)
        removable = self._pick_removable(graph, subset)
        remainder = subset - {removable}
        left = self._materialize(query, remainder)
        right = self._materialize(query, frozenset((removable,)))
        joins = graph.joins_between_sets(remainder, {removable})
        keep = self._external_columns(query, subset)

        if not joins:
            # Disconnected subset (only probed by explicit experiments):
            # Cartesian-product semantics on grouped counts.
            counts: Counter = Counter()
            for lkey, lcount in left.counts.items():
                for rkey, rcount in right.counts.items():
                    counts[lkey + rkey] += lcount * rcount
            combined = GroupedRelation(left.columns + right.columns, counts)
            return combined.project(keep)

        left_positions: List[int] = []
        right_positions: List[int] = []
        for join in joins:
            if join.left_alias in remainder:
                left_positions.append(left.position((join.left_alias, join.left_column)))
                right_positions.append(
                    right.position((join.right_alias, join.right_column))
                )
            else:
                left_positions.append(left.position((join.right_alias, join.right_column)))
                right_positions.append(
                    right.position((join.left_alias, join.left_column))
                )

        # Positions (within the concatenated key tuple) to keep for the output.
        combined_columns = left.columns + right.columns
        keep_positions = []
        for column in keep:
            if column in left.columns:
                keep_positions.append(("l", left.columns.index(column)))
            else:
                keep_positions.append(("r", right.columns.index(column)))

        buckets: Dict[tuple, List[Tuple[tuple, int]]] = {}
        for rkey, rcount in right.counts.items():
            probe = tuple(rkey[p] for p in right_positions)
            if any(v is None for v in probe):
                continue
            buckets.setdefault(probe, []).append((rkey, rcount))

        counts = Counter()
        for lkey, lcount in left.counts.items():
            probe = tuple(lkey[p] for p in left_positions)
            if any(v is None for v in probe):
                continue
            matches = buckets.get(probe)
            if not matches:
                continue
            for rkey, rcount in matches:
                out_key = tuple(
                    lkey[index] if side == "l" else rkey[index]
                    for side, index in keep_positions
                )
                counts[out_key] += lcount * rcount
        del combined_columns  # only the projected columns are retained
        return GroupedRelation(keep, counts)

    @staticmethod
    def _pick_removable(graph: JoinGraph, subset: AliasSet) -> str:
        ordered = sorted(subset)
        for alias in reversed(ordered):
            remainder = subset - {alias}
            if graph.is_connected(remainder) and graph.connects(remainder, {alias}):
                return alias
        return ordered[-1]
