"""Re-optimization reports.

The materialize-and-re-plan loop itself (paper Section V) lives in
:class:`repro.core.interceptor.ReoptimizationInterceptor`, where it wraps
the execute stage of the query-lifecycle pipeline; run statements through
:func:`repro.connect` (or a one-off
:class:`~repro.engine.pipeline.QueryPipeline` with the interceptor) to
drive it.  This module keeps the report dataclasses the loop produces —
every experiment and the mid-query ablation consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.executor.executor import ExecutionResult, WORK_UNITS_PER_SECOND
from repro.optimizer.optimizer import PLANNING_UNITS_PER_SECOND, PlannedQuery
from repro.sql.binder import BoundQuery


@dataclass
class ReoptimizationStep:
    """One materialize-and-re-plan round."""

    index: int
    trigger_label: str
    trigger_aliases: Tuple[str, ...]
    estimated_rows: float
    actual_rows: int
    q_error: float
    temp_table: str
    temp_rows: int
    charged_work: float
    materialize_work: float
    create_sql: str


@dataclass
class ReoptimizationReport:
    """Outcome of re-optimizing (or deciding not to re-optimize) one query."""

    query_name: Optional[str]
    steps: List[ReoptimizationStep] = field(default_factory=list)
    final_planned: Optional[PlannedQuery] = None
    final_execution: Optional[ExecutionResult] = None
    final_query: Optional[BoundQuery] = None
    total_planning_work: float = 0.0
    total_execution_work: float = 0.0
    # Executor throughput accumulated across all iterations (every probing
    # execution, trigger-subtree materialization and the final execution),
    # named to match the ExecutionResult interface.
    rows_processed: int = 0
    wall_seconds: float = 0.0

    @property
    def reoptimized(self) -> bool:
        """True if at least one temporary table was created."""
        return bool(self.steps)

    @property
    def planning_seconds(self) -> float:
        """Simulated planning time including all re-planning rounds."""
        return self.total_planning_work / PLANNING_UNITS_PER_SECOND

    @property
    def execution_seconds(self) -> float:
        """Simulated execution time (temp-table creation plus final SELECT)."""
        return self.total_execution_work / WORK_UNITS_PER_SECOND

    @property
    def total_seconds(self) -> float:
        """Planning plus execution, in simulated seconds."""
        return self.planning_seconds + self.execution_seconds

    @property
    def rows(self) -> List[tuple]:
        """Rows of the final result."""
        if self.final_execution is None:
            return []
        return self.final_execution.result.rows

    def rewritten_sql(self) -> str:
        """The full rewritten script (CREATE TEMP TABLE ... ; final SELECT)."""
        parts = [step.create_sql for step in self.steps]
        if self.final_query is not None:
            parts.append(self.final_query.to_sql())
        return "\n\n".join(parts)
