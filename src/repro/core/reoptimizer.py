"""Re-optimization reports and the legacy simulator entry point.

The materialize-and-re-plan loop itself (paper Section V) lives in
:class:`repro.core.interceptor.ReoptimizationInterceptor`, where it wraps
the execute stage of the query-lifecycle pipeline.  This module keeps the
report dataclasses the loop produces — every experiment and the mid-query
ablation consume them — and a thin :class:`ReoptimizationSimulator` shim
that preserves the pre-pipeline API (deprecated; connect with
:func:`repro.connect` instead).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.triggers import ReoptimizationPolicy
from repro.engine.database import Database
from repro.executor.executor import ExecutionResult, WORK_UNITS_PER_SECOND
from repro.optimizer.injection import CardinalityInjector
from repro.optimizer.optimizer import PLANNING_UNITS_PER_SECOND, PlannedQuery
from repro.sql.binder import BoundQuery


@dataclass
class ReoptimizationStep:
    """One materialize-and-re-plan round."""

    index: int
    trigger_label: str
    trigger_aliases: Tuple[str, ...]
    estimated_rows: float
    actual_rows: int
    q_error: float
    temp_table: str
    temp_rows: int
    charged_work: float
    materialize_work: float
    create_sql: str


@dataclass
class ReoptimizationReport:
    """Outcome of re-optimizing (or deciding not to re-optimize) one query."""

    query_name: Optional[str]
    steps: List[ReoptimizationStep] = field(default_factory=list)
    final_planned: Optional[PlannedQuery] = None
    final_execution: Optional[ExecutionResult] = None
    final_query: Optional[BoundQuery] = None
    total_planning_work: float = 0.0
    total_execution_work: float = 0.0
    # Executor throughput accumulated across all iterations (every probing
    # execution, trigger-subtree materialization and the final execution),
    # named to match the ExecutionResult interface.
    rows_processed: int = 0
    wall_seconds: float = 0.0

    @property
    def reoptimized(self) -> bool:
        """True if at least one temporary table was created."""
        return bool(self.steps)

    @property
    def planning_seconds(self) -> float:
        """Simulated planning time including all re-planning rounds."""
        return self.total_planning_work / PLANNING_UNITS_PER_SECOND

    @property
    def execution_seconds(self) -> float:
        """Simulated execution time (temp-table creation plus final SELECT)."""
        return self.total_execution_work / WORK_UNITS_PER_SECOND

    @property
    def total_seconds(self) -> float:
        """Planning plus execution, in simulated seconds."""
        return self.planning_seconds + self.execution_seconds

    @property
    def rows(self) -> List[tuple]:
        """Rows of the final result."""
        if self.final_execution is None:
            return []
        return self.final_execution.result.rows

    def rewritten_sql(self) -> str:
        """The full rewritten script (CREATE TEMP TABLE ... ; final SELECT)."""
        parts = [step.create_sql for step in self.steps]
        if self.final_query is not None:
            parts.append(self.final_query.to_sql())
        return "\n\n".join(parts)


class ReoptimizationSimulator:
    """Deprecated pre-pipeline driver for the re-optimization loop.

    Preserved as a thin shim: each :meth:`reoptimize` call runs a one-off
    :class:`~repro.engine.pipeline.QueryPipeline` whose execute stage is
    wrapped by the :class:`~repro.core.interceptor.ReoptimizationInterceptor`.
    New code should use ``repro.connect(database, policy=...)`` and run SQL
    through a cursor instead.
    """

    def __init__(
        self,
        database: Database,
        policy: Optional[ReoptimizationPolicy] = None,
    ) -> None:
        if type(self) is ReoptimizationSimulator:
            warnings.warn(
                "ReoptimizationSimulator is deprecated; use repro.connect() "
                "(re-optimization is an interceptor on the connection's "
                "query pipeline)",
                DeprecationWarning,
                stacklevel=2,
            )
        self._database = database
        self.policy = policy or ReoptimizationPolicy()

    def reoptimize(
        self,
        query: BoundQuery,
        injector: Optional[CardinalityInjector] = None,
        keep_temp_tables: bool = False,
    ) -> ReoptimizationReport:
        """Run the re-optimization scheme on one bound query.

        Args:
            query: the original bound query.
            injector: optional cardinality injector applied to every planning
                round (used by the Figure 8 perfect-(n) + re-optimization
                experiment).
            keep_temp_tables: keep the temporary tables in the catalog after
                returning (the examples use this to inspect them); by default
                they are dropped.
        """
        from repro.core.interceptor import ReoptimizationInterceptor
        from repro.engine.pipeline import QueryPipeline

        pipeline = QueryPipeline(
            self._database,
            [ReoptimizationInterceptor(self.policy, keep_temp_tables=keep_temp_tables)],
        )
        return pipeline.run(bound=query, injector=injector).report
