"""Pipelined mid-query re-optimization, modeled analytically (deprecated).

The paper's simulation pays for a full materialization of every mis-estimated
sub-join.  A real mid-query re-optimizer (Kabra & DeWitt style) keeps the
already-computed intermediate in memory and hands it to the re-planned
remainder of the query, avoiding the extra write-out and the re-scan — that
real implementation now exists as the adaptive executor
(:mod:`repro.executor.adaptive`; ``connect(..., adaptive=True)``).  This
module remains as the *analytical model* of the variant: the ablation
benchmarks that compare the simulation against the discounted accounting
keep their published numbers, pinned by the differential tests.

:class:`MidQueryReoptimizer` models that cheaper variant: the control flow is
identical to the materialize-and-rewrite loop of
:class:`~repro.core.interceptor.ReoptimizationInterceptor`, but

* the materialization surcharge is dropped (the intermediate stays in
  memory), and
* the work of a sub-join computed in an earlier round is charged only once
  even if the re-planned query uses it again (it is reused, not recomputed).

The ablation benchmark compares both variants; the gap is the paper's "cost
of stopping the query to re-plan".
"""

from __future__ import annotations

from typing import Optional

from repro.core.reoptimizer import ReoptimizationReport
from repro.core.triggers import ReoptimizationPolicy
from repro.engine.database import Database
from repro.optimizer.injection import CardinalityInjector
from repro.sql.binder import BoundQuery


class MidQueryReoptimizer:
    """Re-optimization without the materialization surcharge."""

    def __init__(
        self,
        database: Database,
        policy: Optional[ReoptimizationPolicy] = None,
    ) -> None:
        self._database = database
        self.policy = policy or ReoptimizationPolicy()

    def reoptimize(
        self,
        query: BoundQuery,
        injector: Optional[CardinalityInjector] = None,
        keep_temp_tables: bool = False,
    ) -> ReoptimizationReport:
        """Run the pipelined re-optimization variant on one bound query.

        Drives the standard materialize-and-re-plan loop through a one-off
        :class:`~repro.engine.pipeline.QueryPipeline` and then discounts the
        accounting a pipelined system would not pay.
        """
        from repro.core.interceptor import ReoptimizationInterceptor
        from repro.engine.pipeline import QueryPipeline

        pipeline = QueryPipeline(
            self._database,
            [ReoptimizationInterceptor(self.policy, keep_temp_tables=keep_temp_tables)],
        )
        report = pipeline.run(bound=query, injector=injector).report
        return self._discount(report)

    def _discount(self, report: ReoptimizationReport) -> ReoptimizationReport:
        """Remove materialization surcharges and double-charged sub-join work.

        The final SELECT of the rewritten query scans the temporary tables
        that earlier rounds already paid to compute; a pipelined system keeps
        those rows in memory, so the scan cost of each temporary table in the
        final plan is also removed.
        """
        if not report.steps:
            return report
        discount = 0.0
        for step in report.steps:
            discount += step.materialize_work
        if report.final_planned is not None and report.final_execution is not None:
            metrics = report.final_execution.node_metrics
            for node in report.final_planned.plan.walk():
                label = node.label()
                if "Scan" in label and "__temp" in label and node.node_id in metrics:
                    discount += metrics[node.node_id].work
        report.total_execution_work = max(
            0.0, report.total_execution_work - discount
        )
        return report
