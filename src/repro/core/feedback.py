"""LEO-style selective improvement of cardinality estimates (Section IV-E).

The paper simulates the "learn from executed queries" family of techniques
(LEO) as follows: repeatedly execute the query; find the *lowest* operator in
the plan tree whose cardinality estimation error exceeds a threshold; fix
that estimate (and every estimate below it in the plan) to its true value;
re-optimize; repeat until no operator violates the threshold.  Figure 5 plots
the per-iteration execution time for three poorly performing queries and
shows that (a) many corrections can be needed before a good plan emerges and
(b) partially corrected estimates can make the plan *worse* than the original.

:class:`FeedbackLoop` reproduces that simulation on our engine, using a
:class:`~repro.optimizer.injection.DictInjection` as the store of corrected
estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from repro.core.triggers import q_error
from repro.engine.database import Database
from repro.executor.executor import WORK_UNITS_PER_SECOND
from repro.optimizer.injection import DictInjection
from repro.optimizer.plan import JoinNode, PlanNode, ScanNode
from repro.sql.binder import BoundQuery


@dataclass
class FeedbackIteration:
    """One execute-and-correct round."""

    index: int
    execution_work: float
    corrected_subset: Optional[FrozenSet[str]]
    corrected_estimate: float
    corrected_actual: int
    corrections_so_far: int

    @property
    def execution_seconds(self) -> float:
        """Simulated execution time of this iteration's plan."""
        return self.execution_work / WORK_UNITS_PER_SECOND


@dataclass
class FeedbackResult:
    """Full trajectory of the iterative-correction simulation for one query."""

    query_name: Optional[str]
    iterations: List[FeedbackIteration] = field(default_factory=list)
    injection: DictInjection = field(default_factory=DictInjection)

    @property
    def num_iterations(self) -> int:
        """Number of executions performed."""
        return len(self.iterations)

    def execution_seconds_series(self) -> List[float]:
        """Per-iteration execution time (the y-axis of Figure 5)."""
        return [iteration.execution_seconds for iteration in self.iterations]


class FeedbackLoop:
    """Iteratively corrects cardinality estimates from observed executions."""

    def __init__(
        self,
        database: Database,
        threshold: float = 32.0,
        max_iterations: int = 64,
    ) -> None:
        self._database = database
        self.threshold = threshold
        self.max_iterations = max_iterations

    def run(self, query: BoundQuery) -> FeedbackResult:
        """Run the iterative-correction simulation for one query."""
        result = FeedbackResult(query_name=query.name)
        injection = result.injection
        for index in range(self.max_iterations):
            planned = self._database.plan(query, injector=injection)
            execution = self._database.execute_plan(planned)
            violator = self._lowest_violation(planned.plan)
            if violator is None:
                result.iterations.append(
                    FeedbackIteration(
                        index=index,
                        execution_work=execution.total_work,
                        corrected_subset=None,
                        corrected_estimate=0.0,
                        corrected_actual=0,
                        corrections_so_far=len(injection),
                    )
                )
                break
            corrections = self._correct_subtree(violator, injection)
            result.iterations.append(
                FeedbackIteration(
                    index=index,
                    execution_work=execution.total_work,
                    corrected_subset=frozenset(violator.aliases),
                    corrected_estimate=violator.estimated_rows,
                    corrected_actual=violator.actual_rows or 0,
                    corrections_so_far=len(injection),
                )
            )
            if corrections == 0:
                # Nothing new could be corrected; further rounds would loop.
                break
        return result

    # -- internals -----------------------------------------------------------

    def _lowest_violation(self, plan: PlanNode) -> Optional[PlanNode]:
        """Lowest operator (scan or join) whose Q-error exceeds the threshold."""
        candidates: List[PlanNode] = []
        for node in plan.walk():
            if not isinstance(node, (ScanNode, JoinNode)):
                continue
            if node.actual_rows is None:
                continue
            if q_error(node.estimated_rows, node.actual_rows) > self.threshold:
                candidates.append(node)
        if not candidates:
            return None
        candidates.sort(key=lambda node: (len(node.aliases), tuple(sorted(node.aliases))))
        return candidates[0]

    def _correct_subtree(self, violator: PlanNode, injection: DictInjection) -> int:
        """Pin the violator's estimate and every estimate below it to the truth.

        Returns the number of *new* corrections added to the injection store.
        """
        added = 0
        for node in violator.walk():
            if not isinstance(node, (ScanNode, JoinNode)):
                continue
            if node.actual_rows is None:
                continue
            subset = frozenset(node.aliases)
            if subset in injection:
                continue
            injection.set(subset, max(1.0, float(node.actual_rows)))
            added += 1
        return added
