"""Re-optimization triggers.

The paper triggers re-optimization when the Q-error of a join — the ratio
between the larger and the smaller of (estimated, actual) cardinality —
exceeds a threshold, and it materializes the *lowest* such join in the plan
tree.  This module provides the Q-error metric, the trigger policy object and
the plan inspection helpers shared by the re-optimization simulator and the
mid-query re-optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.optimizer.plan import JoinNode, PlanNode

#: The threshold the paper settles on after the Figure 7 sweep.
DEFAULT_THRESHOLD = 32.0


def q_error(estimated: float, actual: float) -> float:
    """Q-error between an estimate and an actual cardinality.

    Both quantities are clamped below at one row, following Moerkotte et
    al.'s convention, so empty results do not produce infinite errors.
    """
    est = max(1.0, float(estimated))
    act = max(1.0, float(actual))
    return max(est / act, act / est)


@dataclass
class ReoptimizationPolicy:
    """Configuration of the re-optimization scheme.

    Attributes:
        threshold: Q-error above which a join triggers re-optimization.
        trigger_site: ``"lowest"`` materializes the lowest violating join in
            the plan (the paper's choice); ``"highest"`` is the ablation that
            materializes the largest violating sub-join instead.  The
            ablation exists only in the materialize-and-rewrite simulation:
            operator-level adaptive execution observes breakers bottom-up
            and always triggers at the lowest (it warns and ignores
            ``"highest"``).
        max_iterations: hard cap on materialize/re-plan rounds per query.
        min_query_seconds: queries whose first estimated execution time is
            below this value are not re-optimized (the paper notes that
            re-optimizing very short queries cannot pay off).
        analyze_temp_tables: ANALYZE each temporary table before re-planning
            (ablation knob; the true row count is always known).
    """

    threshold: float = DEFAULT_THRESHOLD
    trigger_site: str = "lowest"
    max_iterations: int = 16
    min_query_seconds: float = 0.0
    analyze_temp_tables: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.threshold < 1.0:
            raise ValueError("the re-optimization threshold must be at least 1")
        if self.trigger_site not in ("lowest", "highest"):
            raise ValueError("trigger_site must be 'lowest' or 'highest'")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be positive")


def violating_joins(plan: PlanNode, threshold: float) -> List[JoinNode]:
    """Executed joins whose Q-error exceeds ``threshold``, bottom-up order."""
    violations: List[JoinNode] = []
    for join in plan.join_nodes():
        if join.actual_rows is None:
            continue
        if q_error(join.estimated_rows, join.actual_rows) > threshold:
            violations.append(join)
    return violations


def find_trigger_join(
    plan: PlanNode, policy: ReoptimizationPolicy
) -> Optional[JoinNode]:
    """The join whose mis-estimation should trigger re-optimization, if any.

    With ``trigger_site == "lowest"`` the first violating join in bottom-up
    order is returned (fewest tables involved); with ``"highest"`` the last.
    """
    violations = violating_joins(plan, policy.threshold)
    if not violations:
        return None
    if policy.trigger_site == "lowest":
        return violations[0]
    return violations[-1]
