"""Optimizer facade.

:class:`Optimizer` glues the pieces together: it builds a
:class:`~repro.optimizer.cardinality.CardinalityEstimator` (with an optional
cardinality injector), runs the :class:`~repro.optimizer.enumeration.JoinEnumerator`
and returns a :class:`PlannedQuery` bundling the physical plan with the
planning statistics the benchmarks need (number of estimates, candidate plans
considered, simulated planning time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.catalog.catalog import Catalog
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel, CostParameters
from repro.optimizer.enumeration import JoinEnumerator, PlannerConfig
from repro.optimizer.injection import CardinalityInjector
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.plan import PlanNode
from repro.sql.binder import BoundQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.optimizer.estimators import CardinalityStrategy

# Planning effort is converted into "simulated planning seconds" so that the
# benchmark reports have the same units as the paper's figures.  The constant
# is calibrated so that planning a mid-sized JOB-like query costs a few tens
# of milliseconds, in line with the planning/execution balance in the paper.
PLANNING_UNITS_PER_SECOND = 20_000.0


@dataclass
class PlanningStats:
    """Statistics describing one optimizer invocation."""

    estimate_calls: int = 0
    estimates_by_size: Dict[int, int] = field(default_factory=dict)
    candidates_considered: int = 0

    @property
    def planning_work(self) -> float:
        """Total planning effort in abstract units."""
        return float(self.estimate_calls + self.candidates_considered)

    @property
    def planning_seconds(self) -> float:
        """Planning effort rescaled to simulated seconds."""
        return self.planning_work / PLANNING_UNITS_PER_SECOND


@dataclass
class PlannedQuery:
    """The result of optimizing one bound query."""

    query: BoundQuery
    plan: PlanNode
    stats: PlanningStats
    estimator: CardinalityEstimator

    @property
    def estimated_cost(self) -> float:
        """Optimizer's total cost estimate of the chosen plan."""
        return self.plan.estimated_cost


class Optimizer:
    """Plans bound queries against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        cost_params: Optional[CostParameters] = None,
        planner_config: Optional[PlannerConfig] = None,
        strategy: Optional["CardinalityStrategy"] = None,
    ) -> None:
        self._catalog = catalog
        self.cost_model = CostModel(catalog, cost_params)
        self.config = planner_config or PlannerConfig()
        #: Active estimation strategy (``None`` = built-in statistics only);
        #: reassigned by ``Database.set_estimator``.
        self.strategy = strategy

    def plan(
        self,
        query: BoundQuery,
        injector: Optional[CardinalityInjector] = None,
    ) -> PlannedQuery:
        """Optimize ``query`` and return the chosen plan with planning stats.

        Args:
            query: a bound query.
            injector: optional cardinality injection hook (perfect-(n),
                feedback corrections, temp-table cardinalities...).
        """
        graph = JoinGraph(query)
        estimator = CardinalityEstimator(
            self._catalog,
            query,
            graph=graph,
            injector=injector,
            strategy=self.strategy,
        )
        enumerator = JoinEnumerator(
            self._catalog, query, estimator, self.cost_model, self.config
        )
        plan = enumerator.plan()
        stats = PlanningStats(
            estimate_calls=estimator.estimate_calls,
            estimates_by_size=dict(estimator.estimates_by_size),
            candidates_considered=enumerator.candidates_considered,
        )
        return PlannedQuery(query=query, plan=plan, stats=stats, estimator=estimator)
