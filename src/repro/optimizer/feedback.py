"""Persistent cross-query cardinality feedback.

The paper's re-optimizer observes true cardinalities mid-query and re-plans
the *current* statement; everything it learned dies when the statement
finishes.  This module keeps those observations alive across statements and
sessions: a :class:`FeedbackStore` maps *normalized predicate/join-subtree
keys* to observed row counts, so a later query containing the same subtree —
under different aliases, with parameters bound to the same values — is
planned from truth instead of from the independence model.

Key normalization (:func:`subset_key`) is the load-bearing part.  Raw
provenance observations are keyed by frozen alias sets
(``frozenset({'t', 'mi'})``), which collide across queries: alias ``t`` may
be ``title`` in one query and ``trades`` in another.  A normalized key
instead captures everything that determines the subtree's output
cardinality and nothing else:

* the catalog *table* behind each alias (never the alias spelling),
* each alias's filter conjunction, rendered with literals inlined (planning
  happens after ``?`` parameters are substituted, so parameterized and
  literal statements normalize identically — see ``tests/test_feedback_store``),
* the equi-join edges and residual filters fully contained in the subset,

with aliases renamed to positional placeholders in a canonical order so two
self-joins of the same table keep distinct identities while alias spelling
never leaks into the key.

Entries are LRU-bounded, tagged with per-table versions so any write or
re-ANALYZE of a table lazily invalidates the feedback learned about it, and
JSON-serializable so a store survives process restarts.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.sql.ast import Column, ColumnRef, Expr, transform_expr
from repro.sql.binder import BoundQuery

#: Default LRU capacity of a store (per-database; shared by server sessions).
DEFAULT_FEEDBACK_CAPACITY = 1024

#: Format tag written into persisted stores so future layouts can migrate.
_PERSIST_VERSION = 1


def _rename_aliases(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """Rebuild ``expr`` with every column alias renamed through ``mapping``."""

    def rename(node: Expr) -> Expr:
        if isinstance(node, Column) and node.alias in mapping:
            return Column(ColumnRef(mapping[node.alias], node.column))
        return node

    return transform_expr(expr, rename)


def _alias_signature(query: BoundQuery, alias: str) -> Tuple[str, Tuple[str, ...]]:
    """Alias identity independent of its spelling: table + rendered filters."""
    filters = sorted(f.to_sql() for f in query.filters_for(alias))
    return query.table_for(alias), tuple(filters)


def subset_key(query: BoundQuery, subset: FrozenSet[str]) -> str:
    """Normalized key for the join subtree over ``subset`` inside ``query``.

    Aliases are ordered by ``(table, rendered filters)`` and renamed to
    positional placeholders ``r0, r1, ...`` so the key depends on *what* is
    scanned and filtered, never on how the query spelled its aliases.  Ties
    (identical self-join branches) are broken by alias order, which is sound:
    the branches are interchangeable, so either assignment names the same
    subtree.
    """
    ordered = sorted(subset, key=lambda a: (_alias_signature(query, a), a))
    mapping = {alias: f"r{i}" for i, alias in enumerate(ordered)}
    parts: List[str] = []
    for alias in ordered:
        table = query.table_for(alias)
        filters = sorted(
            _rename_aliases(f, mapping).to_sql() for f in query.filters_for(alias)
        )
        parts.append(f"{mapping[alias]}={table}[{' AND '.join(filters)}]")
    edges = sorted(
        "{}.{}={}.{}".format(
            *min(
                (
                    (
                        mapping[j.left_alias],
                        j.left_column,
                        mapping[j.right_alias],
                        j.right_column,
                    ),
                    (
                        mapping[j.right_alias],
                        j.right_column,
                        mapping[j.left_alias],
                        j.left_column,
                    ),
                )
            )
        )
        for j in query.joins
        if j.left_alias in subset and j.right_alias in subset
    )
    residuals = sorted(
        _rename_aliases(r, mapping).to_sql()
        for r in query.residuals
        if set(r.referenced_aliases()) <= subset
    )
    return "&".join(parts) + "|" + ",".join(edges) + "|" + ",".join(residuals)


def subset_tables(query: BoundQuery, subset: Iterable[str]) -> FrozenSet[str]:
    """The catalog tables behind ``subset``'s aliases."""
    return frozenset(query.table_for(alias) for alias in subset)


@dataclass
class FeedbackStats:
    """Hit/miss/insert counters of one store (monotonic)."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    invalidations: int = 0


class FeedbackStore:
    """Thread-safe LRU store of observed subtree cardinalities.

    One store is shared by every connection and server session of a database
    (snapshots reuse their base's store), so it carries its own lock; lookups
    and records are single-dict operations and never block on query execution.
    """

    def __init__(self, capacity: int = DEFAULT_FEEDBACK_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"feedback capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        # key -> (rows, {table: version at record time})
        self._entries: "OrderedDict[str, Tuple[float, Dict[str, int]]]" = (
            OrderedDict()
        )
        self._table_versions: Dict[str, int] = {}
        self.stats = FeedbackStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- feedback lifecycle -------------------------------------------------

    def record(self, query: BoundQuery, subset: FrozenSet[str], rows: float) -> None:
        """Record an observed cardinality for a subtree of ``query``."""
        key = subset_key(query, subset)
        tables = subset_tables(query, subset)
        with self._lock:
            versions = {t: self._table_versions.get(t, 0) for t in tables}
            self._entries[key] = (float(rows), versions)
            self._entries.move_to_end(key)
            self.stats.inserts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def lookup(self, query: BoundQuery, subset: FrozenSet[str]) -> Optional[float]:
        """Observed rows for the subtree, or ``None`` (unknown or stale)."""
        key = subset_key(query, subset)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            rows, versions = entry
            if any(
                self._table_versions.get(t, 0) != v for t, v in versions.items()
            ):
                # Stale: a table under this subtree changed since we learned it.
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return rows

    def invalidate_table(self, table: str) -> None:
        """Mark every entry that depends on ``table`` stale (lazily dropped)."""
        with self._lock:
            self._table_versions[table] = self._table_versions.get(table, 0) + 1

    def clear(self) -> None:
        """Drop all entries (versions survive so staleness stays monotonic)."""
        with self._lock:
            self._entries.clear()

    # -- persistence --------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the store to ``path`` as JSON."""
        with self._lock:
            payload = {
                "version": _PERSIST_VERSION,
                "capacity": self.capacity,
                "table_versions": dict(self._table_versions),
                "entries": [
                    {"key": key, "rows": rows, "versions": versions}
                    for key, (rows, versions) in self._entries.items()
                ],
            }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)

    def load(self, path: str) -> bool:
        """Load entries from ``path``; ``False`` (store untouched) on failure.

        A missing, unreadable or corrupt file is not an error — the store
        simply starts cold, which is always a correct (if slower) state.
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("version") != _PERSIST_VERSION:
                return False
            entries = payload["entries"]
            loaded = OrderedDict(
                (
                    str(entry["key"]),
                    (
                        float(entry["rows"]),
                        {str(t): int(v) for t, v in entry["versions"].items()},
                    ),
                )
                for entry in entries
            )
            table_versions = {
                str(t): int(v) for t, v in payload["table_versions"].items()
            }
        except (OSError, ValueError, KeyError, TypeError):
            return False
        with self._lock:
            self._table_versions.update(table_versions)
            for key, value in loaded.items():
                self._entries[key] = value
                self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return True

    def describe(self) -> str:
        """One-line summary for logs and EXPLAIN output."""
        with self._lock:
            return (
                f"feedback({len(self._entries)}/{self.capacity} entries, "
                f"{self.stats.hits} hits, {self.stats.misses} misses)"
            )
