"""Plan enumeration: access-path selection and join ordering.

Three strategies, mirroring how PostgreSQL scales its search with query size:

* **Bushy dynamic programming** for small queries: all connected splits of
  every connected alias subset are considered (System-R style extended with
  bushy trees, no Cartesian products).
* **Linear dynamic programming** for medium queries: subsets are only
  extended one relation at a time (left-deep / zig-zag trees), which keeps
  the search polynomial in the number of connected subsets.
* **Greedy operator ordering** for large queries (the stand-in for GEQO):
  repeatedly join the pair of components with the smallest estimated output.

All strategies share the candidate generation in :meth:`_join_candidates`,
which considers hash join, nested loop, index nested loop (when the inner is
a base table with an index on the join key) and merge join in both
orientations, costed with the shared :class:`~repro.optimizer.cost.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.schema import ColumnType
from repro.errors import PlanningError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.plan import (
    AccessPath,
    AggregateNode,
    DistinctNode,
    HashAggregateNode,
    JoinAlgorithm,
    JoinNode,
    LimitNode,
    OneTimeFilterNode,
    PlanNode,
    ScanNode,
    SortNode,
)
from repro.optimizer.pruning import prune_partitions
from repro.sql.ast import (
    AggregateFunc,
    Column,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    InList,
    Literal,
)
from repro.sql.binder import BoundQuery
from repro.sql.builder import scan_referenced_columns
from repro.storage.partition import PartitionedTable

AliasSet = FrozenSet[str]


@dataclass
class PlannerConfig:
    """Knobs controlling the search strategy.

    Attributes:
        bushy_limit: queries with at most this many tables get full bushy DP.
        dp_limit: queries with at most this many tables get linear DP;
            larger queries fall back to greedy operator ordering.
        enable_nested_loop: whether plain nested-loop joins are considered.
        enable_index_nested_loop: whether index nested-loop joins are considered.
        enable_merge_join: whether merge joins are considered.
    """

    bushy_limit: int = 7
    dp_limit: int = 10
    enable_nested_loop: bool = True
    enable_index_nested_loop: bool = True
    enable_merge_join: bool = True


class JoinEnumerator:
    """Builds the cheapest physical plan for one bound query."""

    def __init__(
        self,
        catalog: Catalog,
        query: BoundQuery,
        estimator: CardinalityEstimator,
        cost_model: CostModel,
        config: Optional[PlannerConfig] = None,
    ) -> None:
        self._catalog = catalog
        self.query = query
        self.estimator = estimator
        self.cost_model = cost_model
        self.config = config or PlannerConfig()
        self.graph = estimator.graph
        self.candidates_considered = 0
        self._best: Dict[AliasSet, PlanNode] = {}

    # -- public API ------------------------------------------------------------

    def plan(self) -> PlanNode:
        """Return the cheapest plan found, wrapped in the result-shaping nodes.

        The join tree is topped by an aggregation/projection node
        (:class:`HashAggregateNode` when grouped, :class:`AggregateNode`
        otherwise) and, as the query requires, ``Distinct``, ``Sort`` and
        ``Limit`` nodes — in that order, so ``LIMIT`` applies to the sorted,
        de-duplicated output.
        """
        if not self.query.aliases:
            raise PlanningError("query has no FROM-clause tables")
        components = self.graph.connected_components()
        if len(components) > 1:
            raise PlanningError(
                "query join graph is disconnected; Cartesian products are not "
                f"supported (components: {[sorted(c) for c in components]})"
            )
        for alias in self.query.aliases:
            self._best[frozenset((alias,))] = self._best_scan(alias)
        num_tables = len(self.query.aliases)
        if num_tables == 1:
            best = self._best[frozenset(self.query.aliases)]
        elif num_tables <= self.config.dp_limit:
            best = self._dynamic_programming(
                bushy=num_tables <= self.config.bushy_limit
            )
        else:
            best = self._greedy_operator_ordering()
        return self._finalize(best)

    # -- scan candidates ---------------------------------------------------------

    def _best_scan(self, alias: str) -> ScanNode:
        """Pick the cheaper of a sequential scan and an index scan for ``alias``."""
        table = self.query.table_for(alias)
        filters = tuple(self.query.filters_for(alias))
        output_rows = self.estimator.scan_cardinality(alias)
        table_rows = self.estimator.selectivity.table_rows(table)

        # Partition pruning: shards whose zone maps refute the filters are
        # dropped from the scan, shrinking the CPU term of the seq-scan cost.
        storage = self._catalog.table(table)
        partitions_total: Optional[int] = None
        pruned: Tuple[int, ...] = ()
        scanned_rows = table_rows
        if isinstance(storage, PartitionedTable):
            pruned, partitions_total = prune_partitions(storage, filters)
            scanned_rows = min(table_rows, float(storage.scanned_rows(pruned)))

        # Projection pushdown: the engines gather/decode only the columns the
        # rest of the query references.  Full coverage keeps ``columns=None``
        # so the zero-copy full-width scan paths stay in effect.
        schema_names = storage.schema.column_names
        needed = scan_referenced_columns(self.query, alias)
        scan_columns: Optional[Tuple[str, ...]] = None
        if needed is not None:
            # The adaptive re-planner's handover fallback exposes the
            # table's *first schema column* when nothing above a collapsed
            # sub-join references it; keep that column materialized so a
            # mid-query re-plan always finds it (this also keeps every
            # scan at least one column wide).
            wanted = set(needed)
            wanted.add(schema_names[0])
            if len(wanted) < len(schema_names):
                scan_columns = tuple(
                    name for name in schema_names if name in wanted
                )

        seq = ScanNode(
            alias=alias,
            table=table,
            filters=filters,
            access_path=AccessPath.SEQ_SCAN,
            partitions_total=partitions_total,
            pruned_partitions=pruned,
            columns=scan_columns,
            columns_total=len(schema_names),
        )
        seq.estimated_rows = output_rows
        seq.estimated_cost = self.cost_model.seq_scan_cost(
            table, scanned_rows, len(filters)
        )
        self.candidates_considered += 1
        best: ScanNode = seq

        index_filter = self._indexable_filter(table, filters)
        if index_filter is not None:
            predicate, column = index_filter
            matching = table_rows * self.estimator.filter_selectivity(alias, predicate)
            index = ScanNode(
                alias=alias,
                table=table,
                filters=filters,
                access_path=AccessPath.INDEX_SCAN,
                index_column=column,
                index_filter=predicate,
                columns=scan_columns,
                columns_total=len(schema_names),
            )
            index.estimated_rows = output_rows
            index.estimated_cost = self.cost_model.index_scan_cost(
                table, matching, max(0, len(filters) - 1)
            )
            self.candidates_considered += 1
            if index.estimated_cost < best.estimated_cost:
                best = index
        return best

    def _indexable_filter(
        self, table: str, filters: Tuple[Expr, ...]
    ) -> Optional[Tuple[Expr, str]]:
        """Find an equality/IN filter over an indexed column, if any.

        Only the shapes :func:`repro.executor.expressions.index_probe_keys`
        can extract probe keys from qualify: ``column = literal`` (either
        orientation) and ``column IN (literals)``.
        """
        indexes = self._catalog.indexes(table)
        for predicate in filters:
            if isinstance(predicate, Comparison) and (
                predicate.op is ComparisonOp.EQ
            ):
                for column_side, value_side in (
                    (predicate.left, predicate.right),
                    (predicate.right, predicate.left),
                ):
                    if (
                        isinstance(column_side, Column)
                        and isinstance(value_side, Literal)
                        and column_side.column in indexes
                    ):
                        return predicate, column_side.column
            elif isinstance(predicate, InList) and not predicate.negated:
                if (
                    isinstance(predicate.operand, Column)
                    and all(isinstance(item, Literal) for item in predicate.items)
                    and predicate.operand.column in indexes
                ):
                    return predicate, predicate.operand.column
        return None

    # -- join candidates -----------------------------------------------------------

    def _bridges_residual(self, left: PlanNode, right: PlanNode) -> bool:
        """Whether a residual spanning 3+ tables connects these sub-plans.

        Such a residual makes the pair graph-connected without giving this
        join anything to evaluate yet (it only applies once *all* its
        aliases are covered), so the pair still needs a plain cross-product
        candidate for the enumeration to reach the covering join.
        """
        for residual in self.query.residuals:
            aliases = set(residual.referenced_aliases())
            if aliases & left.aliases and aliases & right.aliases:
                return True
        return False

    def _residuals_for(self, left: PlanNode, right: PlanNode) -> Tuple[Expr, ...]:
        """Residual join filters first covered by joining ``left`` and ``right``.

        A residual is attached to the join node whose alias set first covers
        every alias it references and neither child does on its own, so each
        residual is applied exactly once along any plan tree.
        """
        union = left.aliases | right.aliases
        residuals = []
        for residual in self.query.residuals:
            aliases = set(residual.referenced_aliases())
            if (
                aliases <= union
                and not aliases <= left.aliases
                and not aliases <= right.aliases
            ):
                residuals.append(residual)
        return tuple(residuals)

    def _join_candidates(
        self, left: PlanNode, right: PlanNode, output_rows: float
    ) -> List[JoinNode]:
        """All physical join candidates between two sub-plans (both orientations)."""
        joins = self.graph.joins_between_sets(left.aliases, right.aliases)
        residuals = self._residuals_for(left, right)
        if not joins:
            if not residuals and not self._bridges_residual(left, right):
                return []
            # No equi-join keys: the only physical option is a (possibly
            # filtered) cross product, costed as a nested loop.  A pair
            # bridging a wider residual gets a plain cross product here; the
            # residual itself applies at the join that first covers it.
            candidates = []
            for outer, inner in ((left, right), (right, left)):
                candidates.append(
                    self._make_join(
                        outer,
                        inner,
                        (),
                        JoinAlgorithm.NESTED_LOOP,
                        outer.estimated_cost
                        + inner.estimated_cost
                        + self.cost_model.nested_loop_cost(
                            outer.estimated_rows, inner.estimated_rows, output_rows
                        ),
                        output_rows,
                        residuals,
                    )
                )
            return candidates
        candidates: List[JoinNode] = []
        for outer, inner in ((left, right), (right, left)):
            oriented = tuple(joins)
            base_cost = outer.estimated_cost + inner.estimated_cost
            candidates.append(
                self._make_join(
                    outer,
                    inner,
                    oriented,
                    JoinAlgorithm.HASH_JOIN,
                    base_cost
                    + self.cost_model.hash_join_cost(
                        outer.estimated_rows, inner.estimated_rows, output_rows
                    ),
                    output_rows,
                    residuals,
                )
            )
            if self.config.enable_nested_loop:
                candidates.append(
                    self._make_join(
                        outer,
                        inner,
                        oriented,
                        JoinAlgorithm.NESTED_LOOP,
                        base_cost
                        + self.cost_model.nested_loop_cost(
                            outer.estimated_rows, inner.estimated_rows, output_rows
                        ),
                        output_rows,
                        residuals,
                    )
                )
            if self.config.enable_merge_join:
                candidates.append(
                    self._make_join(
                        outer,
                        inner,
                        oriented,
                        JoinAlgorithm.MERGE_JOIN,
                        base_cost
                        + self.cost_model.merge_join_cost(
                            outer.estimated_rows, inner.estimated_rows, output_rows
                        ),
                        output_rows,
                        residuals,
                    )
                )
            inlj_column = self._index_nested_loop_column(inner, joins)
            if self.config.enable_index_nested_loop and inlj_column is not None:
                # The inner side is probed through its index, so its own scan
                # cost is not paid; only the outer subtree cost is.
                cost = outer.estimated_cost + self.cost_model.index_nested_loop_cost(
                    outer.estimated_rows,
                    output_rows,
                    len(inner.filters) if isinstance(inner, ScanNode) else 0,
                )
                candidates.append(
                    self._make_join(
                        outer,
                        inner,
                        oriented,
                        JoinAlgorithm.INDEX_NESTED_LOOP,
                        cost,
                        output_rows,
                        residuals,
                    )
                )
        return candidates

    def _index_nested_loop_column(
        self, inner: PlanNode, joins
    ) -> Optional[str]:
        """Column of the inner base table usable for index-nested-loop probing."""
        if not isinstance(inner, ScanNode):
            return None
        indexes = self._catalog.indexes(inner.table)
        for join in joins:
            if join.touches(inner.alias):
                column = join.column_for(inner.alias)
                if column in indexes:
                    return column
        return None

    def _make_join(
        self,
        outer: PlanNode,
        inner: PlanNode,
        joins,
        algorithm: JoinAlgorithm,
        cost: float,
        output_rows: float,
        residuals: Tuple[Expr, ...] = (),
    ) -> JoinNode:
        node = JoinNode(
            left=outer,
            right=inner,
            join_predicates=tuple(joins),
            algorithm=algorithm,
            residual_filters=tuple(residuals),
        )
        node.estimated_rows = output_rows
        node.estimated_cost = cost
        self.candidates_considered += 1
        return node

    # -- dynamic programming ----------------------------------------------------------

    def _dynamic_programming(self, bushy: bool) -> PlanNode:
        aliases = list(self.query.aliases)
        total = len(aliases)
        for size in range(2, total + 1):
            for combo in combinations(aliases, size):
                subset = frozenset(combo)
                if not self.graph.is_connected(subset):
                    continue
                output_rows = self.estimator.subset_cardinality(subset)
                best: Optional[PlanNode] = None
                for left_set, right_set in self._splits(subset, bushy):
                    left = self._best.get(left_set)
                    right = self._best.get(right_set)
                    if left is None or right is None:
                        continue
                    for candidate in self._join_candidates(left, right, output_rows):
                        if best is None or candidate.estimated_cost < best.estimated_cost:
                            best = candidate
                if best is not None:
                    self._best[subset] = best
        full = frozenset(aliases)
        if full not in self._best:
            raise PlanningError(
                f"no connected plan covers all tables of query {self.query.name!r}"
            )
        return self._best[full]

    def _splits(
        self, subset: AliasSet, bushy: bool
    ) -> List[Tuple[AliasSet, AliasSet]]:
        """Connected, join-linked binary splits of ``subset``."""
        splits: List[Tuple[AliasSet, AliasSet]] = []
        if bushy and len(subset) > 2:
            members = sorted(subset)
            anchor = members[0]
            others = members[1:]
            for r in range(0, len(others)):
                for combo in combinations(others, r):
                    left = frozenset((anchor,) + combo)
                    right = subset - left
                    if not right:
                        continue
                    if not self.graph.is_connected(left):
                        continue
                    if not self.graph.is_connected(right):
                        continue
                    if not self.graph.connects(left, right):
                        continue
                    splits.append((left, right))
        else:
            for alias in sorted(subset):
                rest = subset - {alias}
                if not rest:
                    continue
                if not self.graph.is_connected(rest):
                    continue
                if not self.graph.connects(rest, {alias}):
                    continue
                splits.append((rest, frozenset((alias,))))
        return splits

    # -- greedy operator ordering ---------------------------------------------------------

    def _greedy_operator_ordering(self) -> PlanNode:
        components: Dict[AliasSet, PlanNode] = {
            frozenset((alias,)): self._best[frozenset((alias,))]
            for alias in self.query.aliases
        }
        while len(components) > 1:
            best_pair: Optional[Tuple[AliasSet, AliasSet]] = None
            best_plan: Optional[PlanNode] = None
            best_rows = float("inf")
            keys = sorted(components, key=lambda s: tuple(sorted(s)))
            for left_set, right_set in combinations(keys, 2):
                if not self.graph.connects(left_set, right_set):
                    continue
                union = left_set | right_set
                output_rows = self.estimator.subset_cardinality(union)
                candidates = self._join_candidates(
                    components[left_set], components[right_set], output_rows
                )
                if not candidates:
                    continue
                cheapest = min(candidates, key=lambda c: c.estimated_cost)
                if output_rows < best_rows or (
                    output_rows == best_rows
                    and best_plan is not None
                    and cheapest.estimated_cost < best_plan.estimated_cost
                ):
                    best_rows = output_rows
                    best_pair = (left_set, right_set)
                    best_plan = cheapest
            if best_pair is None or best_plan is None:
                raise PlanningError(
                    f"greedy ordering could not connect query {self.query.name!r}"
                )
            left_set, right_set = best_pair
            del components[left_set]
            del components[right_set]
            components[left_set | right_set] = best_plan
        return next(iter(components.values()))

    # -- finalization -------------------------------------------------------------------

    def _finalize(self, best: PlanNode) -> PlanNode:
        query = self.query
        num_outputs = max(1, len(query.select_items))
        # The binder rejects SUM/AVG over text for SQL statements; repeat the
        # check here so hand-built queries cannot reach the executors, where
        # the engines would diverge (concatenation vs TypeError).
        for item in query.select_items:
            if item.aggregate not in (AggregateFunc.SUM, AggregateFunc.AVG):
                continue
            if item.expr is None:  # only COUNT may take '*'
                raise PlanningError(
                    f"{item.aggregate.value.upper()}(*) is not defined"
                )
            if item.column is None:
                # Computed expressions were type-checked by the binder; a
                # hand-built text-typed expression would still be rejected
                # below by its bare column references, if any.
                continue
            table = query.table_for(item.column.alias)
            schema = self._catalog.schema(table)
            if schema.has_column(item.column.column):
                col_type = schema.column(item.column.column).col_type
                if col_type is ColumnType.TEXT:
                    raise PlanningError(
                        f"{item.aggregate.value.upper()}({item.column}) is not "
                        f"defined for text column {table}.{item.column.column}"
                    )
        # Sort keys referencing base-table columns (alias set) sort the join
        # result *below* the projection, so non-projected columns are still
        # available; output-column keys (alias "") sort above it.  The binder
        # always emits homogeneous keys; hand-built queries mixing the two
        # forms have no single valid sort position, so reject them here
        # instead of failing inside an executor column lookup.
        has_base_keys = any(key.alias for key in query.order_by)
        has_output_keys = any(not key.alias for key in query.order_by)
        if has_base_keys and has_output_keys:
            raise PlanningError(
                "ORDER BY keys must either all reference output columns or "
                f"all reference base-table columns, query {query.name!r} mixes both"
            )
        if has_output_keys and not query.select_items:
            raise PlanningError(
                "ORDER BY output-column keys require an explicit select list, "
                f"query {query.name!r} selects *"
            )
        if has_base_keys and query.group_by:
            raise PlanningError(
                "grouped queries can only ORDER BY output columns, query "
                f"{query.name!r} sorts on base-table columns"
            )
        if query.distinct and has_base_keys and query.select_items:
            raise PlanningError(
                "SELECT DISTINCT can only ORDER BY projected columns, query "
                f"{query.name!r} sorts on non-projected base-table columns"
            )
        if has_base_keys and self._has_aggregate():
            raise PlanningError(
                "aggregate queries can only ORDER BY output columns, query "
                f"{query.name!r} sorts on base-table columns"
            )
        if query.limit is None and query.offset:
            # The grammar ties OFFSET to LIMIT; a hand-built query with only
            # an offset would otherwise be silently ignored.
            raise PlanningError(
                f"OFFSET requires a LIMIT, query {query.name!r} has none"
            )
        if query.constant_filters:
            # Bind-time folded constant predicates: EXPLAIN shows them as a
            # one-time filter; a false one prunes the whole subtree (the
            # executor returns an empty result without running the child).
            passes = not query.always_false
            wrapped = OneTimeFilterNode(
                child=best,
                conditions=tuple(c.expr for c in query.constant_filters),
                passes=passes,
            )
            wrapped.estimated_rows = best.estimated_rows if passes else 0.0
            wrapped.estimated_cost = best.estimated_cost if passes else 0.0
            best = wrapped
        sort_below = bool(query.order_by) and query.select_items and has_base_keys
        if sort_below:
            best = self._sort_node(best, below=True)
        root: PlanNode
        if query.group_by:
            groups = self._group_count_estimate(best.estimated_rows, query.group_by)
            root = HashAggregateNode(
                child=best,
                group_keys=tuple(query.group_by),
                select_items=tuple(query.select_items),
            )
            root.estimated_rows = groups
            root.estimated_cost = best.estimated_cost + self.cost_model.hash_aggregate_cost(
                best.estimated_rows, groups, num_outputs
            )
        else:
            root = AggregateNode(child=best, select_items=tuple(query.select_items))
            root.estimated_rows = 1.0 if self._has_aggregate() else best.estimated_rows
            root.estimated_cost = best.estimated_cost + self.cost_model.aggregate_cost(
                best.estimated_rows, num_outputs
            )
        if query.distinct:
            child = root
            root = DistinctNode(child=child)
            root.estimated_rows = self._distinct_estimate(child.estimated_rows)
            root.estimated_cost = child.estimated_cost + self.cost_model.distinct_cost(
                child.estimated_rows, root.estimated_rows
            )
        if query.order_by and not sort_below:
            root = self._sort_node(root)
        if query.limit is not None:
            child = root
            root = LimitNode(child=child, limit=query.limit, offset=query.offset or 0)
            surviving = max(
                0.0, min(float(query.limit), child.estimated_rows - (query.offset or 0))
            )
            root.estimated_rows = surviving
            root.estimated_cost = child.estimated_cost + self.cost_model.limit_cost(
                surviving
            )
        return root

    def _sort_node(self, child: PlanNode, below: bool = False) -> SortNode:
        """Wrap ``child`` in a Sort over the query's keys (rows preserved).

        ``below`` marks the sort placed *under* the projection (base-table
        keys with a select list); the root sort leaves it False.
        """
        tie_break, tie_break_all = self._limit_tie_break(below)
        node = SortNode(
            child=child,
            keys=tuple(self.query.order_by),
            tie_break=tie_break,
            tie_break_all=tie_break_all,
        )
        node.estimated_rows = child.estimated_rows
        node.estimated_cost = child.estimated_cost + self.cost_model.sort_cost(
            child.estimated_rows, len(self.query.order_by)
        )
        return node

    def _limit_tie_break(self, below: bool) -> Tuple[Tuple[Expr, ...], bool]:
        """Deterministic tie-break columns for a sort feeding a LIMIT cut.

        Without a LIMIT no tie-break is needed: every row is returned, and
        ties are allowed to keep plan order (the differential suites compare
        limit-less ordered results as multisets across plans).  Under a
        LIMIT the cut turns tie order into a correctness question, so the
        sort gets a total order over the *projected* output:

        * ``SELECT *``: one tie expression per table column, name-resolved,
          in FROM-clause declaration order then schema order.  The star sort
          input's positional column order is join-order dependent, so
          positional ties would not survive a re-optimization rewrite;
          name-resolved expressions do (a collapsed temp table exposes the
          same values under the handover mapping, in the same declaration
          order).
        * Sort below the projection (base-table keys): the select items'
          expressions, evaluated over the sort input.  Rewrites remap these
          expressions together with the select list, so the tie values are
          rewrite-invariant.
        * Sort above the projection (output keys): every output column,
          positionally (``tie_break_all``) — above the projection the input
          *is* the projected output in select-item order, which no rewrite
          changes.  Output names can collide (``SELECT g.id, r.id``), so
          positional beats name-resolved here.
        """
        query = self.query
        if query.limit is None:
            return (), False
        if not query.select_items:
            exprs: List[Expr] = []
            for alias in query.aliases:
                table = query.alias_tables[alias]
                for name in self._catalog.schema(table).column_names:
                    exprs.append(Column(ColumnRef(alias=alias, column=name)))
            return tuple(exprs), False
        if below:
            return tuple(item.expr for item in query.select_items), False
        return (), True

    def _group_count_estimate(self, input_rows: float, group_keys) -> float:
        distincts = [
            self.estimator.selectivity.column_n_distinct(
                self.query.table_for(ref.alias), ref.column
            )
            for ref in group_keys
        ]
        return self.estimator.selectivity.group_count(input_rows, distincts)

    def _distinct_estimate(self, input_rows: float) -> float:
        """Distinct output rows: ndv product of the projected columns."""
        columns = [
            item.column
            for item in self.query.select_items
            if item.aggregate is None and item.column is not None
        ]
        if not columns or len(columns) != len(self.query.select_items):
            # SELECT * or aggregate outputs: no usable column statistics.
            return input_rows
        return self._group_count_estimate(input_rows, columns)

    def _has_aggregate(self) -> bool:
        return any(item.aggregate is not None for item in self.query.select_items)
