"""Optimizer subsystem: join graph, cardinality estimation, cost model, enumeration."""

from repro.optimizer.cardinality import CardinalityEstimator, SelectivityEstimator
from repro.optimizer.cost import CostModel, CostParameters
from repro.optimizer.enumeration import JoinEnumerator, PlannerConfig
from repro.optimizer.injection import (
    CardinalityInjector,
    ChainInjection,
    DictInjection,
    NoInjection,
    PerfectInjection,
)
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.optimizer import Optimizer, PlannedQuery, PlanningStats
from repro.optimizer.plan import (
    AccessPath,
    AggregateNode,
    DistinctNode,
    HashAggregateNode,
    JoinAlgorithm,
    JoinNode,
    LimitNode,
    MaterializeNode,
    PlanNode,
    ScanNode,
    SortNode,
)
from repro.optimizer.provenance import (
    harvest_observations,
    plan_output_columns,
    runtime_injection,
    translate_observations,
)

__all__ = [
    "AccessPath",
    "AggregateNode",
    "CardinalityEstimator",
    "CardinalityInjector",
    "ChainInjection",
    "CostModel",
    "CostParameters",
    "DictInjection",
    "DistinctNode",
    "HashAggregateNode",
    "JoinAlgorithm",
    "JoinEnumerator",
    "JoinGraph",
    "JoinNode",
    "LimitNode",
    "MaterializeNode",
    "NoInjection",
    "Optimizer",
    "PerfectInjection",
    "PlanNode",
    "PlannedQuery",
    "PlannerConfig",
    "PlanningStats",
    "ScanNode",
    "SelectivityEstimator",
    "SortNode",
    "harvest_observations",
    "plan_output_columns",
    "runtime_injection",
    "translate_observations",
]
