"""Cost model.

A deliberately PostgreSQL-flavoured cost model: costs are abstract units
where reading one sequential page costs ``seq_page_cost`` and processing one
tuple costs ``cpu_tuple_cost``.  The same formulas are used twice:

* by the optimizer with *estimated* row counts, to pick a plan;
* by the executor with *actual* row counts, to account deterministic "work
  units" that stand in for execution time (see DESIGN.md, Metrics).

This mirrors the paper's observation that cost models are adequate when their
cardinality inputs are right: feeding the same formulas the true row counts
yields a faithful, deterministic proxy for runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.catalog import Catalog


@dataclass
class CostParameters:
    """Tunable cost constants (PostgreSQL defaults, all-in-memory flavour).

    ``random_page_cost`` is kept above ``seq_page_cost`` (though below the
    PostgreSQL on-disk default of 4.0, since the paper's dataset is fully
    cached); this preserves the tension between index-nested-loop and hash
    joins without letting a single mis-planned index nested loop dominate the
    whole workload.
    """

    seq_page_cost: float = 1.0
    random_page_cost: float = 2.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    rows_per_page: int = 100
    hash_build_factor: float = 1.6
    sort_factor: float = 1.0


class CostModel:
    """Computes incremental operator costs from row counts.

    Every ``*_cost`` method returns the cost of the operator itself,
    excluding the cost of producing its inputs; plan-level totals are
    accumulated by the enumerator (estimates) and the executor (actuals).
    """

    def __init__(self, catalog: Catalog, params: CostParameters = None) -> None:
        self._catalog = catalog
        self.params = params or CostParameters()

    # -- scans ---------------------------------------------------------------

    def table_pages(self, table: str) -> int:
        """Page count of a base table under the configured rows-per-page."""
        storage = self._catalog.table(table)
        return storage.estimated_pages(self.params.rows_per_page)

    def seq_scan_cost(self, table: str, table_rows: float, num_filters: int) -> float:
        """Full scan of ``table`` applying ``num_filters`` predicates per row."""
        p = self.params
        io = self.table_pages(table) * p.seq_page_cost
        cpu = table_rows * (p.cpu_tuple_cost + num_filters * p.cpu_operator_cost)
        return io + cpu

    def index_scan_cost(
        self, table: str, matching_rows: float, num_residual_filters: int
    ) -> float:
        """Index lookup returning ``matching_rows`` rows plus residual filtering."""
        p = self.params
        pages_touched = max(1.0, matching_rows / p.rows_per_page)
        io = pages_touched * p.random_page_cost
        cpu = matching_rows * (
            p.cpu_index_tuple_cost
            + p.cpu_tuple_cost
            + num_residual_filters * p.cpu_operator_cost
        )
        return io + cpu

    # -- joins -----------------------------------------------------------------

    def hash_join_cost(
        self, outer_rows: float, inner_rows: float, output_rows: float
    ) -> float:
        """Build a hash table on the inner side, probe with the outer side."""
        p = self.params
        build = inner_rows * p.cpu_operator_cost * self.params.hash_build_factor
        probe = outer_rows * p.cpu_operator_cost
        emit = output_rows * p.cpu_tuple_cost
        return build + probe + emit

    def nested_loop_cost(
        self, outer_rows: float, inner_rows: float, output_rows: float
    ) -> float:
        """Plain nested loop: every outer row is compared with every inner row."""
        p = self.params
        compare = outer_rows * inner_rows * p.cpu_operator_cost
        emit = output_rows * p.cpu_tuple_cost
        return compare + emit

    def index_nested_loop_cost(
        self,
        outer_rows: float,
        output_rows: float,
        num_inner_filters: int,
    ) -> float:
        """Index nested loop: one index probe per outer row.

        This is the operator whose cost collapses when the outer cardinality
        is underestimated — the signature failure mode of the paper's slow
        queries (Section IV-D).
        """
        p = self.params
        probes = outer_rows * (p.random_page_cost + p.cpu_index_tuple_cost)
        matches = output_rows * (
            p.cpu_tuple_cost + num_inner_filters * p.cpu_operator_cost
        )
        return probes + matches

    def merge_join_cost(
        self, outer_rows: float, inner_rows: float, output_rows: float
    ) -> float:
        """Sort both sides and merge."""
        p = self.params
        cost = 0.0
        for rows in (outer_rows, inner_rows):
            if rows > 1:
                cost += self.params.sort_factor * rows * math.log2(rows) * p.cpu_operator_cost
            cost += rows * p.cpu_operator_cost
        cost += output_rows * p.cpu_tuple_cost
        return cost

    # -- other operators ---------------------------------------------------------

    def aggregate_cost(self, input_rows: float, num_outputs: int) -> float:
        """Final aggregation over the join result."""
        p = self.params
        return input_rows * p.cpu_operator_cost * max(1, num_outputs)

    def hash_aggregate_cost(
        self, input_rows: float, num_groups: float, num_outputs: int
    ) -> float:
        """Grouped aggregation: hash every input row, emit one row per group."""
        p = self.params
        build = input_rows * p.cpu_operator_cost * p.hash_build_factor
        fold = input_rows * p.cpu_operator_cost * max(1, num_outputs)
        emit = num_groups * p.cpu_tuple_cost
        return build + fold + emit

    def sort_cost(self, input_rows: float, num_keys: int = 1) -> float:
        """Comparison sort of the query output on ``num_keys`` keys."""
        p = self.params
        cost = input_rows * p.cpu_tuple_cost
        if input_rows > 1:
            cost += (
                self.params.sort_factor
                * input_rows
                * math.log2(input_rows)
                * p.cpu_operator_cost
                * max(1, num_keys)
            )
        return cost

    def distinct_cost(self, input_rows: float, output_rows: float) -> float:
        """Hash-based duplicate elimination."""
        p = self.params
        return (
            input_rows * p.cpu_operator_cost * p.hash_build_factor
            + output_rows * p.cpu_tuple_cost
        )

    def limit_cost(self, output_rows: float) -> float:
        """Emitting the rows that survive LIMIT/OFFSET."""
        return output_rows * self.params.cpu_tuple_cost

    def materialize_cost(self, input_rows: float, num_columns: int) -> float:
        """Materializing an intermediate result into a temporary table.

        Charged as writing every tuple (cpu) plus the sequential pages the
        temporary table occupies — the paper notes full materialization is an
        upper bound on the cost a real mid-query re-optimizer would pay.
        """
        p = self.params
        pages = max(1.0, input_rows / p.rows_per_page)
        return (
            input_rows * p.cpu_tuple_cost * (1.0 + 0.1 * max(1, num_columns))
            + pages * p.seq_page_cost
        )
