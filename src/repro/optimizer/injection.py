"""Cardinality injection hooks.

The paper modifies PostgreSQL "to allow us to replace the PostgreSQL
cardinality estimates with arbitrary values".  This module is the equivalent
hook in our engine: a :class:`CardinalityInjector` is consulted by the
:class:`~repro.optimizer.cardinality.CardinalityEstimator` for every alias
subset before the statistical model is used.

Three injectors cover the paper's experiments:

* :class:`NoInjection` — plain optimizer behaviour (the "PostgreSQL" regime).
* :class:`DictInjection` — explicit per-subset values; used by the LEO-style
  feedback loop (Section IV-E) and by unit tests.
* :class:`PerfectInjection` — wraps a true-cardinality oracle and answers for
  every subset of at most ``max_tables`` aliases; this is perfect-(n).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional

from repro.sql.binder import BoundQuery


class CardinalityInjector:
    """Interface: optionally override the estimate for an alias subset."""

    def lookup(self, query: BoundQuery, subset: FrozenSet[str]) -> Optional[float]:
        """Return the injected cardinality for ``subset`` or ``None``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short description used in benchmark reports."""
        return type(self).__name__


class NoInjection(CardinalityInjector):
    """Never injects: the optimizer uses only its statistical model."""

    def lookup(self, query: BoundQuery, subset: FrozenSet[str]) -> Optional[float]:
        return None

    def describe(self) -> str:
        return "default-estimates"


class DictInjection(CardinalityInjector):
    """Injects explicit values for specific alias subsets."""

    def __init__(self, values: Optional[Dict[FrozenSet[str], float]] = None) -> None:
        self._values: Dict[FrozenSet[str], float] = {}
        if values:
            for subset, rows in values.items():
                self.set(subset, rows)

    def set(self, subset, rows: float) -> None:
        """Set (or overwrite) the injected value for ``subset``."""
        self._values[frozenset(subset)] = float(rows)

    def remove(self, subset) -> None:
        """Remove an injected value if present."""
        self._values.pop(frozenset(subset), None)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, subset) -> bool:
        return frozenset(subset) in self._values

    def lookup(self, query: BoundQuery, subset: FrozenSet[str]) -> Optional[float]:
        return self._values.get(frozenset(subset))

    def describe(self) -> str:
        return f"injected({len(self._values)} subsets)"


class PerfectInjection(CardinalityInjector):
    """Perfect-(n): true cardinalities for subsets of at most ``max_tables``.

    The oracle is any callable mapping ``(query, subset)`` to the true row
    count; in practice it is
    :meth:`repro.core.oracle.TrueCardinalityOracle.true_cardinality`.
    """

    def __init__(
        self,
        oracle: Callable[[BoundQuery, FrozenSet[str]], float],
        max_tables: int,
    ) -> None:
        self._oracle = oracle
        self.max_tables = int(max_tables)

    def lookup(self, query: BoundQuery, subset: FrozenSet[str]) -> Optional[float]:
        if self.max_tables <= 0:
            return None
        if len(subset) > self.max_tables:
            return None
        return float(self._oracle(query, subset))

    def describe(self) -> str:
        return f"perfect-({self.max_tables})"


class ChainInjection(CardinalityInjector):
    """Tries a sequence of injectors in order; first answer wins.

    Used to combine re-optimization feedback (exact temp-table cardinalities)
    with a perfect-(n) oracle in the Figure 8 experiment.
    """

    def __init__(self, injectors) -> None:
        self._injectors = list(injectors)

    def lookup(self, query: BoundQuery, subset: FrozenSet[str]) -> Optional[float]:
        for injector in self._injectors:
            value = injector.lookup(query, subset)
            if value is not None:
                return value
        return None

    def describe(self) -> str:
        return " + ".join(injector.describe() for injector in self._injectors)
