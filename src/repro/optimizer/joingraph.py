"""Join graphs over bound queries.

The join graph has one node per FROM-clause alias and one edge per join
predicate — equi-joins (``a.x = b.y``, the edges the enumerator puts join
keys on) and *residual* join filters (non-equi predicates such as
``a.x < b.y`` or cross-table ``OR`` trees, which connect their aliases
pairwise so the enumerator can plan them as filtered cross products).  The
optimizer's dynamic-programming enumeration only considers *connected*
sub-sets (no unfiltered Cartesian products, like PostgreSQL's default), so
the graph exposes connectivity helpers.  The deep-dive examples of the paper
(Figures 3 and 4) are rendered from this structure.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.sql.binder import BoundJoin, BoundQuery

AliasSet = FrozenSet[str]


class JoinGraph:
    """Undirected join graph of a bound query."""

    def __init__(self, query: BoundQuery) -> None:
        self.query = query
        self.aliases: Tuple[str, ...] = tuple(query.aliases)
        self._adjacency: Dict[str, Set[str]] = {alias: set() for alias in self.aliases}
        self._edges: Dict[FrozenSet[str], List[BoundJoin]] = {}
        for join in query.joins:
            left, right = join.aliases()
            self._adjacency[left].add(right)
            self._adjacency[right].add(left)
            self._edges.setdefault(frozenset((left, right)), []).append(join)
        for residual in getattr(query, "residuals", ()):
            aliases = [a for a in residual.referenced_aliases() if a in self._adjacency]
            for i, left in enumerate(aliases):
                for right in aliases[i + 1 :]:
                    self._adjacency[left].add(right)
                    self._adjacency[right].add(left)
                    self._edges.setdefault(frozenset((left, right)), [])

    # -- basic accessors ---------------------------------------------------

    def neighbors(self, alias: str) -> Set[str]:
        """Aliases directly joined to ``alias``."""
        return set(self._adjacency[alias])

    def edges(self) -> List[Tuple[str, str]]:
        """All edges as sorted alias pairs (one entry per pair)."""
        return [tuple(sorted(pair)) for pair in self._edges]

    def joins_between_sets(
        self, left: Iterable[str], right: Iterable[str]
    ) -> List[BoundJoin]:
        """Join predicates with one side in ``left`` and the other in ``right``."""
        return self.query.joins_between(left, right)

    def degree(self, alias: str) -> int:
        """Number of joins touching ``alias``."""
        return len(self._adjacency[alias])

    # -- connectivity ------------------------------------------------------

    def is_connected(self, aliases: Iterable[str]) -> bool:
        """True if the induced subgraph over ``aliases`` is connected."""
        alias_set = set(aliases)
        if not alias_set:
            return False
        if len(alias_set) == 1:
            return True
        start = next(iter(alias_set))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in self._adjacency[current]:
                if neighbor in alias_set and neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen == alias_set

    def connects(self, left: Iterable[str], right: Iterable[str]) -> bool:
        """True if at least one join edge connects the two alias groups."""
        left_set = set(left)
        right_set = set(right)
        for alias in left_set:
            if self._adjacency[alias] & right_set:
                return True
        return False

    def connected_components(self) -> List[Set[str]]:
        """Connected components of the whole graph."""
        remaining = set(self.aliases)
        components: List[Set[str]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for neighbor in self._adjacency[current]:
                    if neighbor in remaining and neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            components.append(seen)
            remaining -= seen
        return components

    def connected_subsets_of_size(self, size: int) -> List[AliasSet]:
        """All connected alias subsets of exactly ``size`` tables.

        Used by the perfect-(n) oracle and by the Table I estimate-count
        experiment.  Enumeration grows the subsets one neighbouring alias at a
        time, so only connected subsets are ever produced.
        """
        if size < 1 or size > len(self.aliases):
            return []
        current: Set[AliasSet] = {frozenset((alias,)) for alias in self.aliases}
        for _ in range(size - 1):
            grown: Set[AliasSet] = set()
            for subset in current:
                for alias in subset:
                    for neighbor in self._adjacency[alias]:
                        if neighbor not in subset:
                            grown.add(subset | {neighbor})
            current = grown
        return sorted(current, key=lambda s: tuple(sorted(s)))

    def connected_subsets_up_to(self, max_size: int) -> List[AliasSet]:
        """All connected alias subsets of size 1..``max_size``."""
        subsets: List[AliasSet] = []
        for size in range(1, max_size + 1):
            subsets.extend(self.connected_subsets_of_size(size))
        return subsets

    # -- rendering ----------------------------------------------------------

    def to_dot(self) -> str:
        """Render the join graph in Graphviz DOT syntax (for the examples)."""
        lines = [f"graph {self.query.name or 'query'} {{"]
        for alias in self.aliases:
            lines.append(f'  {alias} [label="{alias}"];')
        for left, right in self.edges():
            lines.append(f"  {left} -- {right};")
        lines.append("}")
        return "\n".join(lines)

    def to_text(self) -> str:
        """Human-readable adjacency listing used by the deep-dive example."""
        lines = [f"join graph of {self.query.name or 'query'}:"]
        for alias in self.aliases:
            neighbors = ", ".join(sorted(self._adjacency[alias])) or "(isolated)"
            lines.append(f"  {alias} -- {neighbors}")
        return "\n".join(lines)


def canonical_subset_order(subset: Sequence[str]) -> Tuple[str, ...]:
    """Deterministic ordering of an alias subset (used for memo keys and logs)."""
    return tuple(sorted(subset))
