"""Physical plan nodes.

The optimizer produces a tree of :class:`PlanNode` objects.  Every node
carries the optimizer's *estimated* cardinality and cost; after execution the
executor attaches *actual* cardinalities and work, which is what the
re-optimization trigger inspects (the engine's equivalent of
``EXPLAIN ANALYZE``).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.sql.ast import ColumnRef, Expr, SelectItem
from repro.sql.binder import BoundJoin, BoundSortKey

_node_counter = itertools.count()


class AccessPath(enum.Enum):
    """How a base table is read."""

    SEQ_SCAN = "seq_scan"
    INDEX_SCAN = "index_scan"


class JoinAlgorithm(enum.Enum):
    """Physical join operator choices."""

    HASH_JOIN = "hash_join"
    NESTED_LOOP = "nested_loop"
    INDEX_NESTED_LOOP = "index_nested_loop"
    MERGE_JOIN = "merge_join"


@dataclass
class PlanNode:
    """Base class for plan nodes."""

    node_id: int = field(init=False)
    estimated_rows: float = field(init=False, default=0.0)
    estimated_cost: float = field(init=False, default=0.0)
    actual_rows: Optional[int] = field(init=False, default=None)
    actual_work: Optional[float] = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.node_id = next(_node_counter)

    @property
    def aliases(self) -> FrozenSet[str]:
        """Aliases whose tables feed this node."""
        raise NotImplementedError

    def children(self) -> Tuple["PlanNode", ...]:
        """Direct child nodes."""
        return ()

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def join_nodes(self) -> List["JoinNode"]:
        """All join nodes in the subtree, bottom-up (smallest alias sets first)."""
        joins = [node for node in self.walk() if isinstance(node, JoinNode)]
        joins.sort(key=lambda node: (len(node.aliases), tuple(sorted(node.aliases))))
        return joins

    def label(self) -> str:
        """Short human-readable description (used by EXPLAIN)."""
        raise NotImplementedError


@dataclass
class ScanNode(PlanNode):
    """Scan of a single base table (sequential or through an index).

    For partitioned tables, ``partitions_total`` records the shard count and
    ``pruned_partitions`` the shards whose zone maps refute the pushed-down
    filters at *plan* time (EXPLAIN's ``Partitions: k/n scanned``).  The
    executor re-derives the pruning at execution time — table loads do not
    invalidate cached plans, so the plan-time set is advisory, never a
    correctness input.

    ``columns`` is the projection-pushdown set: the schema-ordered columns
    the rest of the query can reference (select expressions, the pushed-down
    filters themselves, join keys, residuals, sort/group keys).  ``None``
    means full width — ``SELECT *`` queries, or a referenced set covering
    every column — and keeps the engines' zero-copy full-width paths.
    ``columns_total`` is the table's schema width (EXPLAIN's
    ``Columns: k/n read``).
    """

    alias: str
    table: str
    filters: Tuple[Expr, ...] = ()
    access_path: AccessPath = AccessPath.SEQ_SCAN
    index_column: Optional[str] = None
    index_filter: Optional[Expr] = None
    partitions_total: Optional[int] = None
    pruned_partitions: Tuple[int, ...] = ()
    columns: Optional[Tuple[str, ...]] = None
    columns_total: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self._alias_set = frozenset((self.alias,))

    @property
    def aliases(self) -> FrozenSet[str]:
        return self._alias_set

    def label(self) -> str:
        path = "Seq Scan" if self.access_path is AccessPath.SEQ_SCAN else "Index Scan"
        text = f"{path} on {self.table} {self.alias}"
        if self.access_path is AccessPath.INDEX_SCAN and self.index_column:
            text += f" (index: {self.index_column})"
        return text


@dataclass
class JoinNode(PlanNode):
    """Join of two plan subtrees.

    ``join_predicates`` are the equi-join keys the physical algorithms run
    on; ``residual_filters`` are the non-equi join predicates applied to the
    joined rows (a join with only residual filters executes as a filtered
    cross product — the planner forces nested-loop costing for those).
    """

    left: PlanNode
    right: PlanNode
    join_predicates: Tuple[BoundJoin, ...]
    algorithm: JoinAlgorithm = JoinAlgorithm.HASH_JOIN
    residual_filters: Tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        self._alias_set = self.left.aliases | self.right.aliases

    @property
    def aliases(self) -> FrozenSet[str]:
        return self._alias_set

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        names = {
            JoinAlgorithm.HASH_JOIN: "Hash Join",
            JoinAlgorithm.NESTED_LOOP: "Nested Loop",
            JoinAlgorithm.INDEX_NESTED_LOOP: "Index Nested Loop",
            JoinAlgorithm.MERGE_JOIN: "Merge Join",
        }
        conditions = " AND ".join(j.to_sql() for j in self.join_predicates)
        if not conditions and self.residual_filters:
            conditions = "residual filter"
        text = f"{names[self.algorithm]} on ({conditions})"
        if self.join_predicates and self.residual_filters:
            text += " + residual filter"
        return text


@dataclass
class AggregateNode(PlanNode):
    """Final aggregation / projection producing the query output."""

    child: PlanNode
    select_items: Tuple[SelectItem, ...]

    def __post_init__(self) -> None:
        super().__post_init__()

    @property
    def aliases(self) -> FrozenSet[str]:
        return self.child.aliases

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        if any(item.aggregate is not None for item in self.select_items):
            return "Aggregate"
        return "Project"


@dataclass
class HashAggregateNode(PlanNode):
    """Grouped aggregation: hash on the group keys, fold aggregates per group."""

    child: PlanNode
    group_keys: Tuple[ColumnRef, ...]
    select_items: Tuple[SelectItem, ...]

    def __post_init__(self) -> None:
        super().__post_init__()

    @property
    def aliases(self) -> FrozenSet[str]:
        return self.child.aliases

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(str(key) for key in self.group_keys)
        return f"HashAggregate (keys: {keys})"


@dataclass
class SortNode(PlanNode):
    """Sort of the query output on one or more keys.

    Under ``LIMIT`` the planner appends a deterministic tie-break below the
    declared keys — either explicit expressions over the sort input
    (``tie_break``) or every input column positionally (``tie_break_all``) —
    so the rows surviving the limit cut no longer depend on which plan
    produced the input order.  Without a limit the whole result is returned
    and ties may keep plan order.
    """

    child: PlanNode
    keys: Tuple[BoundSortKey, ...]
    tie_break: Tuple[Expr, ...] = ()
    tie_break_all: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()

    @property
    def aliases(self) -> FrozenSet[str]:
        return self.child.aliases

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        # to_sql() renders " DESC" itself; spell out ASC for readability.
        keys = ", ".join(
            key.to_sql() + (" ASC" if key.ascending else "") for key in self.keys
        )
        return f"Sort ({keys})"


@dataclass
class LimitNode(PlanNode):
    """LIMIT/OFFSET applied to the (possibly sorted) query output."""

    child: PlanNode
    limit: int
    offset: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()

    @property
    def aliases(self) -> FrozenSet[str]:
        return self.child.aliases

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        text = f"Limit {self.limit}"
        if self.offset:
            text += f" offset {self.offset}"
        return text


@dataclass
class DistinctNode(PlanNode):
    """Duplicate elimination over the projected output rows."""

    child: PlanNode

    def __post_init__(self) -> None:
        super().__post_init__()

    @property
    def aliases(self) -> FrozenSet[str]:
        return self.child.aliases

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return "Distinct"


@dataclass
class OneTimeFilterNode(PlanNode):
    """A constant WHERE condition evaluated once per statement.

    The binder folds literal-only predicates (``WHERE 1 = 1``,
    ``WHERE 2 < 1``) into constants; the planner records them on this node
    (PostgreSQL's ``Result (One-Time Filter)``) so EXPLAIN still shows them.
    When ``passes`` is False the executor returns an empty result *without
    executing the child subtree* — the planner-level pruning of
    always-false queries.
    """

    child: PlanNode
    conditions: Tuple[Expr, ...]
    passes: bool

    def __post_init__(self) -> None:
        super().__post_init__()

    @property
    def aliases(self) -> FrozenSet[str]:
        return self.child.aliases

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Result (One-Time Filter: {'true' if self.passes else 'false'})"


@dataclass
class MaterializeNode(PlanNode):
    """Materialization of a subtree into a temporary table (re-optimization)."""

    child: PlanNode
    temp_table: str
    output_columns: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()

    @property
    def aliases(self) -> FrozenSet[str]:
        return self.child.aliases

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Materialize into {self.temp_table}"


def plan_depth(node: PlanNode) -> int:
    """Height of the plan tree (scans have depth 1)."""
    children = node.children()
    if not children:
        return 1
    return 1 + max(plan_depth(child) for child in children)


def count_nodes(node: PlanNode) -> int:
    """Total number of nodes in the plan tree."""
    return sum(1 for _ in node.walk())
