"""Cardinality and selectivity estimation (PostgreSQL-style).

This module reproduces the estimation *model* the paper studies: per-column
statistics combined under independence and uniformity assumptions.

* Filter selectivities use MCV lists, equi-depth histograms and
  ``n_distinct``, multiplied together across predicates (independence across
  columns of the same table).
* Equi-join selectivity is ``1 / max(nd_left, nd_right)`` over the *base
  table* distinct counts (uniformity over join keys, independence between the
  join key distribution and any filters applied below) — exactly the
  assumptions that break on skewed, correlated data such as IMDB.
* Cardinalities of multi-table joins are built recursively from smaller
  subsets, so injected ("perfect") cardinalities for small subsets propagate
  into larger estimates just like the paper's perfect-(n) construct.

The :class:`CardinalityEstimator` also counts how many estimates it makes per
join size, which reproduces Table I of the paper.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional

from repro.catalog.catalog import Catalog
from repro.errors import CardinalityError
from repro.optimizer.injection import CardinalityInjector, NoInjection
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.pruning import prune_partitions
from repro.sql.ast import (
    Between,
    BoolConnective,
    BoolExpr,
    Column,
    Comparison,
    ComparisonOp,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
)
from repro.sql.binder import BoundJoin, BoundQuery
from repro.sql.values import is_truthy
from repro.stats.column_stats import ColumnStats, TableStats
from repro.storage.partition import PartitionedTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.optimizer.estimators import CardinalityStrategy

# Default selectivities used when statistics cannot answer a question,
# mirroring PostgreSQL's DEFAULT_EQ_SEL / DEFAULT_INEQ_SEL / pattern defaults.
DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.008
MIN_SELECTIVITY = 1.0e-7
MIN_ROWS = 1.0
#: PostgreSQL's get_variable_numdistinct fallback for columns without stats.
DEFAULT_N_DISTINCT = 200.0


def clamp_selectivity(value: float) -> float:
    """Clamp a selectivity into ``[MIN_SELECTIVITY, 1.0]``."""
    return max(MIN_SELECTIVITY, min(1.0, value))


def scan_upper_bound(
    catalog: Catalog, table: str, predicates: List[Expr]
) -> Optional[float]:
    """Hard upper bound on a filtered scan's output, or ``None`` if unbounded.

    For partitioned tables the zone maps give a *guaranteed* bound: the scan
    can never return more rows than the partitions surviving pruning hold.
    Unpartitioned tables (or scans without predicates) have no bound tighter
    than the table itself, so ``None`` is returned and callers fall back to
    the row count.
    """
    storage = catalog.table(table)
    if isinstance(storage, PartitionedTable) and predicates:
        pruned, _total = prune_partitions(storage, predicates)
        return float(storage.scanned_rows(pruned))
    return None


class SelectivityEstimator:
    """Estimates selectivities of single-table predicates from ANALYZE stats."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    # -- public API --------------------------------------------------------

    def table_stats(self, table: str) -> Optional[TableStats]:
        """ANALYZE statistics for ``table`` (``None`` before ANALYZE)."""
        return self._catalog.stats(table)

    def table_rows(self, table: str) -> float:
        """Row count of ``table`` (from statistics, falling back to storage)."""
        stats = self._catalog.stats(table)
        if stats is not None:
            return float(max(stats.row_count, 0))
        return float(self._catalog.table(table).row_count)

    def filter_selectivity(self, table: str, predicate: Expr) -> float:
        """Selectivity of one single-table filter expression against ``table``."""
        return self.expr_selectivity(predicate, lambda alias: table)

    def expr_selectivity(self, expr: Expr, table_of) -> float:
        """Boolean-tree selectivity of an arbitrary predicate expression.

        ``table_of`` maps a FROM-clause alias to its catalog table (for a
        single-table filter it is constant; for residual join filters the
        caller passes the bound query's mapping).  Connectives compose under
        the independence assumption — ``AND`` multiplies, ``OR`` is
        ``1 - prod(1 - s_i)``, ``NOT`` complements — and leaves consult the
        per-column statistics when the leaf has the classic
        ``column op constant`` shape; anything irregular (arithmetic over
        columns, cross-column comparisons, CASE) falls back to the
        PostgreSQL-style defaults.
        """
        if isinstance(expr, BoolExpr):
            if expr.op is BoolConnective.AND:
                selectivity = 1.0
                for operand in expr.operands:
                    selectivity *= self.expr_selectivity(operand, table_of)
                return clamp_selectivity(selectivity)
            miss = 1.0
            for operand in expr.operands:
                miss *= 1.0 - self.expr_selectivity(operand, table_of)
            return clamp_selectivity(1.0 - miss)
        if isinstance(expr, Not):
            return clamp_selectivity(
                1.0 - self.expr_selectivity(expr.operand, table_of)
            )
        if isinstance(expr, Literal):
            return 1.0 if is_truthy(expr.value) else MIN_SELECTIVITY
        return clamp_selectivity(self._leaf_selectivity(expr, table_of))

    def conjunction_selectivity(self, table: str, predicates: List[Expr]) -> float:
        """Selectivity of a conjunction of filters (independence assumption)."""
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self.filter_selectivity(table, predicate)
        return clamp_selectivity(selectivity)

    def scan_rows(self, table: str, predicates: List[Expr]) -> float:
        """Estimated output rows of scanning ``table`` with ``predicates``.

        For partitioned tables the zone maps supply a *hard* upper bound: a
        scan can never return more rows than the unpruned partitions hold,
        so the statistical estimate is clamped to that bound (tightening the
        Q-error the adaptive executor's re-optimization triggers fire on).
        """
        rows = self.table_rows(table) * self.conjunction_selectivity(table, predicates)
        bound = scan_upper_bound(self._catalog, table, predicates)
        if bound is not None:
            rows = min(rows, bound)
        return max(MIN_ROWS, rows)

    def column_n_distinct(self, table: str, column: str) -> float:
        """Distinct count of one column (falls back like PostgreSQL's 200)."""
        stats = self._column_stats(table, column)
        if stats is not None and stats.n_distinct > 0:
            return float(stats.n_distinct)
        return min(DEFAULT_N_DISTINCT, max(MIN_ROWS, self.table_rows(table)))

    def group_count(self, input_rows: float, column_distincts: List[float]) -> float:
        """Estimated number of groups of a grouped aggregation.

        The product of per-key distinct counts under independence, clamped to
        the input cardinality (a group needs at least one input row).
        """
        if not column_distincts:
            return max(MIN_ROWS, min(input_rows, 1.0))
        product = 1.0
        for nd in column_distincts:
            product *= max(1.0, nd)
        return max(MIN_ROWS, min(input_rows, product))

    def join_predicate_selectivity(
        self, left_table: str, left_column: str, right_table: str, right_column: str
    ) -> float:
        """Selectivity of one equi-join predicate (``1 / max(nd_l, nd_r)``)."""
        left = self._column_stats(left_table, left_column)
        right = self._column_stats(right_table, right_column)
        nd_left = left.n_distinct if left is not None and left.n_distinct > 0 else None
        nd_right = (
            right.n_distinct if right is not None and right.n_distinct > 0 else None
        )
        if nd_left is None and nd_right is None:
            return DEFAULT_EQ_SELECTIVITY
        max_nd = max(nd for nd in (nd_left, nd_right) if nd is not None)
        selectivity = 1.0 / max_nd
        if left is not None:
            selectivity *= left.non_null_fraction
        if right is not None:
            selectivity *= right.non_null_fraction
        return clamp_selectivity(selectivity)

    # -- internals ----------------------------------------------------------

    def _column_stats(self, table: str, column: str) -> Optional[ColumnStats]:
        stats = self._catalog.stats(table)
        if stats is None:
            return None
        return stats.column_stats(column)

    def _leaf_stats(self, expr: Expr, table_of) -> Optional[ColumnStats]:
        """Column statistics for a leaf whose operand is a bare column."""
        operand = getattr(expr, "operand", None)
        if operand is None and isinstance(expr, Comparison):
            operand = expr.left if isinstance(expr.left, Column) else expr.right
        if not isinstance(operand, Column) or operand.alias is None:
            return None
        table = table_of(operand.alias)
        if table is None:
            return None
        stats = self._catalog.stats(table)
        if stats is None:
            return None
        return stats.column_stats(operand.column)

    def _leaf_selectivity(self, expr: Expr, table_of) -> float:
        stats = self._leaf_stats(expr, table_of)
        if isinstance(expr, Comparison):
            return self._comparison_selectivity(expr, stats)
        if isinstance(expr, InList):
            selectivity = self._in_selectivity(expr, stats)
            return 1.0 - selectivity if expr.negated else selectivity
        if isinstance(expr, Like):
            return self._like_selectivity(expr, stats)
        if isinstance(expr, Between):
            low = _constant_value(expr.low)
            high = _constant_value(expr.high)
            if low is None or high is None:
                selectivity = DEFAULT_RANGE_SELECTIVITY * DEFAULT_RANGE_SELECTIVITY
            else:
                selectivity = self._range_selectivity(stats, low=low, high=high)
            return 1.0 - selectivity if expr.negated else selectivity
        if isinstance(expr, IsNull):
            if stats is None:
                return DEFAULT_EQ_SELECTIVITY
            return stats.non_null_fraction if expr.negated else stats.null_fraction
        return DEFAULT_EQ_SELECTIVITY

    def _equality_selectivity(self, value, stats: Optional[ColumnStats]) -> float:
        if stats is None:
            return DEFAULT_EQ_SELECTIVITY
        if stats.n_distinct <= 0:
            return DEFAULT_EQ_SELECTIVITY
        if stats.mcv is not None:
            frequency = stats.mcv.frequency_of(value)
            if frequency is not None:
                return frequency * stats.non_null_fraction
            remaining_mass = max(0.0, 1.0 - stats.mcv.total_frequency)
            remaining_distinct = max(1, stats.n_distinct - len(stats.mcv))
            return remaining_mass * stats.non_null_fraction / remaining_distinct
        return stats.non_null_fraction / stats.n_distinct

    def _comparison_selectivity(
        self, predicate: Comparison, stats: Optional[ColumnStats]
    ) -> float:
        # Normalize to "column op constant": a literal on the left flips the
        # operator; anything without a constant side (column-to-column on the
        # same table, arithmetic) keeps only the default estimates.
        op = predicate.op
        if isinstance(predicate.left, Column) and isinstance(
            predicate.right, Literal
        ):
            value = predicate.right.value
        elif isinstance(predicate.right, Column) and isinstance(
            predicate.left, Literal
        ):
            value = predicate.left.value
            op = op.flipped()
        else:
            if op is ComparisonOp.EQ:
                return DEFAULT_EQ_SELECTIVITY
            if op is ComparisonOp.NE:
                return 1.0 - DEFAULT_EQ_SELECTIVITY
            return DEFAULT_RANGE_SELECTIVITY
        if value is None:
            # ``col op NULL`` is never true.
            return MIN_SELECTIVITY
        if op is ComparisonOp.EQ:
            return self._equality_selectivity(value, stats)
        if op is ComparisonOp.NE:
            return 1.0 - self._equality_selectivity(value, stats)
        if stats is None or stats.histogram is None:
            return DEFAULT_RANGE_SELECTIVITY
        histogram = stats.histogram
        if op in (ComparisonOp.LT, ComparisonOp.LE):
            fraction = histogram.selectivity_less_than(
                value, inclusive=op is ComparisonOp.LE
            )
        else:
            fraction = 1.0 - histogram.selectivity_less_than(
                value, inclusive=op is ComparisonOp.GT
            )
        return fraction * stats.non_null_fraction

    def _in_selectivity(
        self, predicate: InList, stats: Optional[ColumnStats]
    ) -> float:
        total = 0.0
        for item in predicate.items:
            value = _constant_value(item)
            if value is None and not isinstance(item, Literal):
                total += DEFAULT_EQ_SELECTIVITY
                continue
            total += self._equality_selectivity(value, stats)
        return min(1.0, total)

    def _like_selectivity(
        self, predicate: Like, stats: Optional[ColumnStats]
    ) -> float:
        """Heuristic pattern selectivity.

        Like PostgreSQL's ``patternsel``, the estimate only looks at the
        pattern text, never at the data, so correlated or skewed name columns
        (e.g. ``n.name LIKE '%Downey%Robert%'``) are mis-estimated — a source
        of error the paper calls out.
        """
        pattern = _constant_value(predicate.pattern)
        if not isinstance(pattern, str):
            selectivity = DEFAULT_LIKE_SELECTIVITY
            return 1.0 - selectivity if predicate.negated else selectivity
        literal_chars = sum(1 for ch in pattern if ch not in ("%", "_"))
        if "%" not in pattern and "_" not in pattern:
            selectivity = self._equality_selectivity(pattern, stats)
        else:
            # Contains-style patterns ('%foo%') are assumed less selective
            # than anchored prefixes ('foo%'), both decaying gently with the
            # number of literal characters.  The constants are calibrated so
            # single-table estimates are usually within a small factor of the
            # truth — the paper's premise is that *base table* estimates are
            # mostly fine and the damage comes from compounding across joins.
            if pattern.startswith("%"):
                base, decay = 0.08, 0.95
            else:
                base, decay = 0.05, 0.90
            selectivity = base * (decay ** max(0, literal_chars - 2))
            selectivity = max(selectivity, 1.0e-3)
        if predicate.negated:
            return 1.0 - selectivity
        return selectivity

    def _range_selectivity(self, stats: Optional[ColumnStats], low, high) -> float:
        if stats is None or stats.histogram is None:
            return DEFAULT_RANGE_SELECTIVITY * DEFAULT_RANGE_SELECTIVITY
        fraction = stats.histogram.selectivity_range(low=low, high=high)
        return fraction * stats.non_null_fraction


def _constant_value(expr: Expr) -> Optional[object]:
    """The Python value of a literal expression leaf (``None`` otherwise)."""
    if isinstance(expr, Literal):
        return expr.value
    return None


class CardinalityEstimator:
    """Estimates cardinalities of connected alias subsets of one query.

    The estimator memoizes one estimate per subset, mirrors PostgreSQL's
    behaviour of estimating a join relation's size once regardless of how the
    dynamic program later splits it, and consults a
    :class:`~repro.optimizer.injection.CardinalityInjector` before falling
    back to the statistical model.  Perfect-(n) and LEO-style feedback are
    both implemented as injectors.
    """

    def __init__(
        self,
        catalog: Catalog,
        query: BoundQuery,
        graph: Optional[JoinGraph] = None,
        injector: Optional[CardinalityInjector] = None,
        strategy: Optional["CardinalityStrategy"] = None,
    ) -> None:
        self._catalog = catalog
        self.query = query
        self.graph = graph if graph is not None else JoinGraph(query)
        # "injector or ..." would discard an *empty* DictInjection (len() == 0
        # makes it falsy), so compare against None explicitly.
        self.injector = injector if injector is not None else NoInjection()
        self.strategy = strategy
        self.selectivity = SelectivityEstimator(catalog)
        self._memo: Dict[FrozenSet[str], float] = {}
        self.estimates_by_size: Counter = Counter()
        self.estimate_calls = 0
        if strategy is not None:
            strategy.setup_for_query(query)

    # -- public API --------------------------------------------------------

    def scan_cardinality(self, alias: str) -> float:
        """Estimated rows of scanning ``alias`` with its filters applied."""
        return self.subset_cardinality(frozenset((alias,)))

    def subset_cardinality(self, subset: FrozenSet[str]) -> float:
        """Estimated rows of joining all aliases in ``subset``."""
        if not subset:
            raise CardinalityError("cannot estimate the empty alias set")
        subset = frozenset(subset)
        if subset in self._memo:
            return self._memo[subset]
        unknown = subset - set(self.query.aliases)
        if unknown:
            raise CardinalityError(
                f"aliases {sorted(unknown)} are not part of query {self.query.name!r}"
            )
        self.estimate_calls += 1
        self.estimates_by_size[len(subset)] += 1
        injected = self.injector.lookup(self.query, subset)
        if injected is not None:
            rows: Optional[float] = max(MIN_ROWS, float(injected))
        else:
            # The active strategy is consulted after injectors (perfect-(n)
            # and runtime re-optimization feedback stay authoritative) and
            # may decline with ``None``, deferring to the built-in model.
            rows = None
            if self.strategy is not None:
                answer = self.strategy.estimate_subset(self.query, subset)
                if answer is not None:
                    rows = max(MIN_ROWS, float(answer))
            if rows is None:
                if len(subset) == 1:
                    rows = self._estimate_scan(next(iter(subset)))
                else:
                    rows = self._estimate_join(subset)
        self._memo[subset] = rows
        return rows

    def join_selectivity(self, joins: List[BoundJoin]) -> float:
        """Combined selectivity of the given join predicates (independence)."""
        selectivity = 1.0
        for join in joins:
            selectivity *= self.selectivity.join_predicate_selectivity(
                self.query.table_for(join.left_alias),
                join.left_column,
                self.query.table_for(join.right_alias),
                join.right_column,
            )
        return clamp_selectivity(selectivity)

    def filter_selectivity(self, alias: str, predicate: Expr) -> float:
        """Selectivity of one filter on ``alias`` (used for access-path costing)."""
        return self.selectivity.filter_selectivity(
            self.query.table_for(alias), predicate
        )

    def residual_selectivity(self, residuals: List[Expr]) -> float:
        """Combined selectivity of residual join filters (independence)."""
        selectivity = 1.0
        for residual in residuals:
            selectivity *= self.selectivity.expr_selectivity(
                residual, self._table_of
            )
        return clamp_selectivity(selectivity)

    def _table_of(self, alias: str) -> Optional[str]:
        if alias in self.query.alias_tables:
            return self.query.alias_tables[alias]
        return None

    def invalidate(self, subset: Optional[FrozenSet[str]] = None) -> None:
        """Drop memoized estimates (all of them, or just ``subset``)."""
        if subset is None:
            self._memo.clear()
        else:
            self._memo.pop(frozenset(subset), None)

    # -- internals ----------------------------------------------------------

    def _estimate_scan(self, alias: str) -> float:
        table = self.query.table_for(alias)
        filters = self.query.filters_for(alias)
        return self.selectivity.scan_rows(table, filters)

    def _estimate_join(self, subset: FrozenSet[str]) -> float:
        removable = self._pick_removable(subset)
        remainder = subset - {removable}
        joins = self.graph.joins_between_sets(remainder, {removable})
        left_rows = self.subset_cardinality(remainder)
        right_rows = self.subset_cardinality(frozenset((removable,)))
        # Residual join filters become applicable exactly when the subset
        # first covers all their aliases; their selectivity multiplies in
        # here so every plan over this subset sees the same estimate.
        residuals = [
            residual
            for residual in self.query.residuals
            if removable in residual.referenced_aliases()
            and set(residual.referenced_aliases()) <= subset
        ]
        selectivity = self.residual_selectivity(residuals) if residuals else 1.0
        if not joins and not residuals:
            # Disconnected subset: Cartesian product semantics.
            return max(MIN_ROWS, left_rows * right_rows)
        if joins:
            selectivity *= self.join_selectivity(joins)
        return max(MIN_ROWS, left_rows * right_rows * selectivity)

    def _pick_removable(self, subset: FrozenSet[str]) -> str:
        """Pick a deterministic alias whose removal keeps the subset connected."""
        ordered = sorted(subset)
        for alias in reversed(ordered):
            remainder = subset - {alias}
            if self.graph.is_connected(remainder) and self.graph.connects(
                remainder, {alias}
            ):
                return alias
        # Disconnected subsets (should not happen for enumerated subsets, but
        # injected experiments may probe them): peel off the last alias.
        return ordered[-1]
