"""Cardinality and selectivity estimation (PostgreSQL-style).

This module reproduces the estimation *model* the paper studies: per-column
statistics combined under independence and uniformity assumptions.

* Filter selectivities use MCV lists, equi-depth histograms and
  ``n_distinct``, multiplied together across predicates (independence across
  columns of the same table).
* Equi-join selectivity is ``1 / max(nd_left, nd_right)`` over the *base
  table* distinct counts (uniformity over join keys, independence between the
  join key distribution and any filters applied below) — exactly the
  assumptions that break on skewed, correlated data such as IMDB.
* Cardinalities of multi-table joins are built recursively from smaller
  subsets, so injected ("perfect") cardinalities for small subsets propagate
  into larger estimates just like the paper's perfect-(n) construct.

The :class:`CardinalityEstimator` also counts how many estimates it makes per
join size, which reproduces Table I of the paper.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, List, Optional

from repro.catalog.catalog import Catalog
from repro.errors import CardinalityError
from repro.optimizer.injection import CardinalityInjector, NoInjection
from repro.optimizer.joingraph import JoinGraph
from repro.sql.ast import (
    BetweenPredicate,
    ComparisonOp,
    ComparisonPredicate,
    InPredicate,
    LikePredicate,
    NullPredicate,
    OrPredicate,
    Predicate,
)
from repro.sql.binder import BoundJoin, BoundQuery
from repro.stats.column_stats import ColumnStats, TableStats

# Default selectivities used when statistics cannot answer a question,
# mirroring PostgreSQL's DEFAULT_EQ_SEL / DEFAULT_INEQ_SEL / pattern defaults.
DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.008
MIN_SELECTIVITY = 1.0e-7
MIN_ROWS = 1.0
#: PostgreSQL's get_variable_numdistinct fallback for columns without stats.
DEFAULT_N_DISTINCT = 200.0


def clamp_selectivity(value: float) -> float:
    """Clamp a selectivity into ``[MIN_SELECTIVITY, 1.0]``."""
    return max(MIN_SELECTIVITY, min(1.0, value))


class SelectivityEstimator:
    """Estimates selectivities of single-table predicates from ANALYZE stats."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    # -- public API --------------------------------------------------------

    def table_stats(self, table: str) -> Optional[TableStats]:
        """ANALYZE statistics for ``table`` (``None`` before ANALYZE)."""
        return self._catalog.stats(table)

    def table_rows(self, table: str) -> float:
        """Row count of ``table`` (from statistics, falling back to storage)."""
        stats = self._catalog.stats(table)
        if stats is not None:
            return float(max(stats.row_count, 0))
        return float(self._catalog.table(table).row_count)

    def filter_selectivity(self, table: str, predicate: Predicate) -> float:
        """Selectivity of one filter predicate against ``table``."""
        if isinstance(predicate, OrPredicate):
            # Disjunction under independence: 1 - prod(1 - s_i), resolving the
            # statistics of each operand's own column.
            miss = 1.0
            for operand in predicate.operands:
                miss *= 1.0 - self.filter_selectivity(table, operand)
            return clamp_selectivity(1.0 - miss)
        stats = self._catalog.stats(table)
        column_stats = None
        if stats is not None:
            column = self._predicate_column(predicate)
            if column is not None:
                column_stats = stats.column_stats(column)
        return clamp_selectivity(self._predicate_selectivity(predicate, column_stats))

    def conjunction_selectivity(self, table: str, predicates: List[Predicate]) -> float:
        """Selectivity of a conjunction of filters (independence assumption)."""
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self.filter_selectivity(table, predicate)
        return clamp_selectivity(selectivity)

    def scan_rows(self, table: str, predicates: List[Predicate]) -> float:
        """Estimated output rows of scanning ``table`` with ``predicates``."""
        rows = self.table_rows(table) * self.conjunction_selectivity(table, predicates)
        return max(MIN_ROWS, rows)

    def column_n_distinct(self, table: str, column: str) -> float:
        """Distinct count of one column (falls back like PostgreSQL's 200)."""
        stats = self._column_stats(table, column)
        if stats is not None and stats.n_distinct > 0:
            return float(stats.n_distinct)
        return min(DEFAULT_N_DISTINCT, max(MIN_ROWS, self.table_rows(table)))

    def group_count(self, input_rows: float, column_distincts: List[float]) -> float:
        """Estimated number of groups of a grouped aggregation.

        The product of per-key distinct counts under independence, clamped to
        the input cardinality (a group needs at least one input row).
        """
        if not column_distincts:
            return max(MIN_ROWS, min(input_rows, 1.0))
        product = 1.0
        for nd in column_distincts:
            product *= max(1.0, nd)
        return max(MIN_ROWS, min(input_rows, product))

    def join_predicate_selectivity(
        self, left_table: str, left_column: str, right_table: str, right_column: str
    ) -> float:
        """Selectivity of one equi-join predicate (``1 / max(nd_l, nd_r)``)."""
        left = self._column_stats(left_table, left_column)
        right = self._column_stats(right_table, right_column)
        nd_left = left.n_distinct if left is not None and left.n_distinct > 0 else None
        nd_right = (
            right.n_distinct if right is not None and right.n_distinct > 0 else None
        )
        if nd_left is None and nd_right is None:
            return DEFAULT_EQ_SELECTIVITY
        max_nd = max(nd for nd in (nd_left, nd_right) if nd is not None)
        selectivity = 1.0 / max_nd
        if left is not None:
            selectivity *= left.non_null_fraction
        if right is not None:
            selectivity *= right.non_null_fraction
        return clamp_selectivity(selectivity)

    # -- internals ----------------------------------------------------------

    def _column_stats(self, table: str, column: str) -> Optional[ColumnStats]:
        stats = self._catalog.stats(table)
        if stats is None:
            return None
        return stats.column_stats(column)

    @staticmethod
    def _predicate_column(predicate: Predicate) -> Optional[str]:
        if isinstance(
            predicate,
            (
                ComparisonPredicate,
                InPredicate,
                LikePredicate,
                BetweenPredicate,
                NullPredicate,
            ),
        ):
            return predicate.column.column
        return None

    def _predicate_selectivity(
        self, predicate: Predicate, stats: Optional[ColumnStats]
    ) -> float:
        if isinstance(predicate, ComparisonPredicate):
            return self._comparison_selectivity(predicate, stats)
        if isinstance(predicate, InPredicate):
            return self._in_selectivity(predicate, stats)
        if isinstance(predicate, LikePredicate):
            return self._like_selectivity(predicate, stats)
        if isinstance(predicate, BetweenPredicate):
            return self._range_selectivity(
                stats, low=predicate.low, high=predicate.high
            )
        if isinstance(predicate, NullPredicate):
            if stats is None:
                return DEFAULT_EQ_SELECTIVITY
            return stats.non_null_fraction if predicate.negated else stats.null_fraction
        if isinstance(predicate, OrPredicate):
            # Reached only when called without a table context; assume the
            # operands share the given column statistics.
            miss = 1.0
            for operand in predicate.operands:
                miss *= 1.0 - clamp_selectivity(
                    self._predicate_selectivity(operand, stats)
                )
            return 1.0 - miss
        return DEFAULT_EQ_SELECTIVITY

    def _equality_selectivity(self, value, stats: Optional[ColumnStats]) -> float:
        if stats is None:
            return DEFAULT_EQ_SELECTIVITY
        if stats.n_distinct <= 0:
            return DEFAULT_EQ_SELECTIVITY
        if stats.mcv is not None:
            frequency = stats.mcv.frequency_of(value)
            if frequency is not None:
                return frequency * stats.non_null_fraction
            remaining_mass = max(0.0, 1.0 - stats.mcv.total_frequency)
            remaining_distinct = max(1, stats.n_distinct - len(stats.mcv))
            return remaining_mass * stats.non_null_fraction / remaining_distinct
        return stats.non_null_fraction / stats.n_distinct

    def _comparison_selectivity(
        self, predicate: ComparisonPredicate, stats: Optional[ColumnStats]
    ) -> float:
        op = predicate.op
        if op is ComparisonOp.EQ:
            return self._equality_selectivity(predicate.value, stats)
        if op is ComparisonOp.NE:
            return 1.0 - self._equality_selectivity(predicate.value, stats)
        if stats is None or stats.histogram is None:
            return DEFAULT_RANGE_SELECTIVITY
        histogram = stats.histogram
        if op in (ComparisonOp.LT, ComparisonOp.LE):
            fraction = histogram.selectivity_less_than(
                predicate.value, inclusive=op is ComparisonOp.LE
            )
        else:
            fraction = 1.0 - histogram.selectivity_less_than(
                predicate.value, inclusive=op is ComparisonOp.GT
            )
        return fraction * stats.non_null_fraction

    def _in_selectivity(
        self, predicate: InPredicate, stats: Optional[ColumnStats]
    ) -> float:
        total = 0.0
        for value in predicate.values:
            total += self._equality_selectivity(value, stats)
        return min(1.0, total)

    def _like_selectivity(
        self, predicate: LikePredicate, stats: Optional[ColumnStats]
    ) -> float:
        """Heuristic pattern selectivity.

        Like PostgreSQL's ``patternsel``, the estimate only looks at the
        pattern text, never at the data, so correlated or skewed name columns
        (e.g. ``n.name LIKE '%Downey%Robert%'``) are mis-estimated — a source
        of error the paper calls out.
        """
        pattern = predicate.pattern
        literal_chars = sum(1 for ch in pattern if ch not in ("%", "_"))
        if "%" not in pattern and "_" not in pattern:
            selectivity = self._equality_selectivity(pattern, stats)
        else:
            # Contains-style patterns ('%foo%') are assumed less selective
            # than anchored prefixes ('foo%'), both decaying gently with the
            # number of literal characters.  The constants are calibrated so
            # single-table estimates are usually within a small factor of the
            # truth — the paper's premise is that *base table* estimates are
            # mostly fine and the damage comes from compounding across joins.
            if pattern.startswith("%"):
                base, decay = 0.08, 0.95
            else:
                base, decay = 0.05, 0.90
            selectivity = base * (decay ** max(0, literal_chars - 2))
            selectivity = max(selectivity, 1.0e-3)
        if predicate.negated:
            return 1.0 - selectivity
        return selectivity

    def _range_selectivity(self, stats: Optional[ColumnStats], low, high) -> float:
        if stats is None or stats.histogram is None:
            return DEFAULT_RANGE_SELECTIVITY * DEFAULT_RANGE_SELECTIVITY
        fraction = stats.histogram.selectivity_range(low=low, high=high)
        return fraction * stats.non_null_fraction


class CardinalityEstimator:
    """Estimates cardinalities of connected alias subsets of one query.

    The estimator memoizes one estimate per subset, mirrors PostgreSQL's
    behaviour of estimating a join relation's size once regardless of how the
    dynamic program later splits it, and consults a
    :class:`~repro.optimizer.injection.CardinalityInjector` before falling
    back to the statistical model.  Perfect-(n) and LEO-style feedback are
    both implemented as injectors.
    """

    def __init__(
        self,
        catalog: Catalog,
        query: BoundQuery,
        graph: Optional[JoinGraph] = None,
        injector: Optional[CardinalityInjector] = None,
    ) -> None:
        self._catalog = catalog
        self.query = query
        self.graph = graph if graph is not None else JoinGraph(query)
        # "injector or ..." would discard an *empty* DictInjection (len() == 0
        # makes it falsy), so compare against None explicitly.
        self.injector = injector if injector is not None else NoInjection()
        self.selectivity = SelectivityEstimator(catalog)
        self._memo: Dict[FrozenSet[str], float] = {}
        self.estimates_by_size: Counter = Counter()
        self.estimate_calls = 0

    # -- public API --------------------------------------------------------

    def scan_cardinality(self, alias: str) -> float:
        """Estimated rows of scanning ``alias`` with its filters applied."""
        return self.subset_cardinality(frozenset((alias,)))

    def subset_cardinality(self, subset: FrozenSet[str]) -> float:
        """Estimated rows of joining all aliases in ``subset``."""
        if not subset:
            raise CardinalityError("cannot estimate the empty alias set")
        subset = frozenset(subset)
        if subset in self._memo:
            return self._memo[subset]
        unknown = subset - set(self.query.aliases)
        if unknown:
            raise CardinalityError(
                f"aliases {sorted(unknown)} are not part of query {self.query.name!r}"
            )
        self.estimate_calls += 1
        self.estimates_by_size[len(subset)] += 1
        injected = self.injector.lookup(self.query, subset)
        if injected is not None:
            rows = max(MIN_ROWS, float(injected))
        elif len(subset) == 1:
            rows = self._estimate_scan(next(iter(subset)))
        else:
            rows = self._estimate_join(subset)
        self._memo[subset] = rows
        return rows

    def join_selectivity(self, joins: List[BoundJoin]) -> float:
        """Combined selectivity of the given join predicates (independence)."""
        selectivity = 1.0
        for join in joins:
            selectivity *= self.selectivity.join_predicate_selectivity(
                self.query.table_for(join.left_alias),
                join.left_column,
                self.query.table_for(join.right_alias),
                join.right_column,
            )
        return clamp_selectivity(selectivity)

    def filter_selectivity(self, alias: str, predicate: Predicate) -> float:
        """Selectivity of one filter on ``alias`` (used for access-path costing)."""
        return self.selectivity.filter_selectivity(
            self.query.table_for(alias), predicate
        )

    def invalidate(self, subset: Optional[FrozenSet[str]] = None) -> None:
        """Drop memoized estimates (all of them, or just ``subset``)."""
        if subset is None:
            self._memo.clear()
        else:
            self._memo.pop(frozenset(subset), None)

    # -- internals ----------------------------------------------------------

    def _estimate_scan(self, alias: str) -> float:
        table = self.query.table_for(alias)
        filters = self.query.filters_for(alias)
        return self.selectivity.scan_rows(table, filters)

    def _estimate_join(self, subset: FrozenSet[str]) -> float:
        removable = self._pick_removable(subset)
        remainder = subset - {removable}
        joins = self.graph.joins_between_sets(remainder, {removable})
        left_rows = self.subset_cardinality(remainder)
        right_rows = self.subset_cardinality(frozenset((removable,)))
        if not joins:
            # Disconnected subset: Cartesian product semantics.
            return max(MIN_ROWS, left_rows * right_rows)
        selectivity = self.join_selectivity(joins)
        return max(MIN_ROWS, left_rows * right_rows * selectivity)

    def _pick_removable(self, subset: FrozenSet[str]) -> str:
        """Pick a deterministic alias whose removal keeps the subset connected."""
        ordered = sorted(subset)
        for alias in reversed(ordered):
            remainder = subset - {alias}
            if self.graph.is_connected(remainder) and self.graph.connects(
                remainder, {alias}
            ):
                return alias
        # Disconnected subsets (should not happen for enumerated subsets, but
        # injected experiments may probe them): peel off the last alias.
        return ordered[-1]
