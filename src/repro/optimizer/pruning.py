"""Partition pruning: drop shards whose zone maps contradict pushed-down filters.

:func:`prune_partitions` takes the pushed-down CNF conjuncts of a base-table
scan and decides, per partition, whether the conjunction can possibly be
TRUE for any stored row.  Two independent mechanisms combine:

* **Zone-map refutation** — every conjunct is normalized to negation normal
  form (:func:`~repro.optimizer.rewrite.push_not_down`, exact under
  three-valued logic) and tested against the partition's per-column
  min/max/null-count synopsis.  A partition survives only if *every*
  conjunct may still be TRUE there.
* **Partition-key routing** — equality and ``IN`` conjuncts on the
  partition key compute the exact target shards via
  :meth:`~repro.storage.partition.PartitionedTable.route`.  This is what
  prunes *hash* partitions, whose zone maps all cover the full key range.

Soundness rule: a partition is pruned only when the conjunction is provably
never TRUE for any of its rows (UNKNOWN and FALSE both drop a row, so both
justify pruning).  Anything the analysis cannot prove — unknown expression
shapes, mixed-type comparisons raising ``TypeError`` — conservatively keeps
the partition.  The differential fuzzer pins this: a wrongly pruned shard
shows up as missing rows against the reference oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.optimizer.rewrite import push_not_down
from repro.sql import values
from repro.sql.ast import (
    Arithmetic,
    Between,
    BoolConnective,
    BoolExpr,
    Column,
    Comparison,
    ComparisonOp,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
)
from repro.storage.partition import PartitionedTable, ZoneMap

__all__ = ["may_match", "prune_partitions"]


def prune_partitions(
    table: PartitionedTable, filters: Sequence[Expr]
) -> Tuple[Tuple[int, ...], int]:
    """Partitions of ``table`` that ``filters`` provably cannot match.

    Returns ``(pruned, total)`` where ``pruned`` is the ascending tuple of
    partition indices a scan may skip and ``total`` the partition count.
    With no filters nothing is pruned.
    """
    total = table.num_partitions
    normalized = [push_not_down(conjunct) for conjunct in filters]
    allowed: Optional[Set[int]] = None
    for conjunct in normalized:
        keys = _routing_keys(conjunct, table)
        if keys is None:
            continue
        routed = {table.route(key) for key in keys}
        allowed = routed if allowed is None else (allowed & routed)
    pruned: List[int] = []
    for index in range(total):
        if allowed is not None and index not in allowed:
            pruned.append(index)
            continue
        zone_map = table.zone_map(index)
        if normalized and zone_map.row_count == 0:
            # A filtered scan of an empty shard yields nothing; skip it.
            pruned.append(index)
            continue
        if not all(_may_match(conjunct, zone_map) for conjunct in normalized):
            pruned.append(index)
    return tuple(pruned), total


# ---------------------------------------------------------------------------
# Partition-key routing
# ---------------------------------------------------------------------------


def _routing_keys(
    conjunct: Expr, table: PartitionedTable
) -> Optional[List[object]]:
    """Exact key values a conjunct restricts the partition key to.

    ``None`` means the conjunct does not pin the key (no routing); an empty
    list means no key can satisfy it (all partitions pruned).  Only
    non-negated equality and ``IN`` over the bare key column route; NULL
    comparands are dropped (``key = NULL`` is never TRUE).
    """
    key_column = table.spec.column
    col_type = table.schema.column(key_column).col_type
    candidates: Optional[List[object]] = None
    if isinstance(conjunct, Comparison) and conjunct.op is ComparisonOp.EQ:
        if _is_key_column(conjunct.left, key_column) and isinstance(
            conjunct.right, Literal
        ):
            candidates = [conjunct.right.value]
        elif _is_key_column(conjunct.right, key_column) and isinstance(
            conjunct.left, Literal
        ):
            candidates = [conjunct.left.value]
    elif (
        isinstance(conjunct, InList)
        and not conjunct.negated
        and _is_key_column(conjunct.operand, key_column)
        and all(isinstance(item, Literal) for item in conjunct.items)
    ):
        candidates = [item.value for item in conjunct.items]
    if candidates is None:
        return None
    keys: List[object] = []
    for value in candidates:
        if value is None:
            continue
        try:
            keys.append(col_type.coerce(value))
        except Exception:
            # Un-coercible comparand: fall back to zone maps for this one.
            return None
    return keys


def _is_key_column(expr: Expr, key_column: str) -> bool:
    return isinstance(expr, Column) and expr.column == key_column


# ---------------------------------------------------------------------------
# Zone-map refutation
# ---------------------------------------------------------------------------


def may_match(expr: Expr, zone_map: ZoneMap) -> bool:
    """Whether ``expr`` (in NNF) may evaluate TRUE for some row of a zone.

    ``False`` is a proof of "never TRUE"; ``True`` merely means the synopsis
    cannot refute the conjunct.  ``expr`` must already be in negation normal
    form (:func:`~repro.optimizer.rewrite.push_not_down`).  Besides whole
    partitions, the scan layer reuses this against synthetic per-block zone
    maps for segment skipping — the caller must ensure the zone map carries a
    real :class:`~repro.storage.partition.ColumnZone` for **every** column
    the conjunct references, because an auto-created empty zone reads as
    "all NULL" and would wrongly refute.
    """
    return _may_match(expr, zone_map)


def _may_match(expr: Expr, zone_map: ZoneMap) -> bool:
    if isinstance(expr, BoolExpr):
        parts = [_may_match(operand, zone_map) for operand in expr.operands]
        if expr.op is BoolConnective.AND:
            return all(parts)
        return any(parts)
    if isinstance(expr, Literal):
        # A constant FALSE/NULL conjunct filters out every row.
        return values.is_truthy(expr.value)
    if isinstance(expr, IsNull):
        return _may_match_is_null(expr, zone_map)
    if isinstance(expr, Comparison):
        return _may_match_comparison(expr, zone_map)
    if isinstance(expr, InList):
        return _may_match_in_list(expr, zone_map)
    if isinstance(expr, Between):
        return _may_match_between(expr, zone_map)
    if isinstance(expr, Like):
        return _may_match_like(expr, zone_map)
    return True


def _strict_columns(expr: Expr) -> Optional[Set[str]]:
    """Columns of a NULL-strict scalar expression, or ``None`` if unprovable.

    An expression built purely from columns, literals, arithmetic and unary
    minus evaluates to NULL whenever any referenced column is NULL.  Hence a
    predicate over such operands is UNKNOWN — never TRUE — on every row
    where one of these columns is NULL.
    """
    if isinstance(expr, Column):
        return {expr.column}
    if isinstance(expr, Literal):
        return set()
    if isinstance(expr, Negate):
        return _strict_columns(expr.operand)
    if isinstance(expr, Arithmetic):
        left = _strict_columns(expr.left)
        right = _strict_columns(expr.right)
        if left is None or right is None:
            return None
        return left | right
    return None


def _all_null_somewhere(
    operands: Sequence[Expr], zone_map: ZoneMap
) -> Optional[bool]:
    """Whether some strict operand column is entirely NULL in the partition.

    ``True`` proves the enclosing strict predicate never TRUE; ``False``
    means no refutation; ``None`` means the operands were not provably
    strict (no conclusion).
    """
    columns: Set[str] = set()
    for operand in operands:
        strict = _strict_columns(operand)
        if strict is None:
            return None
        columns |= strict
    return any(zone_map.non_null_count(column) == 0 for column in columns)


def _literal_value(expr: Expr) -> Tuple[bool, object]:
    """``(True, value)`` when ``expr`` is a literal, else ``(False, None)``."""
    if isinstance(expr, Literal):
        return True, expr.value
    return False, None


def _may_match_is_null(expr: IsNull, zone_map: ZoneMap) -> bool:
    if isinstance(expr.operand, Column):
        zone = zone_map.zone(expr.operand.column)
        if expr.negated:  # IS NOT NULL
            return zone_map.row_count - zone.null_count > 0
        return zone.null_count > 0
    if expr.negated:
        # IS NOT NULL over a strict expression needs one row with every
        # referenced column non-NULL; an all-NULL column refutes that.
        refuted = _all_null_somewhere([expr.operand], zone_map)
        if refuted:
            return False
    return True


def _may_match_comparison(expr: Comparison, zone_map: ZoneMap) -> bool:
    refuted = _all_null_somewhere([expr.left, expr.right], zone_map)
    if refuted:
        return False
    op = expr.op
    if isinstance(expr.left, Column):
        column, is_lit, comparand = expr.left.column, *_literal_value(expr.right)
    elif isinstance(expr.right, Column):
        op = op.flipped()
        column, is_lit, comparand = expr.right.column, *_literal_value(expr.left)
    else:
        return True
    if not is_lit:
        return True
    if comparand is None:
        return False  # comparison with NULL is never TRUE
    zone = zone_map.zone(column)
    if zone_map.non_null_count(column) == 0:
        return False
    lo, hi = zone.minimum, zone.maximum
    if lo is None or hi is None:
        return False
    try:
        if op is ComparisonOp.EQ:
            return lo <= comparand <= hi
        if op is ComparisonOp.NE:
            return not (lo == comparand and hi == comparand)
        if op is ComparisonOp.LT:
            return lo < comparand
        if op is ComparisonOp.LE:
            return lo <= comparand
        if op is ComparisonOp.GT:
            return hi > comparand
        return hi >= comparand  # GE
    except TypeError:
        return True


def _may_match_in_list(expr: InList, zone_map: ZoneMap) -> bool:
    refuted = _all_null_somewhere([expr.operand], zone_map)
    if refuted:
        return False
    if expr.negated and any(
        isinstance(item, Literal) and item.value is None for item in expr.items
    ):
        # x NOT IN (..., NULL) is FALSE or UNKNOWN for every x: never TRUE.
        return False
    if not isinstance(expr.operand, Column):
        return True
    column = expr.operand.column
    if zone_map.non_null_count(column) == 0:
        return False
    if not all(isinstance(item, Literal) for item in expr.items):
        return True
    items = [item.value for item in expr.items]
    zone = zone_map.zone(column)
    lo, hi = zone.minimum, zone.maximum
    if lo is None or hi is None:
        return False
    try:
        if not expr.negated:
            return any(v is not None and lo <= v <= hi for v in items)
        if lo == hi and any(v == lo for v in items):
            # Single-value shard whose one value is excluded by the list.
            return False
        return True
    except TypeError:
        return True


def _may_match_between(expr: Between, zone_map: ZoneMap) -> bool:
    refuted = _all_null_somewhere([expr.operand], zone_map)
    if refuted:
        return False
    if not isinstance(expr.operand, Column):
        return True
    column = expr.operand.column
    if zone_map.non_null_count(column) == 0:
        return False
    low_lit, low_v = _literal_value(expr.low)
    high_lit, high_v = _literal_value(expr.high)
    if not (low_lit and high_lit):
        return True
    zone = zone_map.zone(column)
    lo, hi = zone.minimum, zone.maximum
    if lo is None or hi is None:
        return False
    try:
        if not expr.negated:
            if low_v is None or high_v is None:
                return False  # a NULL bound makes BETWEEN never TRUE
            if low_v > high_v:
                return False  # empty range
            return not (hi < low_v or lo > high_v)
        # NOT BETWEEN: TRUE when the (non-NULL) value falls outside the
        # range, which includes *every* value when the range is empty or a
        # bound is NULL-vs-violated on the other side.
        if low_v is None and high_v is None:
            return False
        if low_v is None:
            return hi > high_v
        if high_v is None:
            return lo < low_v
        return lo < low_v or hi > high_v or low_v > high_v
    except TypeError:
        return True


def _may_match_like(expr: Like, zone_map: ZoneMap) -> bool:
    refuted = _all_null_somewhere([expr.operand], zone_map)
    if refuted:
        return False
    pattern_lit, pattern = _literal_value(expr.pattern)
    if pattern_lit and pattern is None:
        return False  # LIKE NULL is never TRUE
    if isinstance(expr.operand, Column):
        if zone_map.non_null_count(expr.operand.column) == 0:
            return False
    return True
