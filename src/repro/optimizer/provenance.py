"""Plan-node provenance: stitching runtime statistics into re-planning.

Operator-level adaptive execution pauses a query at a pipeline breaker,
collapses the finished sub-join into an in-memory pseudo-table and re-plans
the remainder.  Three pieces of bookkeeping make that stitching sound, all of
them keyed on the *alias subsets* a plan node covers (its provenance):

* :func:`harvest_observations` reads the true cardinalities the executor
  observed (scans after their filters, joins after their predicates) off an
  executed plan — the paper's point that a running query measures exactly the
  quantities the optimizer had to guess.
* :func:`translate_observations` rewrites those observations into the alias
  space of the collapsed query: a subset fully containing the collapsed
  aliases maps onto the pseudo-table's alias, a subset partially overlapping
  it is no longer meaningful and is dropped.
* :func:`runtime_injection` turns the accumulated observations into a
  cardinality injector (chained in front of any caller-supplied injector), so
  every re-planning round plans with true cardinalities wherever execution
  has already measured them.

:func:`plan_output_columns` computes the client-visible output shape of a
plan without executing it; the adaptive executor uses it to restore the
original column naming and order after the final (re-planned) round, keeping
re-optimization invisible to the client.
"""

from __future__ import annotations

from typing import Container, Dict, FrozenSet, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.optimizer.injection import (
    CardinalityInjector,
    ChainInjection,
    DictInjection,
)
from repro.optimizer.plan import (
    AggregateNode,
    HashAggregateNode,
    JoinNode,
    PlanNode,
    ScanNode,
)
from repro.sql.binder import output_column_name

QualifiedColumn = Tuple[str, str]

#: Observed true cardinalities, keyed by the alias subset they cover.
Observations = Dict[FrozenSet[str], float]


def harvest_observations(
    plan: PlanNode, executed: Optional[Container[int]] = None
) -> Observations:
    """True cardinalities observed while executing (part of) ``plan``.

    Only scans and joins carry subset cardinalities the optimizer estimates
    (a scan's actual rows are its post-filter cardinality, a join's actual
    rows the cardinality of its alias subset); aggregation/sort/limit nodes
    share their child's alias set and are skipped.  Nodes that were never
    executed (``actual_rows is None``) are skipped too, which is what makes
    harvesting safe on a stage-wise, partially executed plan.

    When ``executed`` is given, only nodes whose id it contains are read.
    Stage-wise execution passes its memo keys: a plan served from the plan
    cache may carry ``actual_rows`` left over from an *earlier* statement,
    and those must not masquerade as this execution's observations.
    """
    observed: Observations = {}
    for node in plan.walk():
        if node.actual_rows is None:
            continue
        if executed is not None and node.node_id not in executed:
            continue
        if isinstance(node, (ScanNode, JoinNode)):
            observed[frozenset(node.aliases)] = float(node.actual_rows)
    return observed


def translate_observations(
    observed: Observations, collapsed: FrozenSet[str], pseudo_alias: str
) -> Observations:
    """Map observations into the alias space after collapsing ``collapsed``.

    A subset containing every collapsed alias keeps its meaning with the
    collapsed aliases replaced by ``pseudo_alias`` (the pseudo-table holds
    exactly that sub-join); a subset overlapping ``collapsed`` only partially
    describes a relation that no longer exists in the rewritten query and is
    dropped; disjoint subsets pass through unchanged.
    """
    collapsed = frozenset(collapsed)
    translated: Observations = {}
    for subset, rows in observed.items():
        if collapsed <= subset:
            translated[(subset - collapsed) | {pseudo_alias}] = rows
        elif not (subset & collapsed):
            translated[subset] = rows
    return translated


def runtime_injection(
    observed: Observations, base: Optional[CardinalityInjector] = None
) -> CardinalityInjector:
    """Injector answering from runtime observations, falling back to ``base``.

    Observations are exact, so they take precedence over whatever injector
    the caller planned with (perfect-(n), feedback corrections, ...).
    """
    injector = DictInjection({subset: rows for subset, rows in observed.items()})
    if base is None:
        return injector
    return ChainInjection([injector, base])


def plan_output_columns(plan: PlanNode, catalog: Catalog) -> List[QualifiedColumn]:
    """The qualified output columns ``plan`` produces, computed statically.

    Mirrors the engines' layout rules: a scan emits its table's columns in
    schema order under the scan alias, a join emits left columns then right
    columns, a projection/aggregation emits the select list's output names
    (empty select list — ``SELECT *`` — passes the child layout through), and
    sort/distinct/limit/materialize preserve their child's layout.
    """
    if isinstance(plan, ScanNode):
        schema = catalog.schema(plan.table)
        return [(plan.alias, name) for name in schema.column_names]
    if isinstance(plan, JoinNode):
        return plan_output_columns(plan.left, catalog) + plan_output_columns(
            plan.right, catalog
        )
    if isinstance(plan, (AggregateNode, HashAggregateNode)):
        if not plan.select_items:
            return plan_output_columns(plan.child, catalog)
        return [
            ("", output_column_name(item, i))
            for i, item in enumerate(plan.select_items)
        ]
    children = plan.children()
    if len(children) == 1:
        return plan_output_columns(children[0], catalog)
    raise ValueError(f"cannot derive output columns of {type(plan).__name__}")
