"""Pluggable cardinality-estimation strategies.

The optimizer's :class:`~repro.optimizer.cardinality.CardinalityEstimator`
historically hard-wired one model: PostgreSQL-style statistics under
independence assumptions.  This module generalizes it behind a PostBOUND-style
strategy interface — a :class:`CardinalityStrategy` is set up once per query
and then asked for subset estimates; returning ``None`` defers to the built-in
statistical model, so strategies only override where they know better.

Four strategies ship:

* :class:`StatsEstimator` — the default; delegates single-table estimates to
  :class:`~repro.optimizer.cardinality.SelectivityEstimator` and leaves join
  estimates to the built-in recursive model.  Plans are bit-identical to the
  pre-strategy engine.
* :class:`UpperBoundEstimator` — pessimistic hard bounds only: zone-map scan
  bounds per table, multiplied across joins.  Never underestimates an inner
  join, at the cost of gross overestimates.
* :class:`SamplingEstimator` — evaluates single-table predicates over the
  reservoir sample ANALYZE maintains, scaling the match fraction to the table
  cardinality; joins defer to the model.
* :class:`FeedbackEstimator` — consults the persistent
  :class:`~repro.optimizer.feedback.FeedbackStore` of runtime-observed
  subtree cardinalities before falling back to statistics, so repeated
  workloads are planned from truth.

A strategy instance is shared by every connection and server session of a
database, so implementations must be thread-safe; all four built-ins are
stateless between ``setup_for_query`` calls.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.catalog.catalog import Catalog
from repro.optimizer.cardinality import (
    MIN_ROWS,
    SelectivityEstimator,
    scan_upper_bound,
)
from repro.optimizer.feedback import DEFAULT_FEEDBACK_CAPACITY, FeedbackStore
from repro.sql.binder import BoundQuery


class CardinalityStrategy:
    """Interface every estimation strategy implements.

    Lifecycle (per planned query): the optimizer calls
    :meth:`setup_for_query` once, then :meth:`estimate_subset` for every
    connected alias subset the join enumerator probes.  ``estimate_subset``
    returns estimated rows, or ``None`` to defer to the built-in statistical
    model for that subset.  Cardinality injectors (perfect-(n), runtime
    feedback within one re-optimization) still take precedence over the
    strategy.
    """

    #: Registry name; also what ``EngineSettings.estimator`` selects.
    name = "abstract"

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.selectivity = SelectivityEstimator(catalog)

    def setup_for_query(self, query: BoundQuery) -> None:
        """Hook invoked once before a query's subsets are estimated."""

    def estimate_subset(
        self, query: BoundQuery, subset: FrozenSet[str]
    ) -> Optional[float]:
        """Estimated rows for ``subset``, or ``None`` to use the built-in model."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable description for EXPLAIN and experiment reports."""
        return self.name


class StatsEstimator(CardinalityStrategy):
    """PostgreSQL-style statistics (the engine's historical behaviour).

    Single-table subsets go through
    :meth:`~repro.optimizer.cardinality.SelectivityEstimator.scan_rows`
    exactly as before the strategy interface existed; join subsets defer to
    the built-in recursive decomposition (which uses the same statistics), so
    the produced plans — and the paper-figure numbers — are unchanged.
    """

    name = "stats"

    def estimate_subset(
        self, query: BoundQuery, subset: FrozenSet[str]
    ) -> Optional[float]:
        if len(subset) != 1:
            return None
        alias = next(iter(subset))
        return self.selectivity.scan_rows(
            query.table_for(alias), query.filters_for(alias)
        )


class UpperBoundEstimator(CardinalityStrategy):
    """Hard upper bounds: zone-map scan bounds, multiplied across joins.

    An inner join can never produce more rows than the Cartesian product of
    its inputs, and a scan never more than the unpruned partitions hold, so
    these estimates are sound bounds rather than expectations.  Useful as a
    pessimistic baseline: it never triggers "underestimate" re-optimizations
    but ranks join orders only by bound tightness.
    """

    name = "upper-bound"

    def estimate_subset(
        self, query: BoundQuery, subset: FrozenSet[str]
    ) -> Optional[float]:
        rows = 1.0
        for alias in subset:
            table = query.table_for(alias)
            bound = scan_upper_bound(
                self.catalog, table, query.filters_for(alias)
            )
            if bound is None:
                bound = self.selectivity.table_rows(table)
            rows *= max(MIN_ROWS, bound)
        return max(MIN_ROWS, rows)


class SamplingEstimator(CardinalityStrategy):
    """Predicate evaluation over ANALYZE-maintained reservoir samples.

    For a single-table subset, the filter conjunction is compiled to a row
    predicate and evaluated against the table's reservoir sample; the match
    fraction scales to the table cardinality.  Correlated predicates — the
    independence model's blind spot — are estimated correctly as long as the
    sample sees them.  Joins and tables without a sample defer to the model.
    """

    name = "sampling"

    def estimate_subset(
        self, query: BoundQuery, subset: FrozenSet[str]
    ) -> Optional[float]:
        if len(subset) != 1:
            return None
        alias = next(iter(subset))
        filters = query.filters_for(alias)
        if not filters:
            return None
        table = query.table_for(alias)
        stats = self.catalog.stats(table)
        sample = getattr(stats, "sample", None)
        if not sample:
            return None
        try:
            matches = self._count_matches(alias, table, filters, sample)
        except Exception:
            # Anything the sample evaluator cannot handle (exotic expression,
            # type surprises) falls back to the statistical model.
            return None
        fraction = matches / len(sample)
        rows = fraction * self.selectivity.table_rows(table)
        bound = scan_upper_bound(self.catalog, table, filters)
        if bound is not None:
            rows = min(rows, bound)
        return max(MIN_ROWS, rows)

    def _count_matches(
        self, alias: str, table: str, filters: List, sample: List
    ) -> int:
        # Imported lazily: the executor package is a consumer of the optimizer
        # elsewhere, so the import lives here to keep module loading acyclic.
        from repro.executor.expressions import compile_conjunction

        resolver = _SampleResolver(alias, self.catalog, table)
        predicate = compile_conjunction(filters, resolver)
        return sum(1 for row in sample if predicate(row))


class _SampleResolver:
    """Maps ``alias.column`` to the schema position of a sampled row tuple."""

    def __init__(self, alias: str, catalog: Catalog, table: str) -> None:
        schema = catalog.table(table).schema
        self._alias = alias
        self._positions: Dict[str, int] = {
            col.name: index for index, col in enumerate(schema.columns)
        }

    def position(self, alias: str, column: str) -> int:
        if alias != self._alias or column not in self._positions:
            raise KeyError(f"{alias}.{column} not in sample")
        return self._positions[column]

    def has(self, alias: str, column: str) -> bool:
        return alias == self._alias and column in self._positions


class FeedbackEstimator(CardinalityStrategy):
    """Runtime-observed cardinalities from the persistent feedback store.

    Subtrees the engine has executed before — in any session, under any alias
    spelling, parameterized or not — are estimated from their observed row
    counts; everything else defers to the statistical model.  Because the
    re-optimization trigger fires on Q-error between estimate and
    observation, feedback-seeded plans re-plan measurably less on repeated
    workloads.
    """

    name = "feedback"

    def __init__(self, catalog: Catalog, store: Optional[FeedbackStore] = None) -> None:
        super().__init__(catalog)
        self.store = store if store is not None else FeedbackStore()

    def estimate_subset(
        self, query: BoundQuery, subset: FrozenSet[str]
    ) -> Optional[float]:
        observed = self.store.lookup(query, subset)
        if observed is not None:
            return max(MIN_ROWS, observed)
        if len(subset) == 1:
            alias = next(iter(subset))
            return self.selectivity.scan_rows(
                query.table_for(alias), query.filters_for(alias)
            )
        return None

    def describe(self) -> str:
        return f"{self.name}[{self.store.describe()}]"


#: Registry of selectable strategies (``EngineSettings.estimator`` values).
STRATEGIES = {
    StatsEstimator.name: StatsEstimator,
    UpperBoundEstimator.name: UpperBoundEstimator,
    SamplingEstimator.name: SamplingEstimator,
    FeedbackEstimator.name: FeedbackEstimator,
}


def strategy_names() -> List[str]:
    """The selectable strategy names, sorted."""
    return sorted(STRATEGIES)


def create_strategy(
    name: str,
    catalog: Catalog,
    feedback: Optional[FeedbackStore] = None,
    feedback_capacity: int = DEFAULT_FEEDBACK_CAPACITY,
) -> CardinalityStrategy:
    """Instantiate the strategy registered under ``name``.

    ``feedback`` supplies the (usually database-shared) store consulted by
    :class:`FeedbackEstimator`; other strategies ignore it.
    """
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown estimator {name!r}; choose one of {strategy_names()}"
        ) from None
    if cls is FeedbackEstimator:
        store = feedback if feedback is not None else FeedbackStore(feedback_capacity)
        return FeedbackEstimator(catalog, store)
    return cls(catalog)
