"""Boolean-tree normalization: NNF, CNF conversion and conjunct splitting.

The binder hands each top-level WHERE conjunct through this module before
classifying it: negations are pushed down to the leaves (three-valued logic
makes ``NOT (a < b)`` exactly ``a >= b``, so most ``NOT`` nodes disappear),
and disjunctions are distributed over conjunctions (CNF) so that a predicate
like ``(a.x = 1 AND b.y = 2) OR (a.x = 3 AND b.y = 4)`` splits into clauses
the optimizer can *push down* per table — ``(a.x = 1 OR a.x = 3)`` becomes a
scan filter on ``a`` even though the original tree spans two tables.

CNF distribution can explode exponentially, so :func:`to_cnf` carries a
clause budget; a tree whose expansion would exceed it is kept as a single
conjunct (still executed exactly, just not split for pushdown).
"""

from __future__ import annotations

from itertools import product
from typing import List

from repro.sql import values
from repro.sql.ast import (
    Between,
    BoolConnective,
    BoolExpr,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    conjunction,
    disjunction,
    split_conjuncts,
)

__all__ = [
    "DEFAULT_CNF_BUDGET",
    "push_not_down",
    "split_conjuncts",
    "to_cnf",
]

#: Maximum number of CNF clauses one conjunct may expand into.
DEFAULT_CNF_BUDGET = 32


def push_not_down(expr: Expr) -> Expr:
    """Negation normal form: push ``NOT`` to the leaves, eliminating it.

    All rewrites are exact under SQL's three-valued logic (the negation of
    UNKNOWN is UNKNOWN on both sides of every rule):

    * ``NOT (a AND b)`` -> ``NOT a OR NOT b`` (De Morgan), and dually;
    * ``NOT (a op b)``  -> ``a op' b`` with the complemented comparison;
    * ``NOT (x IS NULL)`` -> ``x IS NOT NULL``, and dually;
    * ``NOT (x [NOT] IN/LIKE/BETWEEN ...)`` toggles the negation flag;
    * ``NOT NOT x`` -> ``x``; ``NOT literal`` folds.

    A ``NOT`` over anything else (a ``CASE``, a bare parameter) is kept.
    """
    if isinstance(expr, Not):
        return _negate(push_not_down(expr.operand))
    if isinstance(expr, BoolExpr):
        operands = [push_not_down(operand) for operand in expr.operands]
        if expr.op is BoolConnective.AND:
            return conjunction(operands)
        return disjunction(operands)
    return expr


def _negate(expr: Expr) -> Expr:
    """The exact three-valued negation of an NNF expression."""
    if isinstance(expr, Not):
        return expr.operand
    if isinstance(expr, Literal):
        return Literal(values.logical_not(expr.value))
    if isinstance(expr, Comparison):
        return Comparison(expr.op.negated(), expr.left, expr.right)
    if isinstance(expr, IsNull):
        return IsNull(expr.operand, negated=not expr.negated)
    if isinstance(expr, InList):
        return InList(expr.operand, expr.items, negated=not expr.negated)
    if isinstance(expr, Like):
        return Like(expr.operand, expr.pattern, negated=not expr.negated)
    if isinstance(expr, Between):
        return Between(expr.operand, expr.low, expr.high, negated=not expr.negated)
    if isinstance(expr, BoolExpr):
        negated = [_negate(operand) for operand in expr.operands]
        if expr.op is BoolConnective.AND:
            return disjunction(negated)
        return conjunction(negated)
    return Not(expr)


def to_cnf(expr: Expr, budget: int = DEFAULT_CNF_BUDGET) -> List[Expr]:
    """Convert an expression to a list of CNF clauses (ANDed together).

    The expression is first normalized with :func:`push_not_down`; ORs are
    then distributed over ANDs.  When distribution would produce more than
    ``budget`` clauses, the offending subtree is kept whole as one clause —
    the result is always an exact conjunction-of-clauses decomposition of the
    input, just possibly a coarser one.
    """
    return _cnf_clauses(push_not_down(expr), budget)


def _cnf_clauses(expr: Expr, budget: int) -> List[Expr]:
    if isinstance(expr, BoolExpr) and expr.op is BoolConnective.AND:
        clauses: List[Expr] = []
        for operand in expr.operands:
            clauses.extend(_cnf_clauses(operand, budget))
        return clauses
    if isinstance(expr, BoolExpr) and expr.op is BoolConnective.OR:
        operand_clauses = [_cnf_clauses(operand, budget) for operand in expr.operands]
        count = 1
        for clauses in operand_clauses:
            count *= len(clauses)
            if count > budget:
                return [expr]
        return [
            disjunction(list(combo)) for combo in product(*operand_clauses)
        ]
    return [expr]
