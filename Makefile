# Convenience targets; every recipe matches what CI runs.
#
#   make test    - tier-1 suite (unit + integration + property + differential)
#   make bench   - paper-figure benchmarks plus the engine speedup guards
#   make diff    - just the vectorized-vs-reference differential suite
#   make fuzz    - the random-query differential fuzzer, CI profile (pinned,
#                  derandomized, 220+ generated queries)
#   make lint    - ruff check (same invocation as the CI lint job)
#   make all     - everything

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench diff fuzz lint all

test:
	$(PYTHON) -m pytest -x -q tests

diff:
	$(PYTHON) -m pytest -x -q tests/test_executor_differential.py tests/test_executor_edge_cases.py

fuzz:
	HYPOTHESIS_PROFILE=ci $(PYTHON) -m pytest -x -q tests/property/test_sql_fuzz_differential.py

bench:
	$(PYTHON) -m pytest -x -q -s benchmarks

lint:
	ruff check .

all: lint test fuzz bench
