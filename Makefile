# Convenience targets; every recipe matches what CI runs.
#
#   make ci      - the exact step sequence of .github/workflows/ci.yml:
#                  lint -> unit -> differential -> fuzz -> guards
#   make test    - tier-1 suite (unit + integration + property + differential)
#   make unit    - the unit/integration/property suites as CI runs them
#                  (differential + fuzz split out into their own steps)
#   make diff    - just the vectorized-vs-reference differential suite
#   make fuzz    - the random-query differential fuzzer, CI profile (pinned,
#                  derandomized, 220+ generated queries, each also run
#                  adaptive=True vs adaptive=False vs the reference oracle)
#   make fuzz-nightly - the randomized nightly profile (10x examples); pass
#                  SEED=... to reproduce a nightly CI failure
#   make fuzz-parallel - the CI fuzz stream with the fuzz databases serving
#                  from the morsel-parallel engine (fused kernels, small
#                  morsels, 3 workers)
#   make fuzz-partitioned - the CI fuzz stream against partitioned +
#                  compressed storage (4 shards per table, zone-map and
#                  routing pruning live) under a tiny memory budget, so
#                  grace hash joins and external merge sorts spill
#   make guards  - the engine/aggregation/expression-eval/parallel/pruning/
#                  late-materialization speedup guards
#   make stress  - the threaded serving layer under churn: the
#                  writers-vs-readers snapshot stress suite plus the
#                  1/4/16-client concurrent load driver (every served row
#                  differentially checked against the serial answer)
#   make bench   - paper-figure benchmarks plus the speedup guards; set
#                  REPRO_BENCH_REPORT=BENCH_pr.json to emit the trajectory
#                  report, compare with `make bench-compare`
#   make experiments - the estimator-strategy x workload matrix (Q-error
#                  distributions and re-plan counts per strategy, two runs);
#                  emits estimators.* info metrics into the trajectory
#                  report when REPRO_BENCH_REPORT is set
#   make lint    - ruff check (same invocation as the CI lint job)
#   make all     - everything

PYTHON ?= python
SEED ?= 0
export PYTHONPATH := src

.PHONY: ci test unit diff fuzz fuzz-nightly fuzz-parallel fuzz-partitioned guards stress bench bench-compare experiments lint all

# Mirrors the CI workflow's step sequence exactly (lint job, then the test
# job's pytest steps, then the speedup guards and the serving stress).
ci: lint unit diff fuzz fuzz-parallel fuzz-partitioned guards stress

test:
	$(PYTHON) -m pytest -x -q tests

unit:
	$(PYTHON) -m pytest -x -q tests \
		--ignore=tests/test_executor_differential.py \
		--ignore=tests/test_executor_edge_cases.py \
		--ignore=tests/property/test_sql_fuzz_differential.py

diff:
	$(PYTHON) -m pytest -x -q tests/test_executor_differential.py tests/test_executor_edge_cases.py

fuzz:
	HYPOTHESIS_PROFILE=ci $(PYTHON) -m pytest -x -q tests/property/test_sql_fuzz_differential.py

fuzz-nightly:
	HYPOTHESIS_PROFILE=nightly $(PYTHON) -m pytest -x -q tests/property/test_sql_fuzz_differential.py --hypothesis-seed=$(SEED)

fuzz-parallel:
	HYPOTHESIS_PROFILE=ci REPRO_FUZZ_ENGINE=parallel $(PYTHON) -m pytest -x -q tests/property/test_sql_fuzz_differential.py

fuzz-partitioned:
	HYPOTHESIS_PROFILE=ci REPRO_FUZZ_PARTITIONS=4 $(PYTHON) -m pytest -x -q tests/property/test_sql_fuzz_differential.py

guards:
	$(PYTHON) -m pytest -x -q -s benchmarks/test_engine_speedup.py benchmarks/test_aggregate_speedup.py benchmarks/test_expression_eval.py benchmarks/test_parallel_speedup.py benchmarks/test_partition_pruning.py benchmarks/test_late_materialization.py

stress:
	$(PYTHON) -m pytest -x -q -s tests/test_server_concurrency.py benchmarks/test_serving_concurrency.py

bench:
	$(PYTHON) -m pytest -x -q -s benchmarks

bench-compare:
	$(PYTHON) -m repro.bench.compare BENCH_baseline.json BENCH_pr.json --max-regression 0.20

experiments:
	$(PYTHON) -m pytest -x -q -s benchmarks/test_estimator_matrix.py

lint:
	ruff check .

all: ci bench
