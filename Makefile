# Convenience targets; every recipe matches what CI runs.
#
#   make test    - tier-1 suite (unit + integration + property + differential)
#   make bench   - paper-figure benchmarks plus the engine speedup guard
#   make diff    - just the vectorized-vs-reference differential suite
#   make lint    - ruff check (same invocation as the CI lint job)
#   make all     - everything

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench diff lint all

test:
	$(PYTHON) -m pytest -x -q tests

diff:
	$(PYTHON) -m pytest -x -q tests/test_executor_differential.py tests/test_executor_edge_cases.py

bench:
	$(PYTHON) -m pytest -x -q -s benchmarks

lint:
	ruff check .

all: lint test bench
