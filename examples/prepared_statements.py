"""Prepared statements, the plan cache and epoch-based invalidation.

Demonstrates the serving-API lifecycle on the synthetic IMDB database:

* ``Connection.prepare`` lowers ``?`` placeholders through the
  lexer/parser/binder once;
* repeated executions hit the LRU plan cache (planning is skipped);
* ANALYZE and index DDL bump the catalog epoch, so stale plans miss.

Run with::

    python examples/prepared_statements.py
"""

from __future__ import annotations

import repro
from repro.workloads import ImdbConfig, build_imdb_database


def main() -> None:
    print("building the synthetic IMDB database (scale 0.1)...")
    db, _ = build_imdb_database(ImdbConfig(scale=0.1))
    conn = repro.connect(db, reoptimize=False)

    stmt = conn.prepare(
        "SELECT count(t.id) AS movies FROM title AS t, kind_type AS kt "
        "WHERE t.production_year > ? AND t.kind_id = kt.id AND kt.kind = ?"
    )
    print(f"prepared statement with {stmt.param_count} parameter(s)\n")

    for year, kind in [(1990, "movie"), (2000, "movie"), (1990, "movie")]:
        cursor = stmt.execute((year, kind))
        source = "cache hit " if cursor.context.plan_cached else "cold plan"
        plan_wall = cursor.context.stage_seconds["plan"]
        print(
            f"year>{year}, kind={kind!r}: {cursor.fetchone()[0]:7d} movies  "
            f"[{source}, plan stage {plan_wall * 1e3:7.3f} ms]"
        )

    stats = conn.cache_stats
    print(f"\nplan cache: {stats.hits} hit(s), {stats.misses} miss(es), "
          f"hit rate {stats.hit_rate:.0%}")

    print(f"\ncatalog epoch before ANALYZE: {db.catalog.epoch}")
    conn.analyze(["title"])
    print(f"catalog epoch after ANALYZE:  {db.catalog.epoch}")
    cursor = stmt.execute((1990, "movie"))
    source = "cache hit" if cursor.context.plan_cached else "cold plan (invalidated)"
    print(f"same statement again: {source}")


if __name__ == "__main__":
    main()
