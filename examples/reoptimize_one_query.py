"""Walk through the paper's re-optimization rewrite on one JOB-like query.

Builds the synthetic IMDB database, picks a long-running workload query whose
plan is badly mis-estimated, and shows:

* the original plan with estimated vs actual cardinalities (EXPLAIN ANALYZE),
* each materialize-and-re-plan step (the paper's Figure 6 rewrite),
* the end-to-end accounting with and without re-optimization.

Run with::

    python examples/reoptimize_one_query.py [query_name]
"""

from __future__ import annotations

import sys

import repro
from repro.core import ReoptimizationPolicy
from repro.executor import explain_plan
from repro.workloads import (
    ImdbConfig,
    build_imdb_database,
    bind_workload,
    generate_job_workload,
)


def main() -> None:
    requested = sys.argv[1] if len(sys.argv) > 1 else None
    print("building the synthetic IMDB database (scale 0.25)...")
    db, dataset = build_imdb_database(ImdbConfig(scale=0.25))
    queries = generate_job_workload(dataset.vocabulary)
    bound = {q.name: b for q, b in zip(queries, bind_workload(db, queries))}

    if requested is None:
        # Pick the longest-running of the first few families as the demo query.
        candidates = [name for name in bound if name.startswith(("q10", "q13", "q15"))]
        requested = max(
            candidates, key=lambda name: db.run(bound[name]).execution_seconds
        )
    query = bound[requested]
    print(f"\nselected query {requested} ({query.num_tables()} tables)\n")
    print(query.to_sql())

    print("\n=== original plan (EXPLAIN ANALYZE) ===")
    planned = db.plan(query)
    execution = db.execute_plan(planned)
    print(explain_plan(planned.plan, execution))
    print(f"\nbaseline simulated execution time: {execution.simulated_seconds:.2f} s")

    print("\n=== re-optimization (threshold 32) ===")
    conn = repro.connect(db, policy=ReoptimizationPolicy(threshold=32))
    report = conn.run_bound(query).report
    for step in report.steps:
        print(
            f"step {step.index}: join over {step.trigger_aliases} estimated "
            f"{step.estimated_rows:.0f} rows but produced {step.actual_rows} "
            f"(q-error {step.q_error:.0f}); materialized {step.temp_rows} rows "
            f"into {step.temp_table}"
        )
    print("\nrewritten script (paper Figure 6 style):\n")
    print(report.rewritten_sql())
    print(
        f"\nre-optimized simulated execution time: {report.execution_seconds:.2f} s "
        f"(planning {report.planning_seconds:.3f} s over "
        f"{len(report.steps) + 1} planning rounds)"
    )
    print(f"result rows: {report.rows}")


if __name__ == "__main__":
    main()
