"""The Nasdaq skew example (paper Tables IV/V and Section IV-C).

Shows how the uniformity assumption makes the optimizer underestimate the
join size for popular symbols, how that flips the plan to an index nested
loop, and how re-optimization repairs it.

Run with::

    python examples/stocks_skew_demo.py
"""

from __future__ import annotations

import repro
from repro.core import ReoptimizationPolicy, TrueCardinalityOracle
from repro.workloads import StocksConfig, build_stocks_database, example_query


def main() -> None:
    config = StocksConfig()
    print(
        f"building the trading database ({config.num_companies} companies, "
        f"{config.num_trades} trades, Zipf exponent {config.zipf_exponent})..."
    )
    db = build_stocks_database(config)
    oracle = TrueCardinalityOracle(db)

    print("\nsymbol      estimated      actual     q-error")
    for symbol in config.popular_symbols:
        query = db.parse(example_query(symbol), name=f"stocks-{symbol}")
        planned = db.plan(query)
        join = planned.plan.join_nodes()[-1]
        actual = oracle.true_cardinality(query, set(query.aliases))
        error = max(join.estimated_rows, actual) / max(1.0, min(join.estimated_rows, actual))
        print(f"{symbol:8s} {join.estimated_rows:12.0f} {actual:11d} {error:11.1f}")

    print("\n=== EXPLAIN ANALYZE for the most popular symbol ===")
    sql = example_query(config.popular_symbols[0])
    print(db.explain(sql, analyze=True))

    print("\n=== re-optimizing it ===")
    conn = repro.connect(db, policy=ReoptimizationPolicy(threshold=8))
    report = conn.execute(sql).context.report
    print(f"re-optimized: {report.reoptimized} ({len(report.steps)} step(s))")
    print(f"result: {report.rows}")
    print(f"simulated execution time: {report.execution_seconds:.3f} s")


if __name__ == "__main__":
    main()
