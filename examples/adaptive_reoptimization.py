"""Walk through operator-level adaptive execution on a mis-estimated query.

The paper simulates re-optimization by materializing sub-joins into temporary
tables and rewriting SQL.  The adaptive executor is the real-system design
the paper names (Kabra & DeWitt-style mid-query re-optimization): the plan
executes stage-wise, pausing at pipeline breakers; when the observed
cardinality at a breaker is off by more than the Q-error threshold, the
remainder is re-planned with the observed true cardinalities injected and the
in-memory intermediate is handed to the new plan as a catalog pseudo-table —
no temp-table DDL, no write-out, no re-scan.

The demo builds a skewed table whose self-join the optimizer underestimates
by ~9x, then shows:

* the plain plan with estimated vs actual rows (EXPLAIN ANALYZE),
* the adaptive run: the re-plan point, the handover, and EXPLAIN ANALYZE of
  the final plan scanning the in-memory intermediate,
* the accounting against the materialize-and-rewrite simulation (the
  adaptive loop pays no materialization surcharge),
* the plan-cache interaction: re-planning never poisons the cached original
  plan, and the pseudo-table never bumps the catalog epoch.

Run with::

    python examples/adaptive_reoptimization.py
"""

from __future__ import annotations

import repro
from repro.catalog import ColumnType, make_schema
from repro.core import ReoptimizationPolicy
from repro.engine import Database
from repro.executor import explain_plan

SQL = (
    "SELECT count(*) AS n FROM records AS r1, records AS r2 "
    "WHERE r1.val = r2.val"
)


def build_database() -> Database:
    """100 rows whose ``val`` column is 90% one value (skewed join key)."""
    db = Database()
    db.create_table(
        make_schema(
            "records",
            [
                ("id", ColumnType.INT),
                ("gid", ColumnType.INT),
                ("val", ColumnType.INT),
                ("label", ColumnType.TEXT),
            ],
            primary_key="id",
        )
    )
    rows = []
    for i in range(100):
        val = 1 if i < 90 else (i - 88)
        rows.append((i + 1, i % 7, val, "x" if i % 2 else "y"))
    db.load_rows("records", rows)
    db.finalize_load()
    return db


def main() -> None:
    policy = ReoptimizationPolicy(threshold=4.0)

    print("=== plain execution (EXPLAIN ANALYZE) ===")
    db = build_database()
    planned = db.plan(SQL)
    execution = db.execute_plan(planned)
    print(explain_plan(planned.plan, execution))
    print(
        "\nthe optimizer's uniformity assumption underestimates the skewed "
        "self-join;\nsimulated execution time: "
        f"{execution.simulated_seconds * 1e3:.1f} ms"
    )

    print("\n=== adaptive execution (connect(..., adaptive=True)) ===")
    db = build_database()
    epoch_before = db.catalog.epoch
    conn = repro.connect(db, policy=policy, adaptive=True, capture_explain=True)
    cursor = conn.execute(SQL)
    ctx = cursor.context
    for step in ctx.report.steps:
        print(
            f"re-plan {step.index + 1}: {step.trigger_label} estimated "
            f"{step.estimated_rows:.0f} rows but produced {step.actual_rows} "
            f"(q-error {step.q_error:.1f}); {step.temp_rows} rows handed over "
            f"in memory as {step.temp_table} (materialization surcharge: "
            f"{step.materialize_work:.1f} work units)"
        )
    print("\nEXPLAIN ANALYZE of the final (re-planned) round:\n")
    print(cursor.explain_text)
    print(f"\nrows: {cursor.fetchall()}")
    print(
        f"adaptive simulated execution time: "
        f"{ctx.execution_seconds * 1e3:.1f} ms"
    )

    print("\n=== vs the paper's materialize-and-rewrite simulation ===")
    db2 = build_database()
    with repro.connect(db2, policy=policy, adaptive=False) as sim_conn:
        sim_ctx = sim_conn.execute(SQL).context
    print(
        f"simulation: {sim_ctx.execution_seconds * 1e3:.1f} ms "
        f"(materializes {sim_ctx.report.steps[0].temp_rows} rows into a temp "
        "table, then re-scans it)\n"
        f"adaptive:   {ctx.execution_seconds * 1e3:.1f} ms "
        "(intermediate stays in memory)"
    )

    print("\n=== plan-cache interaction ===")
    second = conn.execute(SQL)
    print(
        f"second execution: served from plan cache={second.context.plan_cached}, "
        f"re-planned again={second.context.reoptimized}, "
        f"cache stats={conn.cache_stats}"
    )
    print(
        f"catalog epoch before={epoch_before} after={db.catalog.epoch} "
        "(pseudo-tables are transient: no epoch bump, no cache invalidation)"
    )
    conn.analyze()
    print(
        f"after ANALYZE mid-stream the epoch bumps to {db.catalog.epoch}, "
        "invalidating cached plans."
    )


if __name__ == "__main__":
    main()
