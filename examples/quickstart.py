"""Quickstart: load a small database, run a query, watch re-optimization work.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.catalog import ColumnType, make_schema
from repro.core import ReoptimizationPolicy, ReoptimizingSession
from repro.engine import Database


def build_database() -> Database:
    """A tiny trading database with a heavily skewed join key."""
    rng = random.Random(7)
    db = Database()
    db.create_table(
        make_schema(
            "company",
            [("id", ColumnType.INT), ("symbol", ColumnType.TEXT), ("company", ColumnType.TEXT)],
            primary_key="id",
        )
    )
    db.create_table(
        make_schema(
            "trades",
            [("id", ColumnType.INT), ("company_id", ColumnType.INT), ("shares", ColumnType.INT)],
            primary_key="id",
            foreign_keys=[("company_id", "company", "id")],
        )
    )
    db.load_rows(
        "company",
        [(i + 1, f"S{i + 1:03d}", f"Company {i + 1}") for i in range(300)],
    )
    trades = []
    for i in range(12000):
        # Company 1 (symbol S001) is responsible for ~40% of all trades.
        company_id = 1 if rng.random() < 0.4 else rng.randint(2, 300)
        trades.append((i + 1, company_id, rng.randint(1, 10_000)))
    db.load_rows("trades", trades)
    db.finalize_load()  # build FK indexes + ANALYZE, as the paper's setup does
    return db


def main() -> None:
    db = build_database()
    sql = """
        SELECT count(t.id) AS num_trades, min(c.company) AS company
        FROM company AS c, trades AS t
        WHERE c.symbol = 'S001'
          AND c.id = t.company_id;
    """

    print("=== plain optimizer (EXPLAIN ANALYZE) ===")
    print(db.explain(sql, analyze=True))
    plain = db.run(sql)
    print(f"\nresult rows: {plain.rows}")
    print(f"simulated execution time: {plain.execution_seconds:.3f} s")

    print("\n=== with automatic re-optimization ===")
    session = ReoptimizingSession(db, ReoptimizationPolicy(threshold=4))
    result = session.execute(sql)
    print(f"re-optimized: {result.reoptimized}")
    for step in result.report.steps:
        print(
            f"  step {step.index}: materialized {step.trigger_aliases} "
            f"(estimated {step.estimated_rows:.0f} rows, actual {step.actual_rows}, "
            f"q-error {step.q_error:.0f}) into {step.temp_table}"
        )
    print(f"result rows: {result.rows}")
    print(f"simulated execution time: {result.execution_seconds:.3f} s")


if __name__ == "__main__":
    main()
