"""Quickstart: connect, run SQL through a cursor, watch re-optimization work.

The serving surface is DB-API-2.0 style: ``repro.connect()`` returns a
``Connection`` whose query pipeline re-optimizes mis-estimated plans
transparently and caches plans for repeated statements.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

import repro
from repro.catalog import ColumnType, make_schema
from repro.core import ReoptimizationPolicy


def build_connection() -> repro.Connection:
    """A tiny trading database with a heavily skewed join key."""
    rng = random.Random(7)
    conn = repro.connect(policy=ReoptimizationPolicy(threshold=4))
    db = conn.database
    db.create_table(
        make_schema(
            "company",
            [("id", ColumnType.INT), ("symbol", ColumnType.TEXT), ("company", ColumnType.TEXT)],
            primary_key="id",
        )
    )
    db.create_table(
        make_schema(
            "trades",
            [("id", ColumnType.INT), ("company_id", ColumnType.INT), ("shares", ColumnType.INT)],
            primary_key="id",
            foreign_keys=[("company_id", "company", "id")],
        )
    )
    db.load_rows(
        "company",
        [(i + 1, f"S{i + 1:03d}", f"Company {i + 1}") for i in range(300)],
    )
    trades = []
    for i in range(12000):
        # Company 1 (symbol S001) is responsible for ~40% of all trades.
        company_id = 1 if rng.random() < 0.4 else rng.randint(2, 300)
        trades.append((i + 1, company_id, rng.randint(1, 10_000)))
    db.load_rows("trades", trades)
    db.finalize_load()  # build FK indexes + ANALYZE, as the paper's setup does
    return conn


def main() -> None:
    conn = build_connection()
    sql = """
        SELECT count(t.id) AS num_trades, min(c.company) AS company
        FROM company AS c, trades AS t
        WHERE c.symbol = 'S001'
          AND c.id = t.company_id;
    """

    print("=== one statement through the pipeline ===")
    cursor = conn.execute(sql)
    print(f"columns: {[d[0] for d in cursor.description]}")
    print(f"rows:    {cursor.fetchall()}")
    context = cursor.context
    print(f"re-optimized: {context.reoptimized}")
    for step in context.report.steps:
        print(
            f"  step {step.index}: materialized {step.trigger_aliases} "
            f"(estimated {step.estimated_rows:.0f} rows, actual {step.actual_rows}, "
            f"q-error {step.q_error:.0f}) into {step.temp_table}"
        )
    print(f"simulated: {context.planning_seconds:.3f} s planning, "
          f"{context.execution_seconds:.3f} s execution")

    print("\n=== prepared statement + plan cache ===")
    # A second connection over the same database, without the re-optimization
    # interceptor: re-optimizing statements create/drop temp tables, which
    # bumps the catalog epoch and (conservatively) invalidates cached plans.
    serving = repro.connect(conn.database, reoptimize=False)
    stmt = serving.prepare(
        "SELECT count(t.id) AS n FROM company AS c, trades AS t "
        "WHERE c.symbol = ? AND c.id = t.company_id"
    )
    for symbol in ("S001", "S002", "S001"):
        result = stmt.execute((symbol,))
        cached = "cache hit" if result.context.plan_cached else "cold plan"
        print(f"{symbol}: {result.fetchall()[0][0]:6d} trades  ({cached})")
    stats = serving.cache_stats
    print(f"plan cache: {stats.hits} hit(s), {stats.misses} miss(es)")

    print("\n=== grouped aggregation: GROUP BY / ORDER BY / LIMIT ===")
    # The full analytic surface flows through the same pipeline: grouped
    # aggregates (including COUNT(*), SUM and AVG), deterministic ordering
    # and LIMIT — and repeated statements hit the plan cache as usual.
    top = serving.execute(
        """
        SELECT c.symbol, count(*) AS num_trades,
               sum(t.shares) AS volume, avg(t.shares) AS avg_shares
        FROM company AS c, trades AS t
        WHERE c.id = t.company_id
        GROUP BY c.symbol
        ORDER BY volume DESC
        LIMIT 5;
        """
    )
    print("columns:", [(d[0], d[1].value if d[1] else None) for d in top.description])
    for symbol, num_trades, volume, avg_shares in top:
        print(f"  {symbol}: {num_trades:5d} trades, {volume:8d} shares "
              f"(avg {avg_shares:7.1f})")

    print("\n=== connection metrics ===")
    m = conn.metrics
    print(
        f"{m.statements} statement(s), {m.reoptimized_statements} re-optimized, "
        f"{m.planning_seconds:.3f} s planning + {m.execution_seconds:.3f} s "
        f"execution (simulated)"
    )


if __name__ == "__main__":
    main()
