"""Deep dive into two workload queries (the paper's Figures 3/4 and Section IV-D).

Prints the join graph of a 5-table keyword query (the analogue of JOB 6d) and
a 7-table info/info_idx query (the analogue of JOB 18a), then walks the plan
bottom-up showing where the estimation errors appear and how large they are.

Run with::

    python examples/join_graph_deep_dive.py
"""

from __future__ import annotations

from repro.core import q_error
from repro.executor import explain_plan
from repro.optimizer import JoinGraph
from repro.workloads import (
    ImdbConfig,
    bind_workload,
    build_imdb_database,
    generate_job_workload,
)


def deep_dive(db, query) -> None:
    print(f"\n################ {query.name} ({query.num_tables()} tables) ################")
    print(query.to_sql())
    graph = JoinGraph(query)
    print()
    print(graph.to_text())
    print()
    print(graph.to_dot())

    planned = db.plan(query)
    execution = db.execute_plan(planned)
    print("\nEXPLAIN ANALYZE:")
    print(explain_plan(planned.plan, execution))
    print("\nestimation errors bottom-up:")
    for join in planned.plan.join_nodes():
        error = q_error(join.estimated_rows, join.actual_rows or 0)
        marker = "  <-- triggers re-optimization (q-error > 32)" if error > 32 else ""
        print(
            f"  {sorted(join.aliases)}: est {join.estimated_rows:.0f} vs actual "
            f"{join.actual_rows} (q-error {error:.1f}){marker}"
        )


def main() -> None:
    print("building the synthetic IMDB database (scale 0.25)...")
    db, dataset = build_imdb_database(ImdbConfig(scale=0.25))
    queries = generate_job_workload(dataset.vocabulary)
    bound = {q.name: b for q, b in zip(queries, bind_workload(db, queries))}

    # q02a: title/keyword/cast/name — the analogue of JOB query 6d.
    deep_dive(db, bound["q02a"])
    # q07a: cast/name/info/info_idx — the analogue of JOB query 18a.
    deep_dive(db, bound["q07a"])


if __name__ == "__main__":
    main()
