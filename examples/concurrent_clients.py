"""Many concurrent clients over one shared database, with writer churn.

Demonstrates the threaded serving layer (:mod:`repro.server`):

* client threads each open a :class:`~repro.server.ServerSession` and serve
  a read-only statement mix through the bounded worker pool;
* a writer thread concurrently churns the shared database with bulk loads
  and ANALYZE — every statement pins a copy-on-write snapshot, so readers
  never block and never observe a torn batch;
* all sessions share one process-wide plan cache keyed on SQL + catalog
  epoch, so the writer's epoch bumps invalidate stale plans for everyone.

Run with::

    python examples/concurrent_clients.py
"""

from __future__ import annotations

import threading
import time

from repro.server import Server, ServerConfig
from repro.workloads.stocks import StocksConfig, build_stocks_database

CLIENTS = 8
STATEMENTS_PER_CLIENT = 20

#: Every load is exactly this many rows; a reader seeing a trade count that
#: is not a multiple of it would have observed a torn batch.
BATCH = 500

STATEMENT_MIX = (
    "SELECT count(t.id) AS n FROM trades AS t",
    "SELECT c.symbol AS s, count(t.id) AS n FROM company AS c, trades AS t "
    "WHERE c.id = t.company_id GROUP BY c.symbol ORDER BY n DESC, s LIMIT 5",
    "SELECT c.symbol AS s, sum(t.shares) AS v FROM company AS c, trades AS t "
    "WHERE c.id = t.company_id AND t.shares > 5000 "
    "GROUP BY c.symbol ORDER BY v DESC, s LIMIT 5",
)


def main() -> None:
    print("building the synthetic stocks database...")
    database = build_stocks_database(
        StocksConfig(num_companies=200, num_trades=BATCH * 10)
    )
    num_companies = database.run(
        "SELECT count(c.id) AS n FROM company AS c"
    ).rows[0][0]

    server = Server(
        database,
        ServerConfig(workers=4, queue_depth=64, admission_timeout=5.0),
    )
    stop = threading.Event()

    def writer() -> None:
        """Churn the shared database: constant-size loads plus ANALYZE."""
        session = server.session()
        next_id = database.catalog.table("trades").row_count
        while not stop.is_set():
            session.load_rows(
                "trades",
                [
                    (next_id + i, (next_id + i) % num_companies + 1, 1000 + i)
                    for i in range(BATCH)
                ],
            )
            next_id += BATCH
            session.analyze(["trades"])
            stop.wait(0.005)

    def client(worker: int, tallies: list) -> None:
        session = server.session()
        for i in range(STATEMENTS_PER_CLIENT):
            sql = STATEMENT_MIX[i % len(STATEMENT_MIX)]
            result = session.execute(sql, timeout=60)
            if sql is STATEMENT_MIX[0]:
                count = result.rows[0][0]
                assert count % BATCH == 0, f"torn batch observed: {count}"
        tallies.append(worker)

    print(
        f"serving {CLIENTS} clients x {STATEMENTS_PER_CLIENT} statements "
        "against a churning writer...\n"
    )
    writer_thread = threading.Thread(target=writer, daemon=True)
    writer_thread.start()
    tallies: list = []
    threads = [
        threading.Thread(target=client, args=(w, tallies)) for w in range(CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    stop.set()
    writer_thread.join()
    server.close()

    stats = server.stats
    cache = server.plan_cache.stats
    print(f"clients finished        : {len(tallies)}/{CLIENTS}")
    print(f"statements served       : {stats.statements}")
    print(f"errors / shed           : {stats.errors} / {stats.shed}")
    print(f"wall time               : {wall:.2f} s")
    print(f"rows served per second  : {stats.rows_returned / wall:,.0f}")
    print(f"p50 / p99 latency       : {stats.p50_seconds * 1e3:.2f} ms / "
          f"{stats.p99_seconds * 1e3:.2f} ms")
    print(f"shared plan cache       : {cache.hits} hit(s), {cache.misses} miss(es), "
          f"{cache.stale_evictions} stale eviction(s)")
    final = database.catalog.table("trades").row_count
    print(f"final trades row count  : {final:,} (every load atomic, "
          f"multiple of {BATCH})")
    assert final % BATCH == 0


if __name__ == "__main__":
    main()
