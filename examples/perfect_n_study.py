"""Mini perfect-(n) study: how good must cardinality estimates be to matter?

Reproduces the spirit of the paper's Figure 2 on a reduced workload slice so
it finishes in well under a minute: the total execution time of the slice is
reported for the default estimator and for perfect-(n) with growing n, plus
the re-optimization scheme for comparison.

Run with::

    python examples/perfect_n_study.py
"""

from __future__ import annotations

from repro.bench.harness import build_context, run_matrix, total_seconds
from repro.bench.experiments import perfect_regime, postgres_regime, reoptimized_regime
from repro.bench.reporting import format_table


def main() -> None:
    print("building the workload context (scale 0.25, first 40 queries)...")
    context = build_context(scale=0.25, query_limit=40)
    ns = [1, 2, 3, 4, 5, 8, 17]
    regimes = [postgres_regime()] + [perfect_regime(context, n) for n in ns]
    regimes.append(reoptimized_regime(context, threshold=32))

    print(f"running {len(regimes)} regimes over {len(context.job_queries)} queries...")
    matrix = run_matrix(context, regimes)

    rows = []
    for regime in regimes:
        execution, planning = total_seconds(matrix[regime.name])
        rows.append([regime.name, round(execution, 2), round(planning, 2)])
    print()
    print(format_table(["regime", "execute_s", "plan_s"], rows))

    baseline = rows[0][1]
    perfect = rows[len(ns)][1]
    reopt = rows[-1][1]
    print(
        f"\nperfect estimates recover {100 * (baseline - perfect) / baseline:.0f}% of the "
        f"baseline execution time; re-optimization recovers "
        f"{100 * (baseline - reopt) / baseline:.0f}% without any estimator changes."
    )


if __name__ == "__main__":
    main()
