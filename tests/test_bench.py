"""Unit tests for the benchmark harness, regimes and reporting."""

import pytest

from repro.bench import (
    ExperimentResult,
    MidQueryRegime,
    PerfectRegime,
    PostgresRegime,
    ReoptimizedRegime,
    format_table,
    run_matrix,
    run_query,
    run_workload,
    total_seconds,
)
from repro.core import ReoptimizationPolicy


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], ["xx", 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_experiment_result_helpers(self):
        result = ExperimentResult("x", "title", ["k", "v"])
        result.add_row("a", 1.0)
        result.add_row("b", 2.0)
        result.add_note("hello")
        assert result.column("v") == [1.0, 2.0]
        assert result.row_by("k", "b") == ["b", 2.0]
        assert result.row_by("k", "zz") is None
        text = result.to_text()
        assert "== x: title ==" in text
        assert "note: hello" in text


class TestRegimesAndHarness:
    def test_postgres_regime(self, bench_context):
        name = bench_context.query_names()[0]
        outcome = run_query(bench_context, PostgresRegime(), name)
        assert outcome.query_name == name
        assert outcome.execution_seconds > 0
        assert outcome.regime == "postgres"

    def test_outcome_cache_reused(self, bench_context):
        name = bench_context.query_names()[1]
        regime = PostgresRegime()
        first = run_query(bench_context, regime, name)
        second = run_query(bench_context, regime, name)
        assert first is second

    def test_perfect_regime_not_slower_is_not_required_but_runs(self, bench_context):
        name = bench_context.query_names()[0]
        outcome = run_query(
            bench_context, PerfectRegime(bench_context.oracle, 17), name
        )
        assert outcome.regime == "perfect-17"
        assert outcome.rows >= 0

    def test_reoptimized_regime_counts_steps(self, bench_context):
        regime = ReoptimizedRegime(policy=ReoptimizationPolicy(threshold=8))
        outcomes = run_workload(
            bench_context, regime, bench_context.query_names()[:6]
        )
        assert len(outcomes) == 6
        assert any(outcome.reoptimization_steps >= 0 for outcome in outcomes)

    def test_midquery_regime(self, bench_context):
        name = bench_context.query_names()[2]
        outcome = run_query(
            bench_context, MidQueryRegime(ReoptimizationPolicy(threshold=8)), name
        )
        assert outcome.regime == "midquery"

    def test_run_matrix_and_totals(self, bench_context):
        names = bench_context.query_names()[:4]
        regimes = [PostgresRegime(), PerfectRegime(bench_context.oracle, 2)]
        matrix = run_matrix(bench_context, regimes, names)
        assert set(matrix) == {"postgres", "perfect-2"}
        assert all(len(outcomes) == 4 for outcomes in matrix.values())
        execution, planning = total_seconds(matrix["postgres"])
        assert execution > 0 and planning > 0

    def test_context_accessors(self, bench_context):
        assert len(bench_context.query_names()) == len(bench_context.job_queries)
        first = bench_context.query_names()[0]
        assert bench_context.query(first).name == first
