"""Unit tests for ``?`` parameter lowering and substitution."""

import pytest

from repro.errors import ParameterError
from repro.sql import bind_parameters, parameterize, parse_select
from repro.sql.ast import (
    Between,
    Comparison,
    InList,
    Like,
    Param,
    Parameter,
)
from repro.sql.lexer import TokenType, tokenize


def _param(index: int) -> Param:
    return Param(Parameter(index))


class TestLexerAndParser:
    def test_question_mark_token(self):
        tokens = tokenize("SELECT c.id FROM company AS c WHERE c.id = ?")
        assert any(t.type is TokenType.PARAMETER for t in tokens)

    def test_parameters_numbered_in_parse_order(self):
        query = parse_select(
            "SELECT t.id FROM trades AS t "
            "WHERE t.shares BETWEEN ? AND ? AND t.venue IN (?, ?) AND t.id = ?"
        )
        assert query.param_count == 5
        between = query.predicates[0]
        assert isinstance(between, Between)
        assert between.low == _param(0)
        assert between.high == _param(1)
        in_pred = query.predicates[1]
        assert isinstance(in_pred, InList)
        assert in_pred.items == (_param(2), _param(3))
        comparison = query.predicates[2]
        assert isinstance(comparison, Comparison)
        assert comparison.right == _param(4)

    def test_parameter_inside_arithmetic(self):
        query = parse_select(
            "SELECT t.id FROM trades AS t WHERE t.shares * ? > ? + 1"
        )
        assert query.param_count == 2

    def test_like_pattern_parameter(self):
        query = parse_select("SELECT c.id FROM company AS c WHERE c.symbol LIKE ?")
        like = query.predicates[0]
        assert isinstance(like, Like)
        assert like.pattern == _param(0)

    def test_parameter_renders_as_question_mark(self):
        query = parse_select("SELECT c.id FROM company AS c WHERE c.id = ?")
        assert "= ?" in query.to_sql()

    def test_literal_sql_has_zero_params(self):
        query = parse_select("SELECT c.id FROM company AS c WHERE c.id = 3")
        assert query.param_count == 0


class TestBindParameters:
    @pytest.fixture
    def template(self, stock_db):
        sql = (
            "SELECT count(t.id) AS n FROM company AS c, trades AS t "
            "WHERE c.symbol = ? AND t.shares BETWEEN ? AND ? "
            "AND c.id = t.company_id"
        )
        return stock_db, stock_db.binder.bind(parse_select(sql))

    def test_binder_carries_param_count(self, template):
        _, bound = template
        assert bound.param_count == 3

    def test_substitution_matches_literal_query(self, template):
        db, bound = template
        concrete = bind_parameters(bound, ("SYM1", 10, 5000))
        assert concrete.param_count == 0
        literal = db.run(
            "SELECT count(t.id) AS n FROM company AS c, trades AS t "
            "WHERE c.symbol = 'SYM1' AND t.shares BETWEEN 10 AND 5000 "
            "AND c.id = t.company_id"
        )
        assert db.run(concrete).rows == literal.rows

    def test_template_not_mutated(self, template):
        _, bound = template
        bind_parameters(bound, ("SYM1", 10, 5000))
        assert bound.param_count == 3
        filters = [p for preds in bound.filters.values() for p in preds]
        assert any(
            isinstance(node, Param)
            for predicate in filters
            for node in predicate.walk()
        )

    def test_wrong_arity_rejected(self, template):
        _, bound = template
        with pytest.raises(ParameterError):
            bind_parameters(bound, ("SYM1",))
        with pytest.raises(ParameterError):
            bind_parameters(bound, ("SYM1", 1, 2, 3))

    def test_non_string_like_pattern_rejected(self, stock_db):
        bound = stock_db.binder.bind(
            parse_select("SELECT c.id FROM company AS c WHERE c.symbol LIKE ?")
        )
        with pytest.raises(ParameterError):
            bind_parameters(bound, (7,))
        concrete = bind_parameters(bound, ("SYM1%",))
        assert concrete.param_count == 0

    def test_arithmetic_parameter_substitution(self, stock_db):
        bound = stock_db.binder.bind(
            parse_select(
                "SELECT count(*) AS n FROM trades AS t WHERE t.shares % ? = 0"
            )
        )
        concrete = bind_parameters(bound, (2,))
        literal = stock_db.run(
            "SELECT count(*) AS n FROM trades AS t WHERE t.shares % 2 = 0"
        )
        assert stock_db.run(concrete).rows == literal.rows


class TestParameterize:
    def test_roundtrip_through_sql_text(self, stock_db):
        sql = (
            "SELECT count(t.id) AS n FROM company AS c, trades AS t "
            "WHERE c.symbol = 'SYM1' AND t.venue IN ('NYSE', 'NASDAQ') "
            "AND t.shares BETWEEN 1 AND 5000 AND c.id = t.company_id"
        )
        bound = stock_db.binder.bind(parse_select(sql))
        template, values = parameterize(bound)
        assert template.param_count == len(values) == 5
        # Re-parse the rendered ?-SQL and substitute: same rows as literal.
        reparsed = stock_db.binder.bind(parse_select(template.to_sql()))
        assert reparsed.param_count == len(values)
        concrete = bind_parameters(reparsed, values)
        assert stock_db.run(concrete).rows == stock_db.run(bound).rows

    def test_roundtrip_with_expression_predicates(self, stock_db):
        sql = (
            "SELECT count(*) AS n FROM company AS c, trades AS t "
            "WHERE (c.symbol = 'SYM1' OR t.shares + 5 > 100) "
            "AND c.id = t.company_id"
        )
        bound = stock_db.binder.bind(parse_select(sql))
        template, values = parameterize(bound)
        assert template.param_count == len(values)
        reparsed = stock_db.binder.bind(parse_select(template.to_sql()))
        concrete = bind_parameters(reparsed, values)
        assert stock_db.run(concrete).rows == stock_db.run(bound).rows
